//! A streaming log-scale histogram of span durations, used to aggregate
//! per-operation statistics over full-dataset runs without retaining
//! every record.

use lotus_data::stats::Summary;
use lotus_sim::Span;

/// Log-spaced histogram over `[1 µs, ~17 min)` with 16 buckets per
/// power of two. Tracks exact count/sum/sum-of-squares/min/max, so means
/// and standard deviations are exact and percentiles are accurate to
/// ~±4.5 % (one bucket width).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_ns: f64,
    sum_sq_ns: f64,
    min_ns: u64,
    max_ns: u64,
}

const BUCKETS_PER_OCTAVE: usize = 16;
/// Durations below this land in bucket 0.
const FLOOR_NS: u64 = 1_000;
const OCTAVES: usize = 30;

impl LogHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0; OCTAVES * BUCKETS_PER_OCTAVE],
            count: 0,
            sum_ns: 0.0,
            sum_sq_ns: 0.0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns < FLOOR_NS {
            return 0;
        }
        let ratio = ns as f64 / FLOOR_NS as f64;
        let idx = (ratio.log2() * BUCKETS_PER_OCTAVE as f64) as usize;
        idx.min(OCTAVES * BUCKETS_PER_OCTAVE - 1)
    }

    fn bucket_upper_ns(index: usize) -> f64 {
        FLOOR_NS as f64 * 2f64.powf((index + 1) as f64 / BUCKETS_PER_OCTAVE as f64)
    }

    /// Records one duration.
    pub fn record(&mut self, span: Span) {
        let ns = span.as_nanos();
        self.counts[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as f64;
        self.sum_sq_ns += (ns as f64) * (ns as f64);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded durations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded durations.
    #[must_use]
    pub fn total(&self) -> Span {
        Span::from_nanos(self.sum_ns as u64)
    }

    /// Exact mean in nanoseconds. Zero when empty.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns / self.count as f64
        }
    }

    /// Approximate percentile (`p` in 0–100), in nanoseconds. Zero when
    /// the histogram is empty, so an all-faulted run (no successful
    /// fetches) still renders metrics instead of panicking.
    ///
    /// The endpoints are exact: `p == 0` returns the recorded minimum and
    /// `p == 100` the recorded maximum (both tracked outside the
    /// buckets), so summaries never report a min/p0 or max/p100 pair that
    /// disagrees by a bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn percentile_ns(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        if self.count == 0 {
            return 0.0;
        }
        if p == 0.0 {
            return self.min_ns as f64;
        }
        if p >= 100.0 {
            return self.max_ns as f64;
        }
        let target = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_upper_ns(i).clamp(self.min_ns as f64, self.max_ns as f64);
            }
        }
        self.max_ns as f64
    }

    /// Fraction of durations strictly below `threshold`, resolved to one
    /// bucket: counts are kept per log-spaced bucket, so a threshold
    /// inside a bucket attributes that whole bucket's mass to one side.
    ///
    /// Quantization contract: the answer is exact whenever `threshold`
    /// falls on a bucket boundary or outside `[min, max]`; otherwise it
    /// may be off by at most the mass of the bucket containing
    /// `threshold`. Sub-floor thresholds (below bucket 0's upper edge)
    /// are resolved against the exact tracked min/max rather than the
    /// bucket index, which would otherwise claim nothing lies below them.
    #[must_use]
    pub fn fraction_below(&self, threshold: Span) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let ns = threshold.as_nanos();
        if ns <= self.min_ns {
            return 0.0;
        }
        if ns > self.max_ns {
            return 1.0;
        }
        let cutoff = Self::bucket_of(ns);
        if cutoff == 0 {
            // Threshold lands inside bucket 0 with recorded durations on
            // both sides of it: attribute the whole bucket (one bucket of
            // quantization, same as any interior threshold).
            return self.counts[0] as f64 / self.count as f64;
        }
        let below: u64 = self.counts[..cutoff].iter().sum();
        below as f64 / self.count as f64
    }

    /// A [`Summary`] over the recorded durations **in milliseconds**
    /// (mean/std/min/max exact; percentiles and IQR approximated from the
    /// buckets). An empty histogram summarizes to all zeros with
    /// `count == 0` rather than panicking.
    #[must_use]
    pub fn summary_ms(&self) -> Summary {
        if self.count == 0 {
            return Summary {
                count: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                iqr: 0.0,
            };
        }
        let mean = self.mean_ns();
        let var = (self.sum_sq_ns / self.count as f64 - mean * mean).max(0.0);
        Summary {
            count: self.count as usize,
            mean: mean / 1e6,
            std: var.sqrt() / 1e6,
            min: self.min_ns as f64 / 1e6,
            max: self.max_ns as f64 / 1e6,
            p50: self.percentile_ns(50.0) / 1e6,
            p90: self.percentile_ns(90.0) / 1e6,
            p99: self.percentile_ns(99.0) / 1e6,
            iqr: (self.percentile_ns(75.0) - self.percentile_ns(25.0)) / 1e6,
        }
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_total_are_exact() {
        let mut h = LogHistogram::new();
        for us in [100u64, 200, 300] {
            h.record(Span::from_micros(us));
        }
        assert_eq!(h.count(), 3);
        assert!((h.mean_ns() - 200_000.0).abs() < 1e-9);
        assert_eq!(h.total(), Span::from_micros(600));
    }

    #[test]
    fn percentiles_are_within_a_bucket() {
        let mut h = LogHistogram::new();
        for i in 1..=1000u64 {
            h.record(Span::from_micros(i));
        }
        let p90 = h.percentile_ns(90.0) / 1e3; // µs
        assert!((850.0..=950.0).contains(&p90), "p90 ≈ 900 µs, got {p90}");
        let p50 = h.percentile_ns(50.0) / 1e3;
        assert!((470.0..=540.0).contains(&p50), "p50 ≈ 500 µs, got {p50}");
    }

    #[test]
    fn fraction_below_matches_exact_within_quantization() {
        let mut h = LogHistogram::new();
        for i in 0..100u64 {
            h.record(Span::from_micros(50 + i * 20)); // 50 µs … 2.03 ms
        }
        let frac = h.fraction_below(Span::from_millis(1));
        assert!((0.42..=0.52).contains(&frac), "≈48% below 1 ms, got {frac}");
    }

    #[test]
    fn sub_floor_durations_land_in_bucket_zero() {
        let mut h = LogHistogram::new();
        h.record(Span::from_nanos(3));
        h.record(Span::from_nanos(999));
        assert_eq!(h.count(), 2);
        assert_eq!(h.fraction_below(Span::from_micros(100)), 1.0);
    }

    #[test]
    fn percentile_endpoints_are_the_exact_min_and_max() {
        // Regression: p0 used to return the first occupied bucket's
        // *upper* edge (above the true min) and p100 relied on the bucket
        // walk instead of the tracked max.
        let mut h = LogHistogram::new();
        for us in [7u64, 40, 900, 12_345] {
            h.record(Span::from_micros(us));
        }
        assert_eq!(h.percentile_ns(0.0), 7_000.0, "p0 is the exact minimum");
        assert_eq!(
            h.percentile_ns(100.0),
            12_345_000.0,
            "p100 is the exact maximum"
        );
        // Monotonic across the endpoint seam.
        assert!(h.percentile_ns(0.0) <= h.percentile_ns(5.0));
        assert!(h.percentile_ns(95.0) <= h.percentile_ns(100.0));
    }

    #[test]
    fn single_sample_histogram_pins_every_percentile_to_the_sample() {
        let mut h = LogHistogram::new();
        h.record(Span::from_micros(123));
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(h.percentile_ns(p), 123_000.0, "p{p}");
        }
    }

    #[test]
    fn fraction_below_handles_sub_floor_thresholds() {
        // Regression: thresholds under bucket 0's upper edge mapped to
        // cutoff index 0, so `counts[..0]` claimed nothing lay below them
        // even when everything did.
        let mut h = LogHistogram::new();
        h.record(Span::from_nanos(3));
        h.record(Span::from_nanos(999));
        // At or below the recorded min: nothing is strictly below.
        assert_eq!(h.fraction_below(Span::from_nanos(2)), 0.0);
        assert_eq!(h.fraction_below(Span::from_nanos(3)), 0.0);
        // Inside bucket 0 with mass on both sides: whole-bucket
        // attribution (the documented one-bucket quantization).
        assert_eq!(h.fraction_below(Span::from_nanos(500)), 1.0);
        // Above the recorded max: everything is below.
        assert_eq!(h.fraction_below(Span::from_nanos(1_500)), 1.0);

        let mut single = LogHistogram::new();
        single.record(Span::from_nanos(3));
        assert_eq!(single.fraction_below(Span::from_nanos(10)), 1.0);
        assert_eq!(single.fraction_below(Span::from_nanos(3)), 0.0);
    }

    #[test]
    fn summary_matches_exact_moments() {
        let mut h = LogHistogram::new();
        for ms in [1u64, 2, 3, 4, 5] {
            h.record(Span::from_millis(ms));
        }
        let s = h.summary_ms();
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-9);
        assert!((s.std - 2.0f64.sqrt()).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn empty_histogram_is_zero_safe() {
        // Regression: an all-faulted run records nothing into a latency
        // histogram; summaries and percentiles must not panic.
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_ns(50.0), 0.0);
        assert_eq!(h.percentile_ns(99.0), 0.0);
        let s = h.summary_ms();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.p99, 0.0);
        assert_eq!(s.iqr, 0.0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.total(), Span::ZERO);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0,100]")]
    fn out_of_range_percentile_still_panics() {
        let h = LogHistogram::new();
        let _ = h.percentile_ns(101.0);
    }

    #[test]
    fn huge_durations_saturate_the_last_bucket() {
        let mut h = LogHistogram::new();
        h.record(Span::from_secs(100_000));
        assert_eq!(h.count(), 1);
        let _ = h.percentile_ns(99.0);
    }
}
