//! Analysis over LotusTrace records: the computations behind the paper's
//! Table II, Figures 4–5 and Figure 6(b).

use std::collections::BTreeMap;

use lotus_data::stats::{fraction_below, Summary};
use lotus_sim::{Span, Time};

use super::record::{SpanKind, TraceRecord};

/// Per-operation elapsed-time statistics (one row of Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct OpStats {
    /// Operation name as logged.
    pub name: String,
    /// Number of executions.
    pub count: u64,
    /// Elapsed-time distribution, in milliseconds.
    pub summary: Summary,
    /// Fraction of executions under 10 ms.
    pub frac_below_10ms: f64,
    /// Fraction of executions under 100 µs.
    pub frac_below_100us: f64,
    /// Total CPU time across all executions.
    pub total_cpu: Span,
}

/// Computes per-operation statistics, in order of first appearance in the
/// log (which is pipeline order).
#[must_use]
pub fn per_op_stats(records: &[TraceRecord]) -> Vec<OpStats> {
    let mut order: Vec<String> = Vec::new();
    let mut durations: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for r in records {
        if let SpanKind::Op(name) = &r.kind {
            if !durations.contains_key(name) {
                order.push(name.clone());
            }
            durations
                .entry(name.clone())
                .or_default()
                .push(r.duration.as_millis_f64());
        }
    }
    order
        .into_iter()
        .map(|name| {
            let ms = &durations[&name];
            OpStats {
                count: ms.len() as u64,
                summary: Summary::of(ms),
                frac_below_10ms: fraction_below(ms, 10.0),
                frac_below_100us: fraction_below(ms, 0.1),
                total_cpu: Span::from_secs_f64(ms.iter().sum::<f64>() / 1e3),
                name,
            }
        })
        .collect()
}

/// Everything LotusTrace knows about one batch's journey.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BatchTimeline {
    /// Batch id.
    pub batch_id: u64,
    /// Worker pid that preprocessed the batch.
    pub worker_pid: Option<u32>,
    /// Fetch span on the worker (\[T1\]): (start, duration).
    pub preprocessed: Option<(Time, Span)>,
    /// Main-process wait (\[T2\]): (start, duration, out_of_order).
    pub wait: Option<(Time, Span, bool)>,
    /// Consumption span on the main process: (start, duration).
    pub consumed: Option<(Time, Span)>,
}

impl BatchTimeline {
    /// Delay time: how long the batch sat preprocessed before the main
    /// process consumed it (the arrow length in Figure 2 / Figure 3).
    #[must_use]
    pub fn delay(&self) -> Option<Span> {
        let (p_start, p_dur) = self.preprocessed?;
        let (c_start, _) = self.consumed?;
        Some(c_start.saturating_since(p_start + p_dur))
    }

    /// Wait time: how long the main process was blocked for this batch.
    #[must_use]
    pub fn wait_span(&self) -> Option<Span> {
        self.wait.map(|(_, d, _)| d)
    }
}

/// Reassembles per-batch timelines from the record stream, ordered by
/// batch id.
#[must_use]
pub fn batch_timelines(records: &[TraceRecord]) -> Vec<BatchTimeline> {
    let mut map: BTreeMap<u64, BatchTimeline> = BTreeMap::new();
    for r in records {
        if matches!(r.kind, SpanKind::Op(_) | SpanKind::StorageRead(_)) || r.kind.is_instant() {
            continue; // per-item ops, storage reads and fault marks are
                      // not batch spans
        }
        let entry = map.entry(r.batch_id).or_insert_with(|| BatchTimeline {
            batch_id: r.batch_id,
            ..BatchTimeline::default()
        });
        match &r.kind {
            SpanKind::BatchPreprocessed => {
                entry.worker_pid = Some(r.pid);
                entry.preprocessed = Some((r.start, r.duration));
            }
            SpanKind::BatchWait => entry.wait = Some((r.start, r.duration, r.out_of_order)),
            SpanKind::BatchConsumed => entry.consumed = Some((r.start, r.duration)),
            _ => unreachable!("filtered above"),
        }
    }
    map.into_values().collect()
}

/// Aggregate view of the fault events in a log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSummary {
    /// Injected per-sample errors, as `(batch_id, op)` pairs.
    pub injected: Vec<(u64, String)>,
    /// Pids of workers observed to have died.
    pub dead_workers: Vec<u32>,
    /// Batch ids that were redispatched to a surviving worker.
    pub redispatched: Vec<u64>,
}

impl FaultSummary {
    /// True if the log contains no fault events at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.injected.is_empty() && self.dead_workers.is_empty() && self.redispatched.is_empty()
    }
}

/// Collects the fault-injection marks (`FaultInjected`, `WorkerDied`,
/// `BatchRedispatched`) out of a record stream, in log order.
#[must_use]
pub fn fault_summary(records: &[TraceRecord]) -> FaultSummary {
    let mut summary = FaultSummary::default();
    for r in records {
        match &r.kind {
            SpanKind::FaultInjected(op) => summary.injected.push((r.batch_id, op.clone())),
            SpanKind::WorkerDied => summary.dead_workers.push(r.pid),
            SpanKind::BatchRedispatched => summary.redispatched.push(r.batch_id),
            _ => {}
        }
    }
    summary
}

/// Forensic context for one worker death, joined from the metrics
/// gauge time-series at the death instant.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerDeathContext {
    /// The dead worker's pid.
    pub pid: u32,
    /// When the main process observed the death.
    pub at: Time,
    /// Shared data-queue depth in effect at the death (step-function
    /// lookup; `None` when no depth gauge was recorded by then).
    pub data_queue_depth: Option<f64>,
    /// Dispatched-but-unreturned batches at the death — the orphan
    /// inventory the redispatcher has to drain.
    pub in_flight: Option<f64>,
    /// Live workers *after* this death was accounted.
    pub live_workers_after: Option<f64>,
}

/// Forensic context for one batch redispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct RedispatchContext {
    /// The redispatched batch.
    pub batch_id: u64,
    /// The surviving worker that received it.
    pub to_pid: u32,
    /// When the redispatch happened.
    pub at: Time,
    /// Latency from the most recent worker death at or before `at` —
    /// how long the orphan sat before being re-sent. `None` when the log
    /// has no preceding death (a malformed or truncated trace).
    pub latency_after_death: Option<Span>,
}

/// [`FaultSummary`] enriched with metrics-derived context: what the
/// pipeline looked like *at* each fault, not just that it happened.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultForensics {
    /// Per-death context, in log order.
    pub deaths: Vec<WorkerDeathContext>,
    /// Per-redispatch context, in log order.
    pub redispatches: Vec<RedispatchContext>,
}

/// Joins the fault marks in a record stream with a metrics snapshot:
/// each worker death is annotated with the queue depth / in-flight
/// inventory in effect at that instant (step-function lookup into the
/// gauge series), and each redispatch with its latency since the most
/// recent preceding death.
#[must_use]
pub fn fault_forensics(
    records: &[TraceRecord],
    metrics: &crate::metrics::MetricsSnapshot,
) -> FaultForensics {
    use crate::metrics::names;

    let gauge_at = |name: &str, at: Time| -> Option<f64> {
        metrics.gauges.get(name).and_then(|g| g.value_at(at))
    };
    let mut out = FaultForensics::default();
    let mut last_death: Option<Time> = None;
    for r in records {
        match &r.kind {
            SpanKind::WorkerDied => {
                last_death = Some(r.start);
                out.deaths.push(WorkerDeathContext {
                    pid: r.pid,
                    at: r.start,
                    data_queue_depth: gauge_at("queue_depth.data_queue", r.start),
                    in_flight: gauge_at(names::IN_FLIGHT, r.start),
                    live_workers_after: gauge_at(names::LIVE_WORKERS, r.start),
                });
            }
            SpanKind::BatchRedispatched => out.redispatches.push(RedispatchContext {
                batch_id: r.batch_id,
                to_pid: r.pid,
                at: r.start,
                latency_after_death: last_death.map(|d| r.start.saturating_since(d)),
            }),
            _ => {}
        }
    }
    out
}

/// Distribution of per-batch preprocessing times, in milliseconds
/// (Figure 4's box-plot data).
///
/// # Panics
///
/// Panics if the log contains no batch-preprocessed records.
#[must_use]
pub fn preprocess_time_summary(records: &[TraceRecord]) -> Summary {
    let ms: Vec<f64> = batch_timelines(records)
        .iter()
        .filter_map(|b| b.preprocessed.map(|(_, d)| d.as_millis_f64()))
        .collect();
    Summary::of(&ms)
}

/// Fraction of batches whose main-process wait exceeded `threshold`
/// (Figure 5(a)). Out-of-order cache hits count as zero-wait batches.
#[must_use]
pub fn fraction_wait_above(records: &[TraceRecord], threshold: Span) -> f64 {
    let timelines = batch_timelines(records);
    let waits: Vec<&BatchTimeline> = timelines.iter().filter(|b| b.wait.is_some()).collect();
    if waits.is_empty() {
        return 0.0;
    }
    waits
        .iter()
        .filter(|b| b.wait_span().unwrap_or(Span::ZERO) > threshold)
        .count() as f64
        / waits.len() as f64
}

/// Fraction of batches whose delay time exceeded `threshold`
/// (Figure 5(b)).
#[must_use]
pub fn fraction_delay_above(records: &[TraceRecord], threshold: Span) -> f64 {
    let timelines = batch_timelines(records);
    let delays: Vec<Span> = timelines.iter().filter_map(BatchTimeline::delay).collect();
    if delays.is_empty() {
        return 0.0;
    }
    delays.iter().filter(|&&d| d > threshold).count() as f64 / delays.len() as f64
}

/// Total preprocessing CPU time summed over all batch fetches
/// (Figure 6's "total CPU seconds" trend).
#[must_use]
pub fn total_preprocess_cpu(records: &[TraceRecord]) -> Span {
    records
        .iter()
        .filter(|r| r.kind == SpanKind::BatchPreprocessed)
        .map(|r| r.duration)
        .sum()
}

/// The stages a per-item span can belong to, with their total elapsed
/// times: the \[T0\] storage fetch, the `Loader` source work net of
/// storage (decode + Python dispatch), the transform chain, and the final
/// `C(n)` collation. The `lotus tune` bottleneck attribution is built on
/// these shares.
///
/// # Examples
///
/// ```
/// use lotus_core::trace::analysis::OpClassTotals;
/// use lotus_sim::Span;
///
/// let totals = OpClassTotals {
///     storage: Span::ZERO,
///     load: Span::from_millis(10),
///     transform: Span::from_millis(70),
///     collate: Span::from_millis(20),
/// };
/// let (class, share) = totals.dominant().unwrap();
/// assert_eq!(class, "transform");
/// assert!((share - 0.7).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpClassTotals {
    /// Total elapsed time of storage reads (\[T0\]). Storage waits happen
    /// *inside* the `Loader` span, so this share has already been
    /// subtracted out of [`OpClassTotals::load`] — the four classes are
    /// disjoint and sum to the full per-item time.
    pub storage: Span,
    /// Total elapsed time of `Loader` ops net of storage reads (decode +
    /// dataset dispatch).
    pub load: Span,
    /// Total elapsed time of transform ops (everything that is neither
    /// the `Loader` nor a collate).
    pub transform: Span,
    /// Total elapsed time of `C(n)` collate ops.
    pub collate: Span,
}

impl OpClassTotals {
    /// Sum over all four classes.
    #[must_use]
    pub fn total(&self) -> Span {
        self.storage + self.load + self.transform + self.collate
    }

    /// The dominant class as
    /// `("storage" | "load" | "transform" | "collate", share)`, with
    /// `share` in `[0, 1]`. `None` when no op time was recorded.
    #[must_use]
    pub fn dominant(&self) -> Option<(&'static str, f64)> {
        let total = self.total().as_nanos();
        if total == 0 {
            return None;
        }
        let classes = [
            ("storage", self.storage),
            ("load", self.load),
            ("transform", self.transform),
            ("collate", self.collate),
        ];
        classes
            .iter()
            .max_by_key(|(_, s)| s.as_nanos())
            .map(|&(name, s)| (name, s.as_nanos() as f64 / total as f64))
    }

    /// The \[T0\] share of the total per-item time, in `[0, 1]` (zero for
    /// an empty log).
    #[must_use]
    pub fn storage_fraction(&self) -> f64 {
        let total = self.total().as_nanos();
        if total == 0 {
            return 0.0;
        }
        self.storage.as_nanos() as f64 / total as f64
    }
}

/// Buckets per-item elapsed time into the pipeline stages: `StorageRead`
/// spans are the \[T0\] fetch, `Loader` ops are the source work (their
/// storage wait subtracted, since reads nest inside the `Loader` span),
/// `C(n)` ops are collation, and everything else is the transform chain.
#[must_use]
pub fn op_class_totals(records: &[TraceRecord]) -> OpClassTotals {
    let mut totals = OpClassTotals::default();
    for r in records {
        match &r.kind {
            SpanKind::StorageRead(_) => totals.storage += r.duration,
            SpanKind::Op(name) => {
                if name == "Loader" {
                    totals.load += r.duration;
                } else if name.starts_with("C(") && name.ends_with(')') {
                    totals.collate += r.duration;
                } else {
                    totals.transform += r.duration;
                }
            }
            _ => {}
        }
    }
    // Storage waits happen inside the Loader span; make the classes
    // disjoint so shares sum to 1.
    totals.load = totals.load.saturating_sub(totals.storage);
    totals
}

/// Total \[T0\] elapsed time per serving tier, keyed by the tier's stable
/// name (`page-cache` / `local-disk` / `object-store`).
///
/// # Examples
///
/// ```
/// use lotus_core::trace::analysis::storage_tier_totals;
/// use lotus_core::trace::{SpanKind, TraceRecord};
/// use lotus_sim::{Span, Time};
///
/// let read = |tier: &str, dur_us: u64| TraceRecord {
///     kind: SpanKind::StorageRead(tier.to_string()),
///     pid: 4243,
///     batch_id: 0,
///     start: Time::ZERO,
///     duration: Span::from_micros(dur_us),
///     out_of_order: false,
///     queue_delay: Span::ZERO,
/// };
/// let totals = storage_tier_totals(&[
///     read("object-store", 5_000),
///     read("page-cache", 2),
///     read("object-store", 4_000),
/// ]);
/// assert_eq!(totals["object-store"], Span::from_micros(9_000));
/// assert_eq!(totals["page-cache"], Span::from_micros(2));
/// ```
#[must_use]
pub fn storage_tier_totals(records: &[TraceRecord]) -> BTreeMap<String, Span> {
    let mut totals: BTreeMap<String, Span> = BTreeMap::new();
    for r in records {
        if let SpanKind::StorageRead(tier) = &r.kind {
            *totals.entry(tier.clone()).or_insert(Span::ZERO) += r.duration;
        }
    }
    totals
}

/// Total elapsed time per operation (Figure 6(b): per-op CPU time).
#[must_use]
pub fn per_op_cpu_totals(records: &[TraceRecord]) -> BTreeMap<String, Span> {
    let mut totals: BTreeMap<String, Span> = BTreeMap::new();
    for r in records {
        if let SpanKind::Op(name) = &r.kind {
            *totals.entry(name.clone()).or_insert(Span::ZERO) += r.duration;
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: SpanKind, batch: u64, start_ns: u64, dur_ns: u64) -> TraceRecord {
        TraceRecord {
            kind,
            pid: 1,
            batch_id: batch,
            start: Time::from_nanos(start_ns),
            duration: Span::from_nanos(dur_ns),
            out_of_order: false,
            queue_delay: Span::ZERO,
        }
    }

    fn sample_log() -> Vec<TraceRecord> {
        vec![
            rec(SpanKind::Op("Loader".into()), 0, 0, 5_000_000),
            rec(SpanKind::Op("Loader".into()), 0, 5_000_000, 15_000_000),
            rec(SpanKind::Op("RRC".into()), 0, 20_000_000, 50_000),
            rec(SpanKind::BatchPreprocessed, 0, 0, 30_000_000),
            rec(SpanKind::BatchWait, 0, 0, 31_000_000),
            rec(SpanKind::BatchConsumed, 0, 40_000_000, 2_000_000),
            rec(SpanKind::BatchPreprocessed, 1, 30_000_000, 10_000_000),
            rec(SpanKind::BatchWait, 1, 42_000_000, 1_000),
            rec(SpanKind::BatchConsumed, 1, 43_000_000, 2_000_000),
        ]
    }

    #[test]
    fn op_stats_compute_fractions_and_order() {
        let stats = per_op_stats(&sample_log());
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "Loader");
        assert_eq!(stats[0].count, 2);
        assert!((stats[0].summary.mean - 10.0).abs() < 1e-9);
        assert_eq!(stats[0].frac_below_10ms, 0.5);
        assert_eq!(stats[0].frac_below_100us, 0.0);
        assert_eq!(stats[1].name, "RRC");
        assert_eq!(stats[1].frac_below_100us, 1.0);
    }

    #[test]
    fn timelines_reassemble_and_compute_delay() {
        let timelines = batch_timelines(&sample_log());
        assert_eq!(timelines.len(), 2);
        let b0 = &timelines[0];
        // Batch 0: preprocessed ends at 30 ms, consumed starts at 40 ms.
        assert_eq!(b0.delay().unwrap().as_nanos(), 10_000_000);
        assert_eq!(b0.wait_span().unwrap().as_nanos(), 31_000_000);
        let b1 = &timelines[1];
        assert_eq!(b1.delay().unwrap().as_nanos(), 3_000_000);
    }

    #[test]
    fn wait_and_delay_fractions() {
        let log = sample_log();
        assert_eq!(fraction_wait_above(&log, Span::from_millis(30)), 0.5);
        assert_eq!(fraction_wait_above(&log, Span::from_millis(500)), 0.0);
        assert_eq!(fraction_delay_above(&log, Span::from_millis(5)), 0.5);
    }

    #[test]
    fn cpu_totals_sum_durations() {
        let log = sample_log();
        assert_eq!(total_preprocess_cpu(&log).as_nanos(), 40_000_000);
        let per_op = per_op_cpu_totals(&log);
        assert_eq!(per_op["Loader"].as_nanos(), 20_000_000);
        assert_eq!(per_op["RRC"].as_nanos(), 50_000);
    }

    #[test]
    fn op_classes_bucket_loader_transforms_and_collate() {
        let mut log = sample_log();
        log.push(rec(SpanKind::Op("C(4)".into()), 0, 21_000_000, 2_000_000));
        let classes = op_class_totals(&log);
        assert_eq!(classes.load.as_nanos(), 20_000_000);
        assert_eq!(classes.transform.as_nanos(), 50_000); // RRC
        assert_eq!(classes.collate.as_nanos(), 2_000_000);
        assert_eq!(classes.total().as_nanos(), 22_050_000);
        let (name, share) = classes.dominant().unwrap();
        assert_eq!(name, "load");
        assert!(share > 0.9);
        assert_eq!(op_class_totals(&[]).dominant(), None);
    }

    #[test]
    fn storage_reads_split_out_of_the_loader_share() {
        let mut log = sample_log();
        // 15 ms of the 20 ms Loader time was actually storage wait.
        log.push(rec(
            SpanKind::StorageRead("object-store".into()),
            0,
            0,
            15_000_000,
        ));
        let classes = op_class_totals(&log);
        assert_eq!(classes.storage.as_nanos(), 15_000_000);
        assert_eq!(classes.load.as_nanos(), 5_000_000);
        // Total is unchanged: storage was carved out of load, not added.
        assert_eq!(classes.total().as_nanos(), 20_050_000);
        let (name, share) = classes.dominant().unwrap();
        assert_eq!(name, "storage");
        assert!(share > 0.7);
        assert!((classes.storage_fraction() - share).abs() < 1e-12);

        let tiers = storage_tier_totals(&log);
        assert_eq!(tiers.len(), 1);
        assert_eq!(tiers["object-store"], Span::from_nanos(15_000_000));

        // Storage reads never create phantom batch timelines.
        assert_eq!(batch_timelines(&log).len(), 2);
    }

    #[test]
    fn preprocess_summary_is_in_milliseconds() {
        let s = preprocess_time_summary(&sample_log());
        assert_eq!(s.count, 2);
        assert!((s.mean - 20.0).abs() < 1e-9);
    }

    #[test]
    fn fault_marks_summarize_and_stay_out_of_timelines() {
        let mut log = sample_log();
        log.push(rec(
            SpanKind::FaultInjected("ToTensor".into()),
            7,
            50_000_000,
            0,
        ));
        log.push(rec(SpanKind::WorkerDied, 0, 60_000_000, 0));
        log.push(rec(SpanKind::BatchRedispatched, 7, 61_000_000, 0));
        let summary = fault_summary(&log);
        assert_eq!(summary.injected, vec![(7, "ToTensor".to_string())]);
        assert_eq!(summary.dead_workers, vec![1]);
        assert_eq!(summary.redispatched, vec![7]);
        assert!(!summary.is_empty());
        // The marks do not create phantom batch timelines.
        assert_eq!(batch_timelines(&log).len(), 2);
        assert!(fault_summary(&sample_log()).is_empty());
    }

    #[test]
    fn fault_forensics_joins_gauges_and_redispatch_latency() {
        use crate::metrics::{names, MetricsRegistry};

        let registry = MetricsRegistry::new();
        registry.set_gauge("queue_depth.data_queue", Time::from_nanos(10_000_000), 3.0);
        registry.set_gauge(names::IN_FLIGHT, Time::from_nanos(20_000_000), 2.0);
        registry.set_gauge(names::LIVE_WORKERS, Time::ZERO, 2.0);
        registry.set_gauge(names::LIVE_WORKERS, Time::from_nanos(60_000_000), 1.0);

        let mut log = sample_log();
        log.push(rec(SpanKind::WorkerDied, 0, 60_000_000, 0));
        log.push(rec(SpanKind::BatchRedispatched, 7, 61_500_000, 0));
        let forensics = fault_forensics(&log, &registry.snapshot());

        assert_eq!(forensics.deaths.len(), 1);
        let death = &forensics.deaths[0];
        assert_eq!(death.at, Time::from_nanos(60_000_000));
        assert_eq!(death.data_queue_depth, Some(3.0));
        assert_eq!(death.in_flight, Some(2.0));
        assert_eq!(death.live_workers_after, Some(1.0));

        assert_eq!(forensics.redispatches.len(), 1);
        let red = &forensics.redispatches[0];
        assert_eq!(red.batch_id, 7);
        assert_eq!(red.latency_after_death, Some(Span::from_nanos(1_500_000)));

        // No faults, no metrics: empty forensics, no panics.
        let clean = fault_forensics(&sample_log(), &MetricsRegistry::new().snapshot());
        assert_eq!(clean, FaultForensics::default());
    }
}
