//! LotusTrace: instrumented tracing of the preprocessing data flow
//! (§III of the paper).

pub mod analysis;
pub mod chrome;
pub mod hist;
pub mod insights;
pub mod viz;

mod logger;
mod record;

pub use logger::{LotusTrace, LotusTraceConfig, OpLogMode};
pub use record::{SpanKind, TraceRecord};
