//! Chrome Trace Viewer export (the format the PyTorch profiler emits and
//! `chrome://tracing` consumes), including the data-flow arrows between
//! `SBatchPreprocessed` spans and their `SBatchConsumed` counterparts.
//! Fault-injection marks (`SFaultInjected_*`, `SWorkerDied`,
//! `SBatchRedispatched_*`) render as instant events on the process they
//! happened on.

use serde_json::{json, Value};

use super::analysis::batch_timelines;
use super::record::{parse_label, SpanKind, TraceRecord};

/// Export options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChromeTraceOptions {
    /// Coarse traces show only batch-level spans (the paper's Figure 2);
    /// fine traces add every per-operation span.
    pub coarse: bool,
}

/// Converts LotusTrace records into a Chrome Trace Viewer JSON document.
///
/// LotusTrace events carry **negative** synthetic ids so they can be
/// merged with a PyTorch-profiler trace (whose ids are positive) without
/// collisions — see [`merge_traces`].
#[must_use]
pub fn to_chrome_trace(records: &[TraceRecord], options: ChromeTraceOptions) -> Value {
    let mut events = Vec::new();
    let mut next_id: i64 = -1;
    let mut take_id = || {
        let id = next_id;
        next_id -= 1;
        id
    };

    for r in records {
        if options.coarse && matches!(r.kind, SpanKind::Op(_) | SpanKind::StorageRead(_)) {
            continue;
        }
        if r.kind.is_instant() {
            // Zero-duration lifecycle marks (faults, deaths, redispatches)
            // become process-scoped instant events.
            events.push(json!({
                "name": r.kind.label(r.batch_id),
                "ph": "i",
                "s": "p",
                "ts": r.start.as_nanos() as f64 / 1e3,
                "pid": r.pid,
                "tid": r.pid,
                "id": take_id(),
                "args": json!({
                    "batch_id": r.batch_id,
                }),
            }));
            continue;
        }
        events.push(json!({
            "name": r.kind.label(r.batch_id),
            "ph": "X",
            "ts": r.start.as_nanos() as f64 / 1e3,
            "dur": r.duration.as_nanos() as f64 / 1e3,
            "pid": r.pid,
            "tid": r.pid,
            "id": take_id(),
            "args": json!({
                "batch_id": r.batch_id,
                "out_of_order": r.out_of_order,
                "queue_delay_ns": r.queue_delay.as_nanos(),
            }),
        }));
    }

    // Flow arrows: SBatchPreprocessed end → SBatchConsumed start.
    for timeline in batch_timelines(records) {
        let (Some((p_start, p_dur)), Some((c_start, _)), Some(worker)) = (
            timeline.preprocessed,
            timeline.consumed,
            timeline.worker_pid,
        ) else {
            continue;
        };
        let flow_id = take_id();
        let name = format!("batch_{}_flow", timeline.batch_id);
        let main_pid = records
            .iter()
            .find(|r| r.kind == SpanKind::BatchConsumed && r.batch_id == timeline.batch_id)
            .map_or(0, |r| r.pid);
        events.push(json!({
            "name": name.clone(),
            "ph": "s",
            "ts": (p_start + p_dur).as_nanos() as f64 / 1e3,
            "pid": worker,
            "tid": worker,
            "id": flow_id,
            "cat": "dataflow",
        }));
        events.push(json!({
            "name": name,
            "ph": "f",
            "bp": "e",
            "ts": c_start.as_nanos() as f64 / 1e3,
            "pid": main_pid,
            "tid": main_pid,
            "id": flow_id,
            "cat": "dataflow",
        }));
    }

    json!({ "traceEvents": events, "displayTimeUnit": "ms" })
}

/// Merges a LotusTrace document into another Chrome-trace document (e.g.
/// one emitted by the PyTorch profiler), preserving both event sets. The
/// negative LotusTrace ids guarantee no id collisions.
///
/// # Errors
///
/// Returns a description of the offending document when either side
/// lacks a `traceEvents` array (e.g. a foreign or truncated profile).
pub fn merge_traces(base: &Value, lotus: &Value) -> Result<Value, String> {
    let mut events = base
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| "base document missing traceEvents".to_string())?
        .clone();
    events.extend(
        lotus
            .get("traceEvents")
            .and_then(Value::as_array)
            .ok_or_else(|| "lotus document missing traceEvents".to_string())?
            .iter()
            .cloned(),
    );
    Ok(json!({ "traceEvents": events, "displayTimeUnit": "ms" }))
}

/// Parses a Chrome-trace document produced by [`to_chrome_trace`] back
/// into trace records (flow arrows and foreign events are skipped).
///
/// # Errors
///
/// Returns a description of the first malformed LotusTrace event.
pub fn from_chrome_trace(doc: &Value) -> Result<Vec<TraceRecord>, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| "document missing traceEvents".to_string())?;
    let mut records = Vec::new();
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str);
        let instant = ph == Some("i");
        if ph != Some("X") && !instant {
            continue; // flow arrows, metadata
        }
        let Some(name) = e.get("name").and_then(Value::as_str) else {
            continue;
        };
        if !name.starts_with('S') {
            continue; // a foreign (e.g. PyTorch profiler) event
        }
        // Negative ids mark LotusTrace events.
        if e.get("id")
            .and_then(Value::as_i64)
            .is_some_and(|id| id >= 0)
        {
            continue;
        }
        let ts_us = e
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or("event missing ts")?;
        let dur_us = if instant {
            0.0
        } else {
            e.get("dur")
                .and_then(Value::as_f64)
                .ok_or("event missing dur")?
        };
        let pid = e
            .get("pid")
            .and_then(Value::as_u64)
            .ok_or("event missing pid")? as u32;
        let batch_id = e
            .pointer("/args/batch_id")
            .and_then(Value::as_u64)
            .ok_or("event missing args.batch_id")?;
        let out_of_order = e
            .pointer("/args/out_of_order")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        let queue_delay_ns = e
            .pointer("/args/queue_delay_ns")
            .and_then(Value::as_u64)
            .unwrap_or(0);
        let (kind, _) = parse_label(name)?;
        records.push(TraceRecord {
            kind,
            pid,
            batch_id,
            start: lotus_sim::Time::from_nanos((ts_us * 1e3).round() as u64),
            duration: lotus_sim::Span::from_nanos((dur_us * 1e3).round() as u64),
            out_of_order,
            queue_delay: lotus_sim::Span::from_nanos(queue_delay_ns),
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_sim::{Span, Time};

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                kind: SpanKind::Op("Loader".into()),
                pid: 2,
                batch_id: 0,
                start: Time::from_nanos(0),
                duration: Span::from_micros(800),
                out_of_order: false,
                queue_delay: Span::ZERO,
            },
            TraceRecord {
                kind: SpanKind::BatchPreprocessed,
                pid: 2,
                batch_id: 0,
                start: Time::from_nanos(0),
                duration: Span::from_millis(2),
                out_of_order: false,
                queue_delay: Span::ZERO,
            },
            TraceRecord {
                kind: SpanKind::BatchConsumed,
                pid: 1,
                batch_id: 0,
                start: Time::from_nanos(3_000_000),
                duration: Span::from_millis(1),
                out_of_order: false,
                queue_delay: Span::ZERO,
            },
        ]
    }

    fn events(v: &Value) -> &Vec<Value> {
        v.get("traceEvents").unwrap().as_array().unwrap()
    }

    #[test]
    fn fine_trace_contains_spans_and_flow_arrows() {
        let doc = to_chrome_trace(&sample(), ChromeTraceOptions::default());
        let evs = events(&doc);
        let names: Vec<&str> = evs.iter().filter_map(|e| e["name"].as_str()).collect();
        assert!(names.contains(&"SLoader"));
        assert!(names.contains(&"SBatchPreprocessed_0"));
        assert!(names.contains(&"batch_0_flow"));
        let phases: Vec<&str> = evs.iter().filter_map(|e| e["ph"].as_str()).collect();
        assert!(phases.contains(&"s"), "flow start event");
        assert!(phases.contains(&"f"), "flow finish event");
    }

    #[test]
    fn coarse_trace_drops_op_spans() {
        let doc = to_chrome_trace(&sample(), ChromeTraceOptions { coarse: true });
        let names: Vec<&str> = events(&doc)
            .iter()
            .filter_map(|e| e["name"].as_str())
            .collect();
        assert!(!names.contains(&"SLoader"));
        assert!(names.contains(&"SBatchPreprocessed_0"));
    }

    #[test]
    fn all_ids_are_negative_synthetic() {
        let doc = to_chrome_trace(&sample(), ChromeTraceOptions::default());
        for e in events(&doc) {
            if let Some(id) = e.get("id").and_then(Value::as_i64) {
                assert!(id < 0, "LotusTrace ids must be negative, got {id}");
            }
        }
    }

    #[test]
    fn timestamps_are_microseconds() {
        let doc = to_chrome_trace(&sample(), ChromeTraceOptions { coarse: true });
        let pre = events(&doc)
            .iter()
            .find(|e| e["name"] == "SBatchPreprocessed_0")
            .unwrap();
        assert_eq!(pre["dur"].as_f64().unwrap(), 2_000.0);
    }

    #[test]
    fn export_import_round_trips() {
        let records = sample();
        let doc = to_chrome_trace(&records, ChromeTraceOptions::default());
        let parsed = from_chrome_trace(&doc).unwrap();
        assert_eq!(parsed.len(), records.len());
        for (p, r) in parsed.iter().zip(&records) {
            assert_eq!(p.kind, r.kind);
            assert_eq!(p.pid, r.pid);
            assert_eq!(p.start, r.start);
            assert_eq!(p.duration, r.duration);
        }
    }

    #[test]
    fn fault_marks_export_as_instants_and_round_trip() {
        let records = vec![
            TraceRecord {
                kind: SpanKind::FaultInjected("ToTensor".into()),
                pid: 4243,
                batch_id: 4,
                start: Time::from_nanos(5_000),
                duration: Span::ZERO,
                out_of_order: false,
                queue_delay: Span::ZERO,
            },
            TraceRecord {
                kind: SpanKind::WorkerDied,
                pid: 4244,
                batch_id: 0,
                start: Time::from_nanos(9_000),
                duration: Span::ZERO,
                out_of_order: false,
                queue_delay: Span::ZERO,
            },
            TraceRecord {
                kind: SpanKind::BatchRedispatched,
                pid: 4245,
                batch_id: 4,
                start: Time::from_nanos(10_000),
                duration: Span::ZERO,
                out_of_order: false,
                queue_delay: Span::ZERO,
            },
        ];
        let doc = to_chrome_trace(&records, ChromeTraceOptions::default());
        let instants: Vec<&Value> = events(&doc).iter().filter(|e| e["ph"] == "i").collect();
        assert_eq!(instants.len(), 3);
        assert!(
            instants.iter().all(|e| e["s"] == "p"),
            "process-scoped instants"
        );
        let parsed = from_chrome_trace(&doc).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn wait_queue_delay_survives_the_chrome_round_trip() {
        let records = vec![TraceRecord {
            kind: SpanKind::BatchWait,
            pid: 1,
            batch_id: 3,
            start: Time::from_nanos(1_000),
            duration: Span::from_micros(1),
            out_of_order: true,
            queue_delay: Span::from_nanos(123_456),
        }];
        let doc = to_chrome_trace(&records, ChromeTraceOptions::default());
        let parsed = from_chrome_trace(&doc).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn import_skips_foreign_events() {
        let torch = json!({ "traceEvents": json!([json!({
            "name": "aten::conv2d", "ph": "X", "ts": 0.0, "dur": 1.0, "pid": 1, "id": 5
        })])});
        assert!(from_chrome_trace(&torch).unwrap().is_empty());
    }

    #[test]
    fn merge_keeps_both_event_sets() {
        let torch = json!({ "traceEvents": json!([json!({ "name": "aten::conv2d", "ph": "X", "id": 5 })]) });
        let lotus = to_chrome_trace(&sample(), ChromeTraceOptions { coarse: true });
        let merged = merge_traces(&torch, &lotus).expect("both sides well-formed");
        let names: Vec<&str> = events(&merged)
            .iter()
            .filter_map(|e| e["name"].as_str())
            .collect();
        assert!(names.contains(&"aten::conv2d"));
        assert!(names.contains(&"SBatchPreprocessed_0"));
    }

    #[test]
    fn merge_rejects_documents_without_trace_events() {
        let lotus = to_chrome_trace(&sample(), ChromeTraceOptions { coarse: true });
        let bad = json!({ "schemaVersion": 1 });
        let err = merge_traces(&bad, &lotus).unwrap_err();
        assert!(err.contains("base document missing traceEvents"));
        let err = merge_traces(&lotus, &bad).unwrap_err();
        assert!(err.contains("lotus document missing traceEvents"));
    }
}
