//! Automated log analysis — the feature the paper's conclusion lists as
//! future work ("we welcome contributions … such as automated log
//! analysis"). Takes a LotusTrace log and produces a diagnosis: where the
//! bottleneck is, how healthy the data flow looks, and what to try next.

use std::collections::BTreeMap;
use std::fmt;

use lotus_sim::Span;

use super::analysis::{batch_timelines, op_class_totals, per_op_cpu_totals, BatchTimeline};
use super::record::{SpanKind, TraceRecord};

/// Share of per-item time in \[T0\] storage reads above which a
/// preprocessing-bound epoch *whose dominant op class is storage* is
/// re-classified as storage-bound. Storage only has to be the largest of
/// the four disjoint classes (storage/load/transform/collate), not an
/// absolute majority, so the floor sits below 0.5: a cold object-store
/// epoch where fetch outweighs decode is storage-bound even when the CPU
/// classes together still sum past it.
pub const STORAGE_BOUND_THRESHOLD: f64 = 0.35;

/// Who limits the epoch's throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The main process mostly waits on preprocessing (GPU starves).
    PreprocessingBound,
    /// The main process mostly waits on preprocessing, and most of the
    /// workers' time goes to \[T0\] storage reads — the storage hierarchy
    /// (cold cache, remote object store, tiny-file seeks), not CPU work,
    /// starves the accelerator.
    StorageBound,
    /// Preprocessed batches mostly wait on the accelerator.
    GpuBound,
    /// Neither side waits much: the pipeline is balanced.
    Balanced,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::PreprocessingBound => f.write_str("preprocessing-bound"),
            Verdict::StorageBound => f.write_str("storage-bound"),
            Verdict::GpuBound => f.write_str("GPU-bound"),
            Verdict::Balanced => f.write_str("balanced"),
        }
    }
}

/// Per-DataLoader-worker activity extracted from the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// OS pid of the worker.
    pub pid: u32,
    /// Batches it preprocessed.
    pub batches: u64,
    /// Total fetch (busy) time.
    pub busy: Span,
}

/// The automated diagnosis of one traced epoch.
#[derive(Debug, Clone)]
pub struct Insights {
    /// Bottleneck classification.
    pub verdict: Verdict,
    /// Mean main-process wait per batch.
    pub mean_wait: Span,
    /// Mean batch delay (preprocessed → consumed).
    pub mean_delay: Span,
    /// Fraction of batches that arrived out of order.
    pub ooo_fraction: f64,
    /// Per-worker activity, ordered by pid.
    pub workers: Vec<WorkerStats>,
    /// Busy-time imbalance across workers: (max − min) / max, 0 when ≤1
    /// worker.
    pub worker_imbalance: f64,
    /// Fraction of the traced interval the accelerator spent consuming
    /// batches (H2D + training step). Low values under a
    /// preprocessing-bound verdict quantify the GPU starvation.
    pub gpu_busy_fraction: f64,
    /// The operation with the largest share of preprocessing CPU, with its
    /// share in `[0, 1]`.
    pub dominant_op: Option<(String, f64)>,
    /// Share of per-item time spent in \[T0\] storage reads, in `[0, 1]`
    /// (zero for logs with no `StorageRead` records — native runs and
    /// closed-form I/O).
    pub t0_fraction: f64,
    /// Human-readable suggestions derived from the above.
    pub recommendations: Vec<String>,
}

fn mean(spans: impl Iterator<Item = Span>) -> Span {
    let v: Vec<Span> = spans.collect();
    if v.is_empty() {
        Span::ZERO
    } else {
        Span::from_nanos(v.iter().map(|s| s.as_nanos()).sum::<u64>() / v.len() as u64)
    }
}

/// Analyzes a LotusTrace log.
///
/// Works with batch-level logs; per-operation records, when present,
/// additionally produce the dominant-op finding.
#[must_use]
pub fn analyze(records: &[TraceRecord]) -> Insights {
    let timelines = batch_timelines(records);
    let mean_wait = mean(timelines.iter().filter_map(BatchTimeline::wait_span));
    let mean_delay = mean(timelines.iter().filter_map(BatchTimeline::delay));
    let with_wait = timelines.iter().filter(|t| t.wait.is_some()).count().max(1);
    let ooo = timelines
        .iter()
        .filter(|t| t.wait.is_some_and(|(_, _, o)| o))
        .count();
    let ooo_fraction = ooo as f64 / with_wait as f64;

    let mut per_worker: BTreeMap<u32, WorkerStats> = BTreeMap::new();
    for r in records {
        if r.kind == SpanKind::BatchPreprocessed {
            let w = per_worker.entry(r.pid).or_insert(WorkerStats {
                pid: r.pid,
                batches: 0,
                busy: Span::ZERO,
            });
            w.batches += 1;
            w.busy += r.duration;
        }
    }
    let workers: Vec<WorkerStats> = per_worker.into_values().collect();
    let worker_imbalance = {
        let busies: Vec<f64> = workers.iter().map(|w| w.busy.as_secs_f64()).collect();
        match (
            busies.iter().cloned().fold(f64::INFINITY, f64::min),
            busies.iter().cloned().fold(0.0, f64::max),
        ) {
            (min, max) if workers.len() > 1 && max > 0.0 => (max - min) / max,
            _ => 0.0,
        }
    };

    let gpu_busy_fraction = {
        let consumed: u64 = records
            .iter()
            .filter(|r| r.kind == SpanKind::BatchConsumed)
            .map(|r| r.duration.as_nanos())
            .sum();
        let start = records
            .iter()
            .map(|r| r.start.as_nanos())
            .min()
            .unwrap_or(0);
        let end = records
            .iter()
            .map(|r| r.end().as_nanos())
            .max()
            .unwrap_or(0);
        if end > start {
            consumed as f64 / (end - start) as f64
        } else {
            0.0
        }
    };

    let op_totals = per_op_cpu_totals(records);
    let total_op_cpu: f64 = op_totals.values().map(|s| s.as_secs_f64()).sum();
    let dominant_op = op_totals
        .iter()
        .max_by(|a, b| a.1.cmp(b.1))
        .filter(|_| total_op_cpu > 0.0)
        .map(|(name, cpu)| (name.clone(), cpu.as_secs_f64() / total_op_cpu));

    // Classification thresholds: a side is "the" bottleneck when its idle
    // time dwarfs the other's by 3×; otherwise balanced. A
    // preprocessing-bound epoch whose workers sit in [T0] storage waits
    // more than in any CPU class is storage-bound: more CPU workers would
    // just queue on the same devices.
    let op_classes = op_class_totals(records);
    let t0_fraction = op_classes.storage_fraction();
    let storage_dominant = matches!(op_classes.dominant(), Some(("storage", _)));
    let (w, d) = (mean_wait.as_nanos() as f64, mean_delay.as_nanos() as f64);
    let verdict = if w > 3.0 * d.max(1.0) {
        if storage_dominant && t0_fraction > STORAGE_BOUND_THRESHOLD {
            Verdict::StorageBound
        } else {
            Verdict::PreprocessingBound
        }
    } else if d > 3.0 * w.max(1.0) {
        Verdict::GpuBound
    } else {
        Verdict::Balanced
    };

    let mut recommendations = Vec::new();
    match verdict {
        Verdict::StorageBound => {
            recommendations.push(format!(
                "{:.0}% of per-item time is [T0] storage fetch: warm the page cache \
                 (a second epoch), pack tiny files into larger records, or move the \
                 dataset to faster/closer storage — extra workers would idle on the \
                 same devices",
                t0_fraction * 100.0
            ));
        }
        Verdict::PreprocessingBound => {
            recommendations.push(
                "the accelerator starves waiting for batches: add DataLoader workers, \
                 or move deterministic operations offline (decode, resize)"
                    .to_string(),
            );
            if let Some((op, share)) = &dominant_op {
                if *share > 0.4 {
                    recommendations.push(format!(
                        "'{op}' accounts for {:.0}% of preprocessing CPU — optimize or \
                         precompute it first",
                        share * 100.0
                    ));
                }
            }
        }
        Verdict::GpuBound => recommendations.push(
            "preprocessing has headroom: consider fewer workers, or co-locating \
             another job's preprocessing on this host"
                .to_string(),
        ),
        Verdict::Balanced => recommendations
            .push("pipeline is balanced; revisit after hardware or batch-size changes".to_string()),
    }
    if ooo_fraction > 0.2 {
        recommendations.push(format!(
            "{:.0}% of batches arrive out of order and sit pinned in the cache: \
             better DataLoader scheduling (non-round-robin index assignment) would \
             reduce wait and delay times",
            ooo_fraction * 100.0
        ));
    }
    if worker_imbalance > 0.25 && workers.len() > 1 {
        recommendations.push(format!(
            "worker busy times are imbalanced ({:.0}% spread): load-balance inputs \
             by size (cf. SpeedyLoader)",
            worker_imbalance * 100.0
        ));
    }

    Insights {
        verdict,
        mean_wait,
        mean_delay,
        ooo_fraction,
        workers,
        worker_imbalance,
        gpu_busy_fraction,
        dominant_op,
        t0_fraction,
        recommendations,
    }
}

impl fmt::Display for Insights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "verdict: {}", self.verdict)?;
        writeln!(
            f,
            "mean wait {} | mean delay {} | out-of-order {:.1}% | GPU busy {:.1}%",
            self.mean_wait,
            self.mean_delay,
            self.ooo_fraction * 100.0,
            self.gpu_busy_fraction * 100.0
        )?;
        if self.t0_fraction > 0.0 {
            writeln!(
                f,
                "storage fetch [T0]: {:.1}% of per-item time",
                self.t0_fraction * 100.0
            )?;
        }
        if let Some((op, share)) = &self.dominant_op {
            writeln!(
                f,
                "dominant op: {op} ({:.0}% of preprocessing CPU)",
                share * 100.0
            )?;
        }
        for w in &self.workers {
            writeln!(
                f,
                "worker {}: {} batches, busy {}",
                w.pid, w.batches, w.busy
            )?;
        }
        for r in &self.recommendations {
            writeln!(f, "→ {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_sim::Time;

    fn rec(
        kind: SpanKind,
        pid: u32,
        batch: u64,
        start_ms: u64,
        dur_ms: u64,
        ooo: bool,
    ) -> TraceRecord {
        TraceRecord {
            kind,
            pid,
            batch_id: batch,
            start: Time::from_nanos(start_ms * 1_000_000),
            duration: Span::from_millis(dur_ms),
            out_of_order: ooo,
            queue_delay: Span::ZERO,
        }
    }

    fn preprocessing_bound_log() -> Vec<TraceRecord> {
        let mut log = Vec::new();
        for b in 0..10 {
            log.push(rec(
                SpanKind::Op("Loader".into()),
                2,
                b,
                b * 1000,
                700,
                false,
            ));
            log.push(rec(
                SpanKind::Op("Normalize".into()),
                2,
                b,
                b * 1000 + 700,
                100,
                false,
            ));
            log.push(rec(SpanKind::BatchPreprocessed, 2, b, b * 1000, 900, false));
            log.push(rec(SpanKind::BatchWait, 1, b, b * 1000, 850, false));
            log.push(rec(
                SpanKind::BatchConsumed,
                1,
                b,
                b * 1000 + 910,
                50,
                false,
            ));
        }
        log
    }

    #[test]
    fn classifies_preprocessing_bound_and_names_the_culprit() {
        let insights = analyze(&preprocessing_bound_log());
        assert_eq!(insights.verdict, Verdict::PreprocessingBound);
        // GPU consumes 50 ms of each ~1 s batch interval: heavily starved.
        assert!(
            insights.gpu_busy_fraction < 0.1,
            "{}",
            insights.gpu_busy_fraction
        );
        let (op, share) = insights.dominant_op.unwrap();
        assert_eq!(op, "Loader");
        assert!(share > 0.8);
        assert!(
            insights
                .recommendations
                .iter()
                .any(|r| r.contains("Loader")),
            "{:?}",
            insights.recommendations
        );
    }

    #[test]
    fn storage_dominated_starvation_is_storage_bound() {
        let mut log = preprocessing_bound_log();
        // Most of each 700 ms Loader span was actually a storage wait.
        for b in 0..10 {
            log.push(rec(
                SpanKind::StorageRead("object-store".into()),
                2,
                b,
                b * 1000,
                650,
                false,
            ));
        }
        let insights = analyze(&log);
        assert_eq!(insights.verdict, Verdict::StorageBound);
        assert!(insights.t0_fraction > 0.5, "{}", insights.t0_fraction);
        assert!(
            insights
                .recommendations
                .iter()
                .any(|r| r.contains("storage")),
            "{:?}",
            insights.recommendations
        );
        // Without the reads the same log is preprocessing-bound.
        let base = analyze(&preprocessing_bound_log());
        assert_eq!(base.verdict, Verdict::PreprocessingBound);
        assert_eq!(base.t0_fraction, 0.0);
    }

    #[test]
    fn classifies_gpu_bound() {
        let mut log = Vec::new();
        for b in 0..10 {
            log.push(rec(SpanKind::BatchPreprocessed, 2, b, b * 100, 80, false));
            log.push(rec(SpanKind::BatchWait, 1, b, b * 1000, 0, false));
            // Consumed long after preprocessing finished.
            log.push(rec(
                SpanKind::BatchConsumed,
                1,
                b,
                b * 1000 + 5000,
                700,
                false,
            ));
        }
        let insights = analyze(&log);
        assert_eq!(insights.verdict, Verdict::GpuBound);
        assert!(insights
            .recommendations
            .iter()
            .any(|r| r.contains("headroom")));
    }

    #[test]
    fn flags_out_of_order_and_imbalance() {
        let mut log = Vec::new();
        for b in 0..10u64 {
            let pid = 2 + (b % 2) as u32;
            // Worker 3 is twice as slow.
            let dur = if pid == 3 { 1800 } else { 900 };
            log.push(rec(
                SpanKind::BatchPreprocessed,
                pid,
                b,
                b * 1000,
                dur,
                false,
            ));
            log.push(rec(SpanKind::BatchWait, 1, b, b * 1000, 1, b % 2 == 0));
            log.push(rec(
                SpanKind::BatchConsumed,
                1,
                b,
                b * 1000 + 2000,
                50,
                false,
            ));
        }
        let insights = analyze(&log);
        assert!(insights.ooo_fraction >= 0.5);
        assert!(
            insights.worker_imbalance > 0.4,
            "{}",
            insights.worker_imbalance
        );
        assert!(insights
            .recommendations
            .iter()
            .any(|r| r.contains("out of order")));
        assert!(insights
            .recommendations
            .iter()
            .any(|r| r.contains("load-balance")));
        assert_eq!(insights.workers.len(), 2);
    }

    #[test]
    fn display_is_complete() {
        let s = analyze(&preprocessing_bound_log()).to_string();
        assert!(s.contains("verdict"));
        assert!(s.contains("→"));
    }
}
