//! The LotusTrace tracer: low-overhead instrumented tracing of the
//! DataLoader data flow.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use lotus_dataflow::Tracer;
use lotus_sim::{ReadOutcome, Span, Time};

use super::analysis::OpStats;
use super::hist::LogHistogram;
use super::record::{SpanKind, TraceRecord};

/// How per-operation (\[T3\]) events are collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpLogMode {
    /// Retain every per-operation record (exact distributions; memory
    /// grows with dataset size).
    Full,
    /// Stream per-operation durations into per-op histograms (constant
    /// memory; the mode for full-ImageNet-scale runs). Log storage is
    /// still accounted as if every record were written to the file.
    Aggregate,
    /// Skip per-operation events entirely (batch-level tracing only).
    Off,
}

/// LotusTrace configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LotusTraceConfig {
    /// Virtual-time cost charged per emitted log record (two clock reads,
    /// a string format and a buffered write). The paper measures ~2 %
    /// wall-time overhead end-to-end; the default here reproduces that.
    pub per_log_overhead: Span,
    /// Per-operation collection mode.
    pub op_mode: OpLogMode,
}

impl Default for LotusTraceConfig {
    fn default() -> Self {
        LotusTraceConfig {
            per_log_overhead: Span::from_nanos(1_500),
            op_mode: OpLogMode::Full,
        }
    }
}

/// The LotusTrace instrumentation: records every data-flow event into an
/// in-memory log with byte-accurate storage accounting, charging only a
/// fixed per-record cost to the traced program.
///
/// Implements [`lotus_dataflow::Tracer`]; attach it to a
/// [`lotus_dataflow::TrainingJob`] and read the records back for analysis
/// ([`crate::trace::analysis`]) or visualization
/// ([`crate::trace::chrome`]).
#[derive(Debug, Default)]
pub struct LotusTrace {
    config: LotusTraceConfig,
    records: Mutex<Vec<TraceRecord>>,
    op_aggregates: Mutex<OpAggregates>,
    log_bytes: AtomicU64,
    /// Cumulative virtual-time overhead this tracer has charged to the
    /// traced program (per-sink accounting for Table III comparisons).
    charged_ns: AtomicU64,
}

#[derive(Debug, Default)]
struct OpAggregates {
    order: Vec<String>,
    by_name: HashMap<String, LogHistogram>,
}

impl LotusTrace {
    /// Creates a tracer with the default configuration.
    #[must_use]
    pub fn new() -> LotusTrace {
        LotusTrace::with_config(LotusTraceConfig::default())
    }

    /// Creates a tracer with an explicit configuration.
    #[must_use]
    pub fn with_config(config: LotusTraceConfig) -> LotusTrace {
        LotusTrace {
            config,
            records: Mutex::new(Vec::new()),
            op_aggregates: Mutex::new(OpAggregates::default()),
            log_bytes: AtomicU64::new(0),
            charged_ns: AtomicU64::new(0),
        }
    }

    fn push(&self, record: TraceRecord) -> Span {
        self.log_bytes
            .fetch_add(record.log_bytes(), Ordering::Relaxed);
        self.records.lock().expect("trace poisoned").push(record);
        self.charge(self.config.per_log_overhead)
    }

    fn charge(&self, overhead: Span) -> Span {
        self.charged_ns
            .fetch_add(overhead.as_nanos(), Ordering::Relaxed);
        overhead
    }

    /// [`OpLogMode::Aggregate`] path: account the record's bytes as if it
    /// were written, then fold the duration into the named histogram.
    fn fold_aggregate(&self, name: &str, dur: Span, record: &TraceRecord) -> Span {
        self.log_bytes
            .fetch_add(record.log_bytes(), Ordering::Relaxed);
        let mut agg = self.op_aggregates.lock().expect("trace poisoned");
        if !agg.by_name.contains_key(name) {
            agg.order.push(name.to_string());
            agg.by_name.insert(name.to_string(), LogHistogram::new());
        }
        agg.by_name
            .get_mut(name)
            .expect("just inserted")
            .record(dur);
        self.charge(self.config.per_log_overhead)
    }

    /// Total virtual-time overhead this tracer has charged to the traced
    /// program so far (its own share of the Table III overhead column).
    #[must_use]
    pub fn charged_overhead(&self) -> Span {
        Span::from_nanos(self.charged_ns.load(Ordering::Relaxed))
    }

    /// A copy of all records collected so far.
    #[must_use]
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().expect("trace poisoned").clone()
    }

    /// Number of records collected.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.lock().expect("trace poisoned").len()
    }

    /// True if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-operation statistics, regardless of collection mode: exact in
    /// [`OpLogMode::Full`], histogram-backed in [`OpLogMode::Aggregate`].
    #[must_use]
    pub fn op_stats(&self) -> Vec<OpStats> {
        match self.config.op_mode {
            OpLogMode::Off => Vec::new(),
            OpLogMode::Full => super::analysis::per_op_stats(&self.records()),
            OpLogMode::Aggregate => {
                let agg = self.op_aggregates.lock().expect("trace poisoned");
                agg.order
                    .iter()
                    .map(|name| {
                        let h = &agg.by_name[name];
                        OpStats {
                            name: name.clone(),
                            count: h.count(),
                            summary: h.summary_ms(),
                            frac_below_10ms: h.fraction_below(Span::from_millis(10)),
                            frac_below_100us: h.fraction_below(Span::from_micros(100)),
                            total_cpu: h.total(),
                        }
                    })
                    .collect()
            }
        }
    }

    /// Total log storage consumed, in bytes (Table III's storage column).
    #[must_use]
    pub fn log_storage_bytes(&self) -> u64 {
        self.log_bytes.load(Ordering::Relaxed)
    }

    /// Serializes the whole log in the line format.
    #[must_use]
    pub fn to_log_string(&self) -> String {
        self.records
            .lock()
            .expect("trace poisoned")
            .iter()
            .map(TraceRecord::to_log_line)
            .collect()
    }
}

impl Tracer for LotusTrace {
    fn on_op(&self, pid: u32, batch_id: u64, name: &str, start: Time, dur: Span) -> Span {
        match self.config.op_mode {
            OpLogMode::Off => Span::ZERO,
            OpLogMode::Full => self.push(TraceRecord {
                kind: SpanKind::Op(name.to_string()),
                pid,
                batch_id,
                start,
                duration: dur,
                out_of_order: false,
                queue_delay: Span::ZERO,
            }),
            OpLogMode::Aggregate => {
                let record = TraceRecord {
                    kind: SpanKind::Op(name.to_string()),
                    pid,
                    batch_id,
                    start,
                    duration: dur,
                    out_of_order: false,
                    queue_delay: Span::ZERO,
                };
                self.fold_aggregate(name, dur, &record)
            }
        }
    }

    fn on_storage_read(&self, pid: u32, batch_id: u64, start: Time, read: &ReadOutcome) -> Span {
        let record = TraceRecord {
            kind: SpanKind::StorageRead(read.tier.as_str().to_string()),
            pid,
            batch_id,
            start,
            duration: read.span,
            out_of_order: false,
            queue_delay: Span::ZERO,
        };
        match self.config.op_mode {
            // Storage reads are per-item events like ops, so they follow
            // the op collection mode: dropped when per-op tracing is off,
            // folded into a per-tier `T0(tier)` histogram when
            // aggregating.
            OpLogMode::Off => Span::ZERO,
            OpLogMode::Full => self.push(record),
            OpLogMode::Aggregate => {
                self.fold_aggregate(&format!("T0({})", read.tier), read.span, &record)
            }
        }
    }

    fn on_batch_preprocessed(&self, pid: u32, batch_id: u64, start: Time, dur: Span) -> Span {
        self.push(TraceRecord {
            kind: SpanKind::BatchPreprocessed,
            pid,
            batch_id,
            start,
            duration: dur,
            out_of_order: false,
            queue_delay: Span::ZERO,
        })
    }

    fn on_batch_wait(
        &self,
        pid: u32,
        batch_id: u64,
        start: Time,
        dur: Span,
        out_of_order: bool,
        queue_delay: Span,
    ) -> Span {
        self.push(TraceRecord {
            kind: SpanKind::BatchWait,
            pid,
            batch_id,
            start,
            duration: dur,
            out_of_order,
            queue_delay,
        })
    }

    fn on_batch_consumed(
        &self,
        pid: u32,
        batch_id: u64,
        start: Time,
        dur: Span,
        _batch_len: usize,
    ) -> Span {
        self.push(TraceRecord {
            kind: SpanKind::BatchConsumed,
            pid,
            batch_id,
            start,
            duration: dur,
            out_of_order: false,
            queue_delay: Span::ZERO,
        })
    }

    fn on_fault_injected(&self, pid: u32, batch_id: u64, op: &str, at: Time) -> Span {
        self.push(TraceRecord {
            kind: SpanKind::FaultInjected(op.to_string()),
            pid,
            batch_id,
            start: at,
            duration: Span::ZERO,
            out_of_order: false,
            queue_delay: Span::ZERO,
        })
    }

    fn on_worker_died(&self, pid: u32, at: Time) -> Span {
        self.push(TraceRecord {
            kind: SpanKind::WorkerDied,
            pid,
            batch_id: 0,
            start: at,
            duration: Span::ZERO,
            out_of_order: false,
            queue_delay: Span::ZERO,
        })
    }

    fn on_batch_redispatched(&self, batch_id: u64, _from_pid: u32, to_pid: u32, at: Time) -> Span {
        self.push(TraceRecord {
            kind: SpanKind::BatchRedispatched,
            pid: to_pid,
            batch_id,
            start: at,
            duration: Span::ZERO,
            out_of_order: false,
            queue_delay: Span::ZERO,
        })
    }

    fn on_batch_stolen(&self, batch_id: u64, _from_pid: u32, to_pid: u32, at: Time) -> Span {
        self.push(TraceRecord {
            kind: SpanKind::BatchStolen,
            pid: to_pid,
            batch_id,
            start: at,
            duration: Span::ZERO,
            out_of_order: false,
            queue_delay: Span::ZERO,
        })
    }

    fn on_lane_assigned(&self, batch_id: u64, lane: &str, to_pid: u32, at: Time) -> Span {
        self.push(TraceRecord {
            kind: SpanKind::LaneAssigned(lane.to_string()),
            pid: to_pid,
            batch_id,
            start: at,
            duration: Span::ZERO,
            out_of_order: false,
            queue_delay: Span::ZERO,
        })
    }

    fn on_prefetch_resized(&self, target: usize, at: Time) -> Span {
        // The resize target rides the batch-id slot; the emitter is the
        // main process.
        self.push(TraceRecord {
            kind: SpanKind::PrefetchResized,
            pid: 4242,
            batch_id: target as u64,
            start: at,
            duration: Span::ZERO,
            out_of_order: false,
            queue_delay: Span::ZERO,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_with_byte_accounting() {
        let trace = LotusTrace::new();
        let oh = trace.on_op(1, 0, "Loader", Time::ZERO, Span::from_micros(5));
        assert_eq!(oh, LotusTraceConfig::default().per_log_overhead);
        let _ = trace.on_batch_wait(2, 0, Time::ZERO, Span::from_micros(1), true, Span::ZERO);
        assert_eq!(trace.len(), 2);
        assert_eq!(
            trace.log_storage_bytes(),
            trace.to_log_string().len() as u64
        );
        assert!(!trace.is_empty());
        // Self-accounted overhead: one charge per record.
        assert_eq!(
            trace.charged_overhead(),
            LotusTraceConfig::default().per_log_overhead * 2
        );
    }

    #[test]
    fn op_mode_off_skips_op_records() {
        let trace = LotusTrace::with_config(LotusTraceConfig {
            per_log_overhead: Span::from_nanos(100),
            op_mode: OpLogMode::Off,
        });
        assert_eq!(
            trace.on_op(1, 0, "Loader", Time::ZERO, Span::ZERO),
            Span::ZERO
        );
        let _ = trace.on_batch_preprocessed(1, 0, Time::ZERO, Span::from_millis(1));
        assert_eq!(trace.len(), 1);
        assert!(trace.op_stats().is_empty());
    }

    #[test]
    fn aggregate_mode_matches_full_mode_statistics() {
        let full = LotusTrace::new();
        let agg = LotusTrace::with_config(LotusTraceConfig {
            per_log_overhead: Span::from_nanos(1_500),
            op_mode: OpLogMode::Aggregate,
        });
        for i in 1..=200u64 {
            for t in [&full, &agg] {
                let _ = t.on_op(1, i / 8, "Loader", Time::ZERO, Span::from_micros(i * 50));
                let _ = t.on_op(1, i / 8, "Normalize", Time::ZERO, Span::from_micros(i));
            }
        }
        let f = full.op_stats();
        let a = agg.op_stats();
        assert_eq!(f.len(), 2);
        assert_eq!(a.len(), 2);
        for (fs, as_) in f.iter().zip(&a) {
            assert_eq!(fs.name, as_.name);
            assert_eq!(fs.count, as_.count);
            assert!((fs.summary.mean - as_.summary.mean).abs() / fs.summary.mean < 1e-9);
            assert!(
                (fs.summary.p90 - as_.summary.p90).abs() / fs.summary.p90 < 0.06,
                "p90 {} vs {}",
                fs.summary.p90,
                as_.summary.p90
            );
            assert!((fs.frac_below_10ms - as_.frac_below_10ms).abs() < 0.05);
        }
        // Storage accounting matches exactly: same records "written".
        assert_eq!(full.log_storage_bytes(), agg.log_storage_bytes());
    }

    #[test]
    fn storage_reads_follow_the_op_collection_mode() {
        let read = ReadOutcome {
            tier: lotus_sim::StorageTier::ObjectStore,
            span: Span::from_millis(5),
            bytes: 110_000,
            seek: false,
            queue_depth: 1,
        };
        let full = LotusTrace::new();
        let _ = full.on_storage_read(4243, 2, Time::from_nanos(10), &read);
        assert_eq!(full.len(), 1);
        assert_eq!(
            full.records()[0].kind,
            SpanKind::StorageRead("object-store".into())
        );
        assert_eq!(full.records()[0].duration, Span::from_millis(5));

        let agg = LotusTrace::with_config(LotusTraceConfig {
            op_mode: OpLogMode::Aggregate,
            ..LotusTraceConfig::default()
        });
        let _ = agg.on_storage_read(4243, 2, Time::from_nanos(10), &read);
        let stats = agg.op_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "T0(object-store)");
        assert_eq!(stats[0].count, 1);
        // Same bytes accounted as the full-mode record.
        assert_eq!(agg.log_storage_bytes(), full.log_storage_bytes());

        let off = LotusTrace::with_config(LotusTraceConfig {
            op_mode: OpLogMode::Off,
            ..LotusTraceConfig::default()
        });
        assert_eq!(off.on_storage_read(4243, 2, Time::ZERO, &read), Span::ZERO);
        assert!(off.is_empty());
    }

    #[test]
    fn out_of_order_flag_is_preserved() {
        let trace = LotusTrace::new();
        let _ = trace.on_batch_wait(
            1,
            3,
            Time::ZERO,
            Span::from_micros(1),
            true,
            Span::from_nanos(9),
        );
        assert!(trace.records()[0].out_of_order);
        assert_eq!(trace.records()[0].queue_delay, Span::from_nanos(9));
    }

    #[test]
    fn scheduling_hooks_record_instant_marks() {
        let trace = LotusTrace::new();
        let _ = trace.on_batch_stolen(7, 4243, 4244, Time::from_nanos(10));
        let _ = trace.on_lane_assigned(7, "slow", 4244, Time::from_nanos(10));
        let _ = trace.on_prefetch_resized(3, Time::from_nanos(20));
        let records = trace.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].kind, SpanKind::BatchStolen);
        assert_eq!(records[0].pid, 4244, "steal records the receiving worker");
        assert_eq!(records[1].kind, SpanKind::LaneAssigned("slow".into()));
        assert_eq!(records[2].kind, SpanKind::PrefetchResized);
        assert_eq!(records[2].batch_id, 3, "target rides the batch-id slot");
        assert!(records
            .iter()
            .all(|r| r.duration.is_zero() && r.kind.is_instant()));
    }

    #[test]
    fn fault_hooks_record_instant_marks() {
        let trace = LotusTrace::new();
        let _ = trace.on_fault_injected(4243, 5, "ToTensor", Time::from_nanos(10));
        let _ = trace.on_worker_died(4244, Time::from_nanos(20));
        let _ = trace.on_batch_redispatched(5, 4244, 4245, Time::from_nanos(30));
        let records = trace.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].kind, SpanKind::FaultInjected("ToTensor".into()));
        assert_eq!(records[0].batch_id, 5);
        assert_eq!(records[1].kind, SpanKind::WorkerDied);
        assert_eq!(records[1].pid, 4244);
        assert_eq!(records[2].kind, SpanKind::BatchRedispatched);
        assert_eq!(
            records[2].pid, 4245,
            "redispatch records the receiving worker"
        );
        assert!(records
            .iter()
            .all(|r| r.duration.is_zero() && r.kind.is_instant()));
    }
}
