//! LotusMap: mapping Python operations to native functions and
//! attributing hardware counters (§IV of the paper).

mod isolate;
mod mapping;
mod native;
mod split;
mod storage;

pub use isolate::{required_runs, IsolationConfig, OpIsolator};
pub use mapping::{MappedFunction, Mapping, OpMapping};
pub use native::{mapping_from_native, top_k_agreement, OpAgreement};
pub use split::{relevant_functions, split_metrics, split_metrics_mix_aware, OpHardwareProfile};
pub use storage::{StorageAttribution, TierUsage};
