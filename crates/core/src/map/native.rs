//! Native-side attribution: folding wall-clock kernel spans into the
//! same [`Mapping`] shape LotusMap's simulated isolation produces, and
//! cross-validating the two.
//!
//! The native backend's cooperative feed yields per-op kernel spans
//! (real wall durations of the real compute). Grouped per op they form
//! an *observed* operation → native-function mapping; the simulated
//! isolation harness produces the *methodological* mapping from PMU
//! sampling. If the methodology is faithful, each op's hottest native
//! kernels must appear in its simulated bucket — the check
//! [`top_k_agreement`] performs.

use std::collections::BTreeMap;

use lotus_uarch::FunctionProfile;

use crate::map::mapping::{MappedFunction, Mapping, OpMapping};

/// Builds a [`Mapping`] from per-op native function totals (the output
/// of `KernelSpanFeed::per_op_function_totals`). Each observed function
/// counts as captured in one run of one, with its native sample count;
/// buckets keep the most-time-first order of the input. The synthetic
/// `"(none)"` bucket (spans observed outside any op context) is skipped.
#[must_use]
pub fn mapping_from_native(per_op: &BTreeMap<String, Vec<FunctionProfile>>) -> Mapping {
    let mut mapping = Mapping::new();
    for (op, rows) in per_op {
        if op == "(none)" {
            continue;
        }
        mapping.insert(OpMapping {
            op: op.clone(),
            functions: rows
                .iter()
                .map(|row| MappedFunction {
                    name: row.name.clone(),
                    library: row.library.clone(),
                    captured_runs: 1,
                    total_runs: 1,
                    samples: row.stats.samples,
                })
                .collect(),
        });
    }
    mapping
}

/// One op's verdict from [`top_k_agreement`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpAgreement {
    /// The operation compared.
    pub op: String,
    /// The native side's top-k kernel names, hottest first.
    pub native_top: Vec<String>,
    /// Of those, the ones absent from the simulated bucket (empty ⇒
    /// agreement).
    pub missing_from_sim: Vec<String>,
}

impl OpAgreement {
    /// True when every native top-k kernel is in the simulated bucket.
    #[must_use]
    pub fn agrees(&self) -> bool {
        self.missing_from_sim.is_empty()
    }
}

/// Cross-validates native attribution against the simulated mapping:
/// for every op present in **both** mappings, the native side's top-`k`
/// functions (by bucket order, which is most-time-first for
/// [`mapping_from_native`]) must all appear in the simulated op's
/// bucket. Ops only one side observed are skipped — the native run only
/// sees instrumented kernels, and the simulated isolator only maps the
/// ops it was asked to.
#[must_use]
pub fn top_k_agreement(sim: &Mapping, native: &Mapping, k: usize) -> Vec<OpAgreement> {
    let mut out = Vec::new();
    for op in native.ops() {
        let Some(sim_bucket) = sim.functions_for(op) else {
            continue;
        };
        let native_bucket = native.functions_for(op).expect("op listed by its mapping");
        let native_top: Vec<String> = native_bucket
            .functions
            .iter()
            .take(k)
            .map(|f| f.name.clone())
            .collect();
        let missing_from_sim = native_top
            .iter()
            .filter(|name| !sim_bucket.contains(name))
            .cloned()
            .collect();
        out.push(OpAgreement {
            op: op.to_string(),
            native_top,
            missing_from_sim,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_sim::Span;
    use lotus_uarch::{FnStats, HwEvents};

    fn profile(name: &str, samples: u64, nanos: u64) -> FunctionProfile {
        FunctionProfile {
            name: name.to_string(),
            library: "lib.so".to_string(),
            stats: FnStats {
                samples,
                cpu_time: Span::from_nanos(nanos),
                events: HwEvents::ZERO,
            },
        }
    }

    fn mapped(name: &str) -> MappedFunction {
        MappedFunction {
            name: name.to_string(),
            library: "lib.so".to_string(),
            captured_runs: 4,
            total_runs: 4,
            samples: 10,
        }
    }

    #[test]
    fn native_totals_become_a_mapping_and_skip_the_none_bucket() {
        let mut per_op = BTreeMap::new();
        per_op.insert(
            "Loader".to_string(),
            vec![
                profile("decode_mcu", 8, 900),
                profile("jpeg_idct_islow", 8, 400),
            ],
        );
        per_op.insert("(none)".to_string(), vec![profile("stray", 1, 10)]);
        let mapping = mapping_from_native(&per_op);
        assert_eq!(mapping.ops(), vec!["Loader"]);
        let bucket = mapping.functions_for("Loader").unwrap();
        assert_eq!(bucket.functions[0].name, "decode_mcu");
        assert_eq!(bucket.functions[0].samples, 8);
        assert_eq!(bucket.functions[0].capture_rate(), 1.0);
    }

    #[test]
    fn agreement_flags_kernels_the_sim_bucket_lacks() {
        let mut sim = Mapping::new();
        sim.insert(OpMapping {
            op: "Loader".into(),
            functions: vec![mapped("decode_mcu"), mapped("jpeg_idct_islow")],
        });
        let mut native = Mapping::new();
        native.insert(OpMapping {
            op: "Loader".into(),
            functions: vec![mapped("decode_mcu"), mapped("surprise_fn")],
        });
        // An op only the native side saw is skipped, not failed.
        native.insert(OpMapping {
            op: "C(4)".into(),
            functions: vec![mapped("at_native_stack_serial_kernel")],
        });

        let verdicts = top_k_agreement(&sim, &native, 2);
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].op, "Loader");
        assert!(!verdicts[0].agrees());
        assert_eq!(verdicts[0].missing_from_sim, vec!["surprise_fn"]);

        // With k = 1 only the hottest kernel is checked — and it agrees.
        let verdicts = top_k_agreement(&sim, &native, 1);
        assert!(verdicts[0].agrees());
    }
}
