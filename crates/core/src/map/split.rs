//! Splitting hardware metrics from native functions back onto Python
//! operations (§IV-B "Splitting Hardware Metrics"), the step that produces
//! the paper's Figure 6(e–h).

use std::collections::BTreeMap;

use lotus_sim::Span;
use lotus_uarch::{FunctionProfile, HwEvents};

use super::mapping::Mapping;

/// Hardware events attributed to one Python operation.
#[derive(Debug, Clone, PartialEq)]
pub struct OpHardwareProfile {
    /// Operation name.
    pub op: String,
    /// CPU time attributed from mapped functions.
    pub cpu_time: Span,
    /// Hardware events attributed from mapped functions.
    pub events: HwEvents,
}

/// Splits a whole-pipeline hardware profile onto Python operations.
///
/// For every profiled native function that appears in the mapping, its
/// counters are divided among the operations it maps to, weighted by each
/// operation's total elapsed time from LotusTrace (`op_times`): the
/// paper's `L / (L + RRP + TT)` weighting. Functions absent from the
/// mapping — the "300+ unrelated functions" — contribute nothing.
///
/// Events in our profiles are absolute counts (VTune reports normalized
/// fractions that must be multiplied back by clockticks; the
/// [`FunctionProfile`] rows have already folded that in).
#[must_use]
pub fn split_metrics(
    profile: &[FunctionProfile],
    mapping: &Mapping,
    op_times: &BTreeMap<String, Span>,
) -> Vec<OpHardwareProfile> {
    let mut out: BTreeMap<String, OpHardwareProfile> = op_times
        .keys()
        .map(|op| {
            (
                op.clone(),
                OpHardwareProfile {
                    op: op.clone(),
                    cpu_time: Span::ZERO,
                    events: HwEvents::ZERO,
                },
            )
        })
        .collect();

    for row in profile {
        let ops = mapping.ops_containing(&row.name);
        if ops.is_empty() {
            continue; // unrelated function: filtered out
        }
        let total: f64 = ops
            .iter()
            .filter_map(|op| op_times.get(*op))
            .map(|s| s.as_nanos() as f64)
            .sum();
        if total == 0.0 {
            continue;
        }
        for op in ops {
            let Some(op_time) = op_times.get(op) else {
                continue;
            };
            let weight = op_time.as_nanos() as f64 / total;
            let entry = out.get_mut(op).expect("op pre-seeded");
            entry.cpu_time += row.stats.cpu_time.mul_f64(weight);
            entry.events += row.stats.events * weight;
        }
    }
    out.into_values().collect()
}

/// Restricts a profile to the functions present in the mapping (the
/// paper's Figure 6(c,d): per-C++-function views after filtering the
/// irrelevant candidates).
#[must_use]
pub fn relevant_functions<'p>(
    profile: &'p [FunctionProfile],
    mapping: &Mapping,
) -> Vec<&'p FunctionProfile> {
    profile
        .iter()
        .filter(|row| !mapping.ops_containing(&row.name).is_empty())
        .collect()
}

/// Splits a whole-pipeline hardware profile onto Python operations using
/// the **mix-aware** weighting the paper sketches as future work (§IV-B):
/// instead of weighting a shared function purely by each operation's total
/// elapsed time, weight it by the elapsed time × the *fraction of that
/// operation's samples the function received during isolation*.
///
/// Intuition: `__memcpy` may account for 40 % of `C(128)`'s time but only
/// 3 % of `Loader`'s; elapsed-time-only weights smear its counters evenly
/// per second of op time, while mix-aware weights concentrate them where
/// the function actually runs. Operations absent from the mapping (or
/// with zero isolation samples) fall back to elapsed-time weighting.
#[must_use]
pub fn split_metrics_mix_aware(
    profile: &[FunctionProfile],
    mapping: &Mapping,
    op_times: &BTreeMap<String, Span>,
) -> Vec<OpHardwareProfile> {
    let mut out: BTreeMap<String, OpHardwareProfile> = op_times
        .keys()
        .map(|op| {
            (
                op.clone(),
                OpHardwareProfile {
                    op: op.clone(),
                    cpu_time: Span::ZERO,
                    events: HwEvents::ZERO,
                },
            )
        })
        .collect();

    // Per-op sample totals over the whole isolation bucket.
    let op_sample_totals: BTreeMap<&str, u64> = op_times
        .keys()
        .filter_map(|op| {
            mapping
                .functions_for(op)
                .map(|b| (op.as_str(), b.functions.iter().map(|f| f.samples).sum()))
        })
        .collect();

    for row in profile {
        let ops = mapping.ops_containing(&row.name);
        if ops.is_empty() {
            continue;
        }
        // Raw weight of op o for function f:
        //   time(o) × samples(o, f) / total_samples(o)
        // falling back to time(o) when the op has no isolation samples.
        let raw: Vec<(&str, f64)> = ops
            .iter()
            .filter_map(|op| {
                let time = op_times.get(*op)?.as_nanos() as f64;
                let mix = match op_sample_totals.get(op) {
                    Some(&total) if total > 0 => {
                        let f_samples = mapping
                            .functions_for(op)
                            .and_then(|b| b.functions.iter().find(|f| f.name == row.name))
                            .map_or(0, |f| f.samples);
                        f_samples as f64 / total as f64
                    }
                    _ => 1.0,
                };
                Some((*op, time * mix))
            })
            .collect();
        let total: f64 = raw.iter().map(|(_, w)| w).sum();
        if total == 0.0 {
            continue;
        }
        for (op, w) in raw {
            let weight = w / total;
            let entry = out.get_mut(op).expect("op pre-seeded");
            entry.cpu_time += row.stats.cpu_time.mul_f64(weight);
            entry.events += row.stats.events * weight;
        }
    }
    out.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::mapping::{MappedFunction, OpMapping};
    use lotus_uarch::FnStats;

    fn profile_row(name: &str, cpu_ms: u64, insts: f64) -> FunctionProfile {
        FunctionProfile {
            name: name.into(),
            library: "lib.so".into(),
            stats: FnStats {
                samples: 1,
                cpu_time: Span::from_millis(cpu_ms),
                events: HwEvents {
                    instructions: insts,
                    ..HwEvents::ZERO
                },
            },
        }
    }

    fn mapping() -> Mapping {
        let mut m = Mapping::new();
        let mf = |name: &str| MappedFunction {
            name: name.into(),
            library: "lib.so".into(),
            captured_runs: 10,
            total_runs: 10,
            samples: 50,
        };
        m.insert(OpMapping {
            op: "Loader".into(),
            functions: vec![mf("decode_mcu"), mf("__memmove")],
        });
        m.insert(OpMapping {
            op: "RandomResizedCrop".into(),
            functions: vec![mf("resample"), mf("__memmove")],
        });
        m.insert(OpMapping {
            op: "ToTensor".into(),
            functions: vec![mf("__memmove")],
        });
        m
    }

    fn op_times() -> BTreeMap<String, Span> {
        // The paper's example: weights L/(L+RRP+TT).
        BTreeMap::from([
            ("Loader".to_string(), Span::from_secs(6)),
            ("RandomResizedCrop".to_string(), Span::from_secs(3)),
            ("ToTensor".to_string(), Span::from_secs(1)),
        ])
    }

    #[test]
    fn exclusive_functions_attribute_fully() {
        let profile = vec![profile_row("decode_mcu", 100, 1000.0)];
        let split = split_metrics(&profile, &mapping(), &op_times());
        let loader = split.iter().find(|o| o.op == "Loader").unwrap();
        assert_eq!(loader.cpu_time, Span::from_millis(100));
        assert!((loader.events.instructions - 1000.0).abs() < 1e-9);
        let rrc = split.iter().find(|o| o.op == "RandomResizedCrop").unwrap();
        assert_eq!(rrc.cpu_time, Span::ZERO);
    }

    #[test]
    fn shared_functions_split_by_elapsed_time_weights() {
        let profile = vec![profile_row("__memmove", 10, 100.0)];
        let split = split_metrics(&profile, &mapping(), &op_times());
        let get = |op: &str| split.iter().find(|o| o.op == op).unwrap();
        // Weights 6/10, 3/10, 1/10.
        assert_eq!(get("Loader").cpu_time, Span::from_millis(6));
        assert_eq!(get("RandomResizedCrop").cpu_time, Span::from_millis(3));
        assert_eq!(get("ToTensor").cpu_time, Span::from_millis(1));
        let total: f64 = split.iter().map(|o| o.events.instructions).sum();
        assert!(
            (total - 100.0).abs() < 1e-9,
            "splitting must conserve events"
        );
    }

    #[test]
    fn unrelated_functions_are_filtered() {
        let profile = vec![
            profile_row("cudaLaunchKernel", 500, 9999.0),
            profile_row("decode_mcu", 10, 10.0),
        ];
        let split = split_metrics(&profile, &mapping(), &op_times());
        let total_cpu: u64 = split.iter().map(|o| o.cpu_time.as_nanos()).sum();
        assert_eq!(
            total_cpu,
            Span::from_millis(10).as_nanos(),
            "unmapped CPU time is excluded"
        );
        let relevant = relevant_functions(&profile, &mapping());
        assert_eq!(relevant.len(), 1);
        assert_eq!(relevant[0].name, "decode_mcu");
    }

    #[test]
    fn mix_aware_split_tracks_usage_shares() {
        // Truth: the shared function accounts for 90% of op B's isolation
        // samples but only 10% of op A's, with equal op times. The naive
        // split gives 50/50; mix-aware gives 10/90.
        let mut m = Mapping::new();
        let mf = |name: &str, samples: u64| MappedFunction {
            name: name.into(),
            library: "lib.so".into(),
            captured_runs: 10,
            total_runs: 10,
            samples,
        };
        m.insert(OpMapping {
            op: "A".into(),
            functions: vec![mf("shared", 10), mf("a_only", 90)],
        });
        m.insert(OpMapping {
            op: "B".into(),
            functions: vec![mf("shared", 90), mf("b_only", 10)],
        });
        let op_times = BTreeMap::from([
            ("A".to_string(), Span::from_secs(1)),
            ("B".to_string(), Span::from_secs(1)),
        ]);
        let profile = vec![profile_row("shared", 100, 1000.0)];

        let naive = split_metrics(&profile, &m, &op_times);
        let naive_a = naive.iter().find(|o| o.op == "A").unwrap().cpu_time;
        assert_eq!(naive_a, Span::from_millis(50), "naive splits 50/50");

        let mix = split_metrics_mix_aware(&profile, &m, &op_times);
        let a = mix.iter().find(|o| o.op == "A").unwrap();
        let b = mix.iter().find(|o| o.op == "B").unwrap();
        assert_eq!(a.cpu_time, Span::from_millis(10));
        assert_eq!(b.cpu_time, Span::from_millis(90));
        // Conservation still holds.
        assert!((a.events.instructions + b.events.instructions - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn mix_aware_matches_naive_for_exclusive_functions() {
        let profile = vec![profile_row("decode_mcu", 100, 1000.0)];
        let naive = split_metrics(&profile, &mapping(), &op_times());
        let mix = split_metrics_mix_aware(&profile, &mapping(), &op_times());
        for (n, m) in naive.iter().zip(&mix) {
            assert_eq!(n.op, m.op);
            assert_eq!(n.cpu_time, m.cpu_time, "{}", n.op);
        }
    }

    #[test]
    fn misbucketed_heavy_function_inflates_the_wrong_op() {
        // The paper's example: if decode_mcu were bucketed under
        // RandomResizedCrop, RRC's CPU time would jump ~30 %.
        let mut bad = mapping();
        let mut rrc = bad.functions_for("RandomResizedCrop").unwrap().clone();
        rrc.functions.push(MappedFunction {
            name: "decode_mcu".into(),
            library: "lib.so".into(),
            captured_runs: 1,
            total_runs: 10,
            samples: 2,
        });
        bad.insert(rrc);
        let profile = vec![profile_row("decode_mcu", 90, 900.0)];
        let good_split = split_metrics(&profile, &mapping(), &op_times());
        let bad_split = split_metrics(&profile, &bad, &op_times());
        let rrc_good = good_split
            .iter()
            .find(|o| o.op == "RandomResizedCrop")
            .unwrap()
            .cpu_time;
        let rrc_bad = bad_split
            .iter()
            .find(|o| o.op == "RandomResizedCrop")
            .unwrap()
            .cpu_time;
        assert_eq!(rrc_good, Span::ZERO);
        assert!(
            rrc_bad > Span::from_millis(25),
            "mis-bucketing inflates RRC: {rrc_bad}"
        );
    }
}
