//! The Python-operation → native-function mapping (the paper's Table I).

use std::collections::BTreeMap;

use serde::{Content, Deserialize, Serialize};

use super::storage::StorageAttribution;

/// One native function bucketed under a Python operation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MappedFunction {
    /// Function symbol name.
    pub name: String,
    /// Library the symbol lives in.
    pub library: String,
    /// Isolation runs in which the function was captured at least once.
    pub captured_runs: usize,
    /// Total isolation runs performed.
    pub total_runs: usize,
    /// Total samples attributed across all runs.
    pub samples: u64,
}

impl MappedFunction {
    /// Fraction of runs that captured the function.
    #[must_use]
    pub fn capture_rate(&self) -> f64 {
        if self.total_runs == 0 {
            0.0
        } else {
            self.captured_runs as f64 / self.total_runs as f64
        }
    }
}

/// The bucket of native functions for one Python operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpMapping {
    /// Python operation name (e.g. `RandomResizedCrop`).
    pub op: String,
    /// Captured functions, most-sampled first.
    pub functions: Vec<MappedFunction>,
}

impl OpMapping {
    /// Drops functions that look like sampling flukes: captured in fewer
    /// than `min_runs` runs *and* carrying fewer than `min_samples`
    /// samples in total (the paper's "filters incorrect C/C++ functions").
    pub fn filter_noise(&mut self, min_runs: usize, min_samples: u64) {
        self.functions
            .retain(|f| f.captured_runs >= min_runs || f.samples >= min_samples);
    }

    /// True if `function` is in this bucket.
    #[must_use]
    pub fn contains(&self, function: &str) -> bool {
        self.functions.iter().any(|f| f.name == function)
    }
}

/// A full mapping: one bucket per Python operation. Serializable to the
/// artifact's `mapping_funcs.json` shape.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Mapping {
    ops: BTreeMap<String, OpMapping>,
    /// Storage-side attribution for the run the mapping came from, when
    /// the run modeled a storage hierarchy. Optional and tolerated when
    /// absent, so mappings written before the storage tier existed still
    /// parse.
    storage: Option<StorageAttribution>,
}

// The vendored serde stub has no derive macro, so the three mapping types
// implement the traits by hand against its `Content` data model. The JSON
// shape matches what derive would emit (structs as field maps).

impl Serialize for MappedFunction {
    fn serialize_content(&self) -> Content {
        Content::Map(vec![
            ("name".to_string(), self.name.serialize_content()),
            ("library".to_string(), self.library.serialize_content()),
            (
                "captured_runs".to_string(),
                self.captured_runs.serialize_content(),
            ),
            (
                "total_runs".to_string(),
                self.total_runs.serialize_content(),
            ),
            ("samples".to_string(), self.samples.serialize_content()),
        ])
    }
}

impl Deserialize for MappedFunction {
    fn deserialize_content(content: &Content) -> Result<MappedFunction, String> {
        let field = |key: &str| {
            content
                .get_field(key)
                .ok_or_else(|| format!("MappedFunction missing field `{key}`"))
        };
        Ok(MappedFunction {
            name: String::deserialize_content(field("name")?)?,
            library: String::deserialize_content(field("library")?)?,
            captured_runs: usize::deserialize_content(field("captured_runs")?)?,
            total_runs: usize::deserialize_content(field("total_runs")?)?,
            samples: u64::deserialize_content(field("samples")?)?,
        })
    }
}

impl Serialize for OpMapping {
    fn serialize_content(&self) -> Content {
        Content::Map(vec![
            ("op".to_string(), self.op.serialize_content()),
            ("functions".to_string(), self.functions.serialize_content()),
        ])
    }
}

impl Deserialize for OpMapping {
    fn deserialize_content(content: &Content) -> Result<OpMapping, String> {
        let field = |key: &str| {
            content
                .get_field(key)
                .ok_or_else(|| format!("OpMapping missing field `{key}`"))
        };
        Ok(OpMapping {
            op: String::deserialize_content(field("op")?)?,
            functions: Vec::deserialize_content(field("functions")?)?,
        })
    }
}

impl Serialize for Mapping {
    fn serialize_content(&self) -> Content {
        let mut fields = vec![("ops".to_string(), self.ops.serialize_content())];
        // Emitted only when present: artifacts from runs without a storage
        // model stay byte-identical to the pre-storage format.
        if let Some(storage) = &self.storage {
            fields.push(("storage".to_string(), storage.serialize_content()));
        }
        Content::Map(fields)
    }
}

impl Deserialize for Mapping {
    fn deserialize_content(content: &Content) -> Result<Mapping, String> {
        let ops = content
            .get_field("ops")
            .ok_or("Mapping missing field `ops`")?;
        let storage = match content.get_field("storage") {
            None | Some(Content::Null) => None,
            Some(s) => Some(StorageAttribution::deserialize_content(s)?),
        };
        Ok(Mapping {
            ops: BTreeMap::deserialize_content(ops)?,
            storage,
        })
    }
}

impl Mapping {
    /// An empty mapping.
    #[must_use]
    pub fn new() -> Mapping {
        Mapping::default()
    }

    /// Inserts (or replaces) one operation's bucket.
    pub fn insert(&mut self, op_mapping: OpMapping) {
        self.ops.insert(op_mapping.op.clone(), op_mapping);
    }

    /// The bucket for `op`, if mapped.
    #[must_use]
    pub fn functions_for(&self, op: &str) -> Option<&OpMapping> {
        self.ops.get(op)
    }

    /// All mapped operation names.
    #[must_use]
    pub fn ops(&self) -> Vec<&str> {
        self.ops.keys().map(String::as_str).collect()
    }

    /// The operations whose buckets contain `function` (a single C/C++
    /// function can map to several Python operations — the case the
    /// metric-splitting step exists for).
    #[must_use]
    pub fn ops_containing(&self, function: &str) -> Vec<&str> {
        self.ops
            .values()
            .filter(|m| m.contains(function))
            .map(|m| m.op.as_str())
            .collect()
    }

    /// Attaches the storage-side attribution of the run the mapping was
    /// built from.
    pub fn set_storage(&mut self, storage: StorageAttribution) {
        self.storage = Some(storage);
    }

    /// The storage-side attribution, if the run modeled storage.
    #[must_use]
    pub fn storage(&self) -> Option<&StorageAttribution> {
        self.storage.as_ref()
    }

    /// Number of mapped operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operations are mapped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Renders the mapping as a Table-I-style text table.
    #[must_use]
    pub fn to_table_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<30} {:<36} {:<44} {:>8} {:>8}\n",
            "Transformation", "Function", "Library", "runs", "samples"
        ));
        for m in self.ops.values() {
            for (i, f) in m.functions.iter().enumerate() {
                let op = if i == 0 { m.op.as_str() } else { "" };
                out.push_str(&format!(
                    "{:<30} {:<36} {:<44} {:>4}/{:<3} {:>8}\n",
                    op, f.name, f.library, f.captured_runs, f.total_runs, f.samples
                ));
            }
        }
        if let Some(storage) = &self.storage {
            out.push('\n');
            out.push_str(&storage.to_table_string());
        }
        out
    }

    /// Serializes to JSON (the artifact's `mapping_funcs.json`).
    ///
    /// # Panics
    ///
    /// Panics only if JSON serialization fails, which cannot happen for
    /// this type.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("mapping serialization cannot fail")
    }

    /// Parses a mapping previously produced by [`Mapping::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error for malformed input.
    pub fn from_json(s: &str) -> Result<Mapping, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(name: &str, runs: usize, samples: u64) -> MappedFunction {
        MappedFunction {
            name: name.into(),
            library: "lib.so".into(),
            captured_runs: runs,
            total_runs: 20,
            samples,
        }
    }

    #[test]
    fn lookup_by_op_and_by_function() {
        let mut m = Mapping::new();
        m.insert(OpMapping {
            op: "Loader".into(),
            functions: vec![
                f("decode_mcu", 20, 300),
                f("__memcpy_avx_unaligned_erms", 6, 10),
            ],
        });
        m.insert(OpMapping {
            op: "RandomResizedCrop".into(),
            functions: vec![
                f("ImagingResampleHorizontal_8bpc", 18, 120),
                f("__memcpy_avx_unaligned_erms", 4, 6),
            ],
        });
        assert_eq!(m.len(), 2);
        assert!(m.functions_for("Loader").unwrap().contains("decode_mcu"));
        assert_eq!(m.ops_containing("decode_mcu"), vec!["Loader"]);
        let shared = m.ops_containing("__memcpy_avx_unaligned_erms");
        assert_eq!(shared.len(), 2);
        assert!(m.functions_for("ToTensor").is_none());
    }

    #[test]
    fn noise_filter_keeps_well_captured_or_heavily_sampled() {
        let mut om = OpMapping {
            op: "X".into(),
            functions: vec![
                f("solid", 15, 40),
                f("rare_but_big", 1, 50),
                f("fluke", 1, 1),
            ],
        };
        om.filter_noise(3, 10);
        let names: Vec<&str> = om.functions.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["solid", "rare_but_big"]);
    }

    #[test]
    fn json_round_trips() {
        let mut m = Mapping::new();
        m.insert(OpMapping {
            op: "Loader".into(),
            functions: vec![f("decode_mcu", 20, 300)],
        });
        let parsed = Mapping::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn storage_attribution_rides_along_and_old_json_still_parses() {
        use crate::map::{StorageAttribution, TierUsage};

        let mut m = Mapping::new();
        m.insert(OpMapping {
            op: "Loader".into(),
            functions: vec![f("decode_mcu", 20, 300)],
        });
        // Pre-storage artifacts (no `storage` key) parse to None.
        let legacy_json = m.to_json();
        assert!(!legacy_json.contains("\"storage\""));
        let legacy = Mapping::from_json(&legacy_json).unwrap();
        assert!(legacy.storage().is_none());

        m.set_storage(StorageAttribution {
            tiers: vec![TierUsage {
                tier: "object-store".into(),
                reads: 9,
                bytes: 9 << 16,
                t0_ns: 45_000_000,
            }],
            seeks: 0,
            max_queue_depth: 3,
        });
        let parsed = Mapping::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.storage().unwrap().total_reads(), 9);
        assert!(m.to_table_string().contains("object-store"));
    }

    #[test]
    fn table_rendering_lists_each_function() {
        let mut m = Mapping::new();
        m.insert(OpMapping {
            op: "Loader".into(),
            functions: vec![f("decode_mcu", 20, 300), f("jpeg_idct_islow", 19, 200)],
        });
        let table = m.to_table_string();
        assert!(table.contains("Loader"));
        assert!(table.contains("decode_mcu"));
        assert!(table.contains("jpeg_idct_islow"));
    }

    #[test]
    fn capture_rate_divides_runs() {
        assert!((f("x", 15, 0).capture_rate() - 0.75).abs() < 1e-12);
    }
}
