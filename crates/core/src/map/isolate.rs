//! The isolation harness: running one Python operation alone under the
//! hardware profiler's collection control (the paper's Listing 4), with
//! the run-count formula, warm-up, and the `sleep()` bucketing gap.

use std::collections::BTreeMap;
use std::sync::Arc;

use lotus_data::mix_seed;
use lotus_sim::{Span, Time};
use lotus_uarch::{CpuThread, HwProfiler, Machine, ProfilerConfig, Vendor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::mapping::{MappedFunction, OpMapping};

/// Number of runs needed to capture a function of span `f` at least once
/// with probability ≥ `confidence`, under sampling interval `s`:
/// the paper's `C ≥ 1 − (1 − f/s)^n` solved for `n`, rounded to the
/// nearest integer (the paper's §IV-B example rounds 20.3 down to 20).
///
/// Functions at least as long as the sampling interval need one run.
///
/// # Panics
///
/// Panics unless `0 < confidence < 1` and both spans are positive.
#[must_use]
pub fn required_runs(confidence: f64, f: Span, s: Span) -> usize {
    assert!(
        (0.0..1.0).contains(&confidence) && confidence > 0.0,
        "confidence must be in (0,1)"
    );
    assert!(!f.is_zero() && !s.is_zero(), "spans must be positive");
    let ratio = f.as_nanos() as f64 / s.as_nanos() as f64;
    if ratio >= 1.0 {
        return 1;
    }
    (((1.0 - confidence).ln() / (1.0 - ratio).ln()).round() as usize).max(1)
}

/// Isolation-harness configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsolationConfig {
    /// Warm-up iterations before collection resumes (Listing 4 runs the
    /// op 5 times and collects only the last).
    pub warmup_iters: usize,
    /// Target probability of capturing a short function at least once.
    pub confidence: f64,
    /// Expected span of the shortest function of interest (the `f` in the
    /// run-count formula; the paper's example uses 660 µs).
    pub expected_fn_span: Span,
    /// The `sleep()` gap inserted before the operation of interest to
    /// defeat attribution skid.
    pub sleep_gap: Span,
    /// Disable the gap to reproduce the mis-bucketing ablation.
    pub use_sleep_gap: bool,
    /// Override the computed number of runs.
    pub runs_override: Option<usize>,
    /// Base seed for per-run phase randomization.
    pub seed: u64,
}

impl Default for IsolationConfig {
    fn default() -> Self {
        IsolationConfig {
            warmup_iters: 4,
            confidence: 0.75,
            expected_fn_span: Span::from_micros(660),
            sleep_gap: Span::from_secs(1),
            use_sleep_gap: true,
            runs_override: None,
            seed: 0x0001_0705,
        }
    }
}

/// The isolation harness bound to one machine.
///
/// `isolate` runs a single operation repeatedly under a fresh
/// VTune/uProf-style sampling session per run (resumed only around the
/// final, warmed-up iteration) and buckets the sampled native functions
/// under the operation's name.
#[derive(Debug)]
pub struct OpIsolator {
    machine: Arc<Machine>,
    config: IsolationConfig,
}

impl OpIsolator {
    /// Creates a harness for `machine`.
    #[must_use]
    pub fn new(machine: Arc<Machine>, config: IsolationConfig) -> OpIsolator {
        OpIsolator { machine, config }
    }

    /// The number of isolation runs the harness will perform.
    #[must_use]
    pub fn runs(&self) -> usize {
        self.config.runs_override.unwrap_or_else(|| {
            required_runs(
                self.config.confidence,
                self.config.expected_fn_span,
                self.sampling_interval(),
            )
        })
    }

    fn sampling_interval(&self) -> Span {
        self.machine.config().vendor.default_sampling_interval()
    }

    /// Isolates one operation.
    ///
    /// * `op` executes the operation once on the given CPU thread;
    /// * `preamble`, when present, executes whatever realistically runs
    ///   *immediately before* the operation in the pipeline (e.g. the
    ///   image load before `RandomResizedCrop`) — with the sleep gap
    ///   disabled, its functions can skid into the operation's bucket.
    pub fn isolate<F, P>(&self, op_name: &str, mut op: F, mut preamble: Option<P>) -> OpMapping
    where
        F: FnMut(&mut CpuThread, &mut StdRng),
        P: FnMut(&mut CpuThread, &mut StdRng),
    {
        let interval = self.sampling_interval();
        let profiler_config = match self.machine.config().vendor {
            Vendor::Intel => ProfilerConfig::vtune_sampling(),
            Vendor::Amd => ProfilerConfig::uprof_sampling(),
        };
        let runs = self.runs();
        let mut captured: BTreeMap<(String, String), (usize, u64)> = BTreeMap::new();

        for run in 0..runs {
            let profiler = Arc::new(HwProfiler::new(profiler_config));
            let mut cpu = CpuThread::new(Arc::clone(&self.machine));
            cpu.attach_profiler(Arc::clone(&profiler));
            let mut rng = StdRng::seed_from_u64(mix_seed(self.config.seed, run as u64));
            // Each run lands at a different phase of the sampling grid
            // (on real hardware this happens by itself; the formula's
            // independence assumption relies on it).
            let phase: u64 = rng.gen_range(0..interval.as_nanos().max(1));
            cpu.set_cursor(Time::from_nanos(phase));

            for i in 0..=self.config.warmup_iters {
                if let Some(pre) = preamble.as_mut() {
                    pre(&mut cpu, &mut rng);
                }
                if self.config.use_sleep_gap {
                    // Listing 4 line 14: `time.sleep(1)  # ensure correct
                    // bucketing`.
                    cpu.idle(self.config.sleep_gap);
                }
                let collect = i == self.config.warmup_iters;
                if collect {
                    profiler.resume(); // itt.resume() / amd.resume(1)
                }
                op(&mut cpu, &mut rng);
                if collect {
                    profiler.detach(); // itt.detach() / amd.pause(1)
                }
            }

            for row in profiler.report(&self.machine) {
                if row.stats.samples == 0 {
                    continue;
                }
                let entry = captured.entry((row.name, row.library)).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += row.stats.samples;
            }
        }

        let mut functions: Vec<MappedFunction> = captured
            .into_iter()
            .map(
                |((name, library), (captured_runs, samples))| MappedFunction {
                    name,
                    library,
                    captured_runs,
                    total_runs: runs,
                    samples,
                },
            )
            .collect();
        functions.sort_by(|a, b| b.samples.cmp(&a.samples).then_with(|| a.name.cmp(&b.name)));
        OpMapping {
            op: op_name.to_string(),
            functions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_uarch::{CostCoeffs, MachineConfig};

    #[test]
    fn run_count_formula_matches_paper_example() {
        // f = 660 µs, s = 10 ms, C = 75% → 20 runs (§IV-B).
        assert_eq!(
            required_runs(0.75, Span::from_micros(660), Span::from_millis(10)),
            20
        );
    }

    #[test]
    fn long_functions_need_one_run() {
        assert_eq!(
            required_runs(0.99, Span::from_millis(20), Span::from_millis(10)),
            1
        );
    }

    #[test]
    fn higher_confidence_needs_more_runs() {
        let lo = required_runs(0.5, Span::from_micros(500), Span::from_millis(10));
        let hi = required_runs(0.95, Span::from_micros(500), Span::from_millis(10));
        assert!(hi > lo);
    }

    #[test]
    fn amd_needs_fewer_runs_than_intel() {
        // 1 ms sampling catches a 660 µs function far more easily.
        let intel = required_runs(0.75, Span::from_micros(660), Span::from_millis(10));
        let amd = required_runs(0.75, Span::from_micros(660), Span::from_millis(1));
        assert!(amd < intel, "amd {amd} vs intel {intel}");
    }

    #[test]
    fn isolation_captures_a_long_kernel_every_run() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let k = machine.kernel("big_kernel", "lib.so", CostCoeffs::compute_default());
        let isolator = OpIsolator::new(
            Arc::clone(&machine),
            IsolationConfig {
                runs_override: Some(5),
                ..IsolationConfig::default()
            },
        );
        // ~30 ms of work: guaranteed ≥ 2 samples per run at 10 ms.
        let mapping = isolator.isolate(
            "BigOp",
            |cpu, _rng| {
                cpu.exec(k, 18_000_000.0);
            },
            None::<fn(&mut CpuThread, &mut StdRng)>,
        );
        assert_eq!(mapping.op, "BigOp");
        let f = &mapping.functions[0];
        assert_eq!(f.name, "big_kernel");
        assert_eq!(f.captured_runs, 5);
        assert_eq!(f.total_runs, 5);
    }

    #[test]
    fn short_kernels_are_captured_probabilistically_across_runs() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let k = machine.kernel("short_kernel", "lib.so", CostCoeffs::compute_default());
        let isolator = OpIsolator::new(Arc::clone(&machine), IsolationConfig::default());
        let runs = isolator.runs();
        assert_eq!(runs, 20);
        // ~660 µs of work per op execution.
        let mapping = isolator.isolate(
            "ShortOp",
            |cpu, _rng| {
                let start = cpu.cursor();
                cpu.exec(k, 1_090_000.0);
                let span = cpu.cursor().since(start);
                debug_assert!(
                    span > Span::from_micros(500) && span < Span::from_micros(900),
                    "op span drifted: {span}"
                );
            },
            None::<fn(&mut CpuThread, &mut StdRng)>,
        );
        let f = mapping.functions.iter().find(|f| f.name == "short_kernel");
        let f = f.expect("a 660 µs function should be captured at least once in 20 runs");
        assert!(
            f.captured_runs < runs,
            "a sub-interval function should be missed in some runs (captured {}/{runs})",
            f.captured_runs
        );
    }

    #[test]
    fn sleep_gap_prevents_preamble_leakage() {
        let run = |use_gap: bool| {
            let machine = Machine::new(MachineConfig::cloudlab_c4130());
            let pre_k = machine.kernel("preamble_fn", "lib.so", CostCoeffs::compute_default());
            let op_k = machine.kernel("op_fn", "lib.so", CostCoeffs::compute_default());
            let isolator = OpIsolator::new(
                Arc::clone(&machine),
                IsolationConfig {
                    use_sleep_gap: use_gap,
                    runs_override: Some(300),
                    ..IsolationConfig::default()
                },
            );
            let mapping = isolator.isolate(
                "Op",
                move |cpu: &mut CpuThread, _rng: &mut StdRng| {
                    cpu.exec(op_k, 3_000_000.0); // ~5 ms
                },
                Some(move |cpu: &mut CpuThread, _rng: &mut StdRng| {
                    cpu.exec(pre_k, 3_000_000.0);
                }),
            );
            mapping.contains("preamble_fn")
        };
        assert!(
            run(false),
            "without the sleep gap, skid pollutes the bucket"
        );
        assert!(!run(true), "the sleep gap keeps the bucket clean");
    }
}
