//! Storage-read attribution: joining the storage tier's cumulative
//! counters with the trace's T0 spans, per tier.
//!
//! The operation→function mapping answers "which native code ran under
//! each Python op"; this module answers the analogous question one layer
//! down — "which storage tier served each fetch, and how much T0 time did
//! it cost". The result rides along in the `mapping_funcs.json` artifact
//! (see [`crate::map::Mapping`]) so one file carries both attributions.

use std::fmt::Write as _;

use lotus_sim::{Span, StorageCounters, StorageTier};
use serde::{Content, Deserialize, Serialize};

use crate::trace::analysis::storage_tier_totals;
use crate::trace::TraceRecord;

/// One storage tier's share of a run: reads served, bytes moved, and the
/// T0 span time the trace attributed to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierUsage {
    /// Stable tier name (`page-cache` / `local-disk` / `object-store`).
    pub tier: String,
    /// Reads this tier ultimately served.
    pub reads: u64,
    /// Bytes this tier transferred (page-granular).
    pub bytes: u64,
    /// Total T0 span time attributed to this tier by the trace.
    pub t0_ns: u64,
}

/// The storage side of a run's attribution: per-tier usage joined from
/// the [`StorageCounters`] and the trace's `StorageRead` spans.
///
/// # Examples
///
/// ```
/// use lotus_core::map::StorageAttribution;
/// use lotus_core::trace::{SpanKind, TraceRecord};
/// use lotus_sim::{Span, StorageCounters, Time};
///
/// let counters = StorageCounters {
///     object_reads: 2,
///     object_bytes: 256 * 1024,
///     seeks: 1,
///     max_queue_depth: 2,
///     ..StorageCounters::default()
/// };
/// let read = TraceRecord {
///     kind: SpanKind::StorageRead("object-store".to_string()),
///     pid: 4243,
///     batch_id: 0,
///     start: Time::ZERO,
///     duration: Span::from_millis(5),
///     out_of_order: false,
///     queue_delay: Span::ZERO,
/// };
/// let attr = StorageAttribution::from_run(&counters, &[read]);
/// assert_eq!(attr.tiers.len(), 1);
/// assert_eq!(attr.tiers[0].tier, "object-store");
/// assert_eq!(attr.t0_total(), Span::from_millis(5));
/// assert_eq!(attr.total_reads(), 2);
/// assert_eq!(attr.hit_ratio(), 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageAttribution {
    /// Tiers that saw traffic, shallowest first.
    pub tiers: Vec<TierUsage>,
    /// Seeks performed by the local disk.
    pub seeks: u64,
    /// Maximum backing-device queue depth observed.
    pub max_queue_depth: u32,
}

impl StorageAttribution {
    /// Joins the counters a [`lotus_sim::Storage`] accumulated with the
    /// T0 spans the trace recorded. Tiers that saw no reads and no span
    /// time are omitted.
    #[must_use]
    pub fn from_run(counters: &StorageCounters, records: &[TraceRecord]) -> StorageAttribution {
        let t0 = storage_tier_totals(records);
        let tiers = [
            StorageTier::PageCache,
            StorageTier::LocalDisk,
            StorageTier::ObjectStore,
        ]
        .into_iter()
        .filter_map(|tier| {
            let (reads, bytes) = counters.tier(tier);
            let t0_ns = t0.get(tier.as_str()).map_or(0, |s| s.as_nanos());
            (reads > 0 || t0_ns > 0).then(|| TierUsage {
                tier: tier.as_str().to_string(),
                reads,
                bytes,
                t0_ns,
            })
        })
        .collect();
        StorageAttribution {
            tiers,
            seeks: counters.seeks,
            max_queue_depth: counters.max_queue_depth,
        }
    }

    /// Total reads across all tiers.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.tiers.iter().map(|t| t.reads).sum()
    }

    /// Fraction of reads served entirely from the page cache, in
    /// `[0, 1]` (zero when no reads happened).
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            return 0.0;
        }
        let hits = self
            .tiers
            .iter()
            .find(|t| t.tier == StorageTier::PageCache.as_str())
            .map_or(0, |t| t.reads);
        hits as f64 / total as f64
    }

    /// Total T0 span time across all tiers.
    #[must_use]
    pub fn t0_total(&self) -> Span {
        Span::from_nanos(self.tiers.iter().map(|t| t.t0_ns).sum())
    }

    /// True if no tier saw any traffic.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// Serializes to JSON (the `lotus run --storage-out` artifact).
    ///
    /// # Panics
    ///
    /// Panics only if JSON serialization fails, which cannot happen for
    /// this type.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("storage attribution serialization cannot fail")
    }

    /// Parses an attribution previously produced by
    /// [`StorageAttribution::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error for malformed input.
    ///
    /// # Examples
    ///
    /// ```
    /// use lotus_core::map::StorageAttribution;
    ///
    /// let attr = StorageAttribution::default();
    /// let back = StorageAttribution::from_json(&attr.to_json()).unwrap();
    /// assert!(back.is_empty());
    /// ```
    pub fn from_json(s: &str) -> Result<StorageAttribution, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Renders the attribution as a text table, one row per tier.
    ///
    /// # Examples
    ///
    /// ```
    /// use lotus_core::map::{StorageAttribution, TierUsage};
    ///
    /// let attr = StorageAttribution {
    ///     tiers: vec![TierUsage {
    ///         tier: "page-cache".to_string(),
    ///         reads: 8,
    ///         bytes: 1 << 20,
    ///         t0_ns: 80_000,
    ///     }],
    ///     seeks: 0,
    ///     max_queue_depth: 1,
    /// };
    /// let table = attr.to_table_string();
    /// assert!(table.contains("page-cache"));
    /// assert!(table.contains("hit ratio 1.00"));
    /// ```
    #[must_use]
    pub fn to_table_string(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>12} {:>12}",
            "Tier", "reads", "bytes", "t0 (ms)"
        );
        for t in &self.tiers {
            let _ = writeln!(
                out,
                "{:<14} {:>10} {:>12} {:>12.2}",
                t.tier,
                t.reads,
                t.bytes,
                t.t0_ns as f64 / 1e6,
            );
        }
        let _ = writeln!(
            out,
            "hit ratio {:.2}  seeks {}  max queue depth {}",
            self.hit_ratio(),
            self.seeks,
            self.max_queue_depth,
        );
        out
    }
}

impl Serialize for TierUsage {
    fn serialize_content(&self) -> Content {
        Content::Map(vec![
            ("tier".to_string(), self.tier.serialize_content()),
            ("reads".to_string(), self.reads.serialize_content()),
            ("bytes".to_string(), self.bytes.serialize_content()),
            ("t0_ns".to_string(), self.t0_ns.serialize_content()),
        ])
    }
}

impl Deserialize for TierUsage {
    fn deserialize_content(content: &Content) -> Result<TierUsage, String> {
        let field = |key: &str| {
            content
                .get_field(key)
                .ok_or_else(|| format!("TierUsage missing field `{key}`"))
        };
        Ok(TierUsage {
            tier: String::deserialize_content(field("tier")?)?,
            reads: u64::deserialize_content(field("reads")?)?,
            bytes: u64::deserialize_content(field("bytes")?)?,
            t0_ns: u64::deserialize_content(field("t0_ns")?)?,
        })
    }
}

impl Serialize for StorageAttribution {
    fn serialize_content(&self) -> Content {
        Content::Map(vec![
            ("tiers".to_string(), self.tiers.serialize_content()),
            ("seeks".to_string(), self.seeks.serialize_content()),
            (
                "max_queue_depth".to_string(),
                self.max_queue_depth.serialize_content(),
            ),
        ])
    }
}

impl Deserialize for StorageAttribution {
    fn deserialize_content(content: &Content) -> Result<StorageAttribution, String> {
        let field = |key: &str| {
            content
                .get_field(key)
                .ok_or_else(|| format!("StorageAttribution missing field `{key}`"))
        };
        Ok(StorageAttribution {
            tiers: Vec::deserialize_content(field("tiers")?)?,
            seeks: u64::deserialize_content(field("seeks")?)?,
            max_queue_depth: u32::deserialize_content(field("max_queue_depth")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use lotus_sim::Time;

    use super::*;
    use crate::trace::SpanKind;

    fn read(tier: &str, ms: u64) -> TraceRecord {
        TraceRecord {
            kind: SpanKind::StorageRead(tier.to_string()),
            pid: 4243,
            batch_id: 0,
            start: Time::ZERO,
            duration: Span::from_millis(ms),
            out_of_order: false,
            queue_delay: Span::ZERO,
        }
    }

    #[test]
    fn joins_counters_with_trace_spans_per_tier() {
        let counters = StorageCounters {
            page_cache_reads: 6,
            page_cache_bytes: 6 * 64 * 1024,
            object_reads: 2,
            object_bytes: 4 * 64 * 1024,
            seeks: 3,
            max_queue_depth: 2,
            ..StorageCounters::default()
        };
        let records = vec![read("object-store", 10), read("page-cache", 1)];
        let attr = StorageAttribution::from_run(&counters, &records);
        assert_eq!(attr.tiers.len(), 2, "{attr:?}");
        assert_eq!(attr.tiers[0].tier, "page-cache");
        assert_eq!(attr.tiers[0].reads, 6);
        assert_eq!(attr.tiers[0].t0_ns, 1_000_000);
        assert_eq!(attr.tiers[1].tier, "object-store");
        assert_eq!(attr.tiers[1].t0_ns, 10_000_000);
        assert_eq!(attr.total_reads(), 8);
        assert!((attr.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(attr.t0_total(), Span::from_millis(11));
        assert_eq!(attr.seeks, 3);
        assert_eq!(attr.max_queue_depth, 2);
    }

    #[test]
    fn idle_tiers_are_omitted() {
        let counters = StorageCounters {
            disk_reads: 1,
            disk_bytes: 64 * 1024,
            ..StorageCounters::default()
        };
        let attr = StorageAttribution::from_run(&counters, &[]);
        assert_eq!(attr.tiers.len(), 1);
        assert_eq!(attr.tiers[0].tier, "local-disk");
        assert_eq!(attr.tiers[0].t0_ns, 0, "no trace spans recorded");
        assert!(!attr.is_empty());
        assert!(StorageAttribution::from_run(&StorageCounters::default(), &[]).is_empty());
    }

    #[test]
    fn table_lists_every_tier_and_the_summary_line() {
        let counters = StorageCounters {
            page_cache_reads: 1,
            object_reads: 1,
            seeks: 2,
            max_queue_depth: 4,
            ..StorageCounters::default()
        };
        let table = StorageAttribution::from_run(&counters, &[]).to_table_string();
        assert!(table.contains("page-cache"));
        assert!(table.contains("object-store"));
        assert!(table.contains("hit ratio 0.50  seeks 2  max queue depth 4"));
    }
}
