//! Small descriptive-statistics helpers shared by the analysis and bench
//! crates.

/// Descriptive summary of a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of values.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Median (P50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Inter-quartile range (P75 − P25).
    pub iqr: f64,
}

impl Summary {
    /// Computes the summary of `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        Summary {
            count,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            p50: percentile_sorted(&sorted, 50.0),
            p90: percentile_sorted(&sorted, 90.0),
            p99: percentile_sorted(&sorted, 99.0),
            iqr: percentile_sorted(&sorted, 75.0) - percentile_sorted(&sorted, 25.0),
        }
    }

    /// Coefficient of variation (`std / mean`), or 0 for a zero mean.
    #[must_use]
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean
        }
    }
}

/// Percentile `p` (0–100) of `values`, with linear interpolation.
///
/// # Panics
///
/// Panics if `values` is empty or `p` is outside `[0, 100]`.
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "cannot take percentile of empty sample");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    percentile_sorted(&sorted, p)
}

fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Fraction of `values` strictly below `threshold`, in `[0, 1]`.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn fraction_below(values: &[f64], threshold: f64) -> f64 {
    assert!(!values.is_empty(), "cannot take fraction of empty sample");
    values.iter().filter(|&&v| v < threshold).count() as f64 / values.len() as f64
}

/// Fraction of `values` strictly above `threshold`, in `[0, 1]`.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn fraction_above(values: &[f64], threshold: f64) -> f64 {
    assert!(!values.is_empty(), "cannot take fraction of empty sample");
    values.iter().filter(|&&v| v > threshold).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_uniform_ramp() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&values);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p90 - 90.1).abs() < 1e-9);
        assert!((s.iqr - 49.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates() {
        assert_eq!(percentile(&[10.0, 20.0], 50.0), 15.0);
        assert_eq!(percentile(&[10.0, 20.0], 0.0), 10.0);
        assert_eq!(percentile(&[10.0, 20.0], 100.0), 20.0);
        assert_eq!(percentile(&[7.0], 90.0), 7.0);
    }

    #[test]
    fn fractions_count_strict_inequalities() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fraction_below(&v, 3.0), 0.5);
        assert_eq!(fraction_above(&v, 3.0), 0.25);
    }

    #[test]
    fn cv_is_std_over_mean() {
        let s = Summary::of(&[9.0, 11.0]);
        assert!((s.cv() - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_summary_panics() {
        let _ = Summary::of(&[]);
    }
}
