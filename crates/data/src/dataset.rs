//! Synthetic dataset *models*: deterministic per-index metadata matching
//! the published statistics of the paper's datasets (ImageNet, KiTS19,
//! MS-COCO), without materializing any data.
//!
//! Metadata is derived from `(dataset seed, index)` with a splitmix64-style
//! mixer, so random access is O(1) and every run is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::LogNormal;
use crate::image::Image;

/// Mixes a dataset seed and an item index into an independent RNG seed.
#[must_use]
pub fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Metadata for one encoded image in an image dataset: everything the
/// pipeline model needs to cost loading/decoding it, plus enough to
/// materialize real pixels on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageRecord {
    /// Item index within the dataset.
    pub index: u64,
    /// Encoded (compressed) file size in bytes.
    pub file_bytes: u64,
    /// Decoded width in pixels.
    pub width: u32,
    /// Decoded height in pixels.
    pub height: u32,
    /// Seed for materializing pixel content.
    pub content_seed: u64,
}

impl ImageRecord {
    /// Decoded pixel count.
    #[must_use]
    pub fn pixels(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// Decoded RGB byte count.
    #[must_use]
    pub fn decoded_bytes(&self) -> u64 {
        self.pixels() * 3
    }

    /// Materializes synthetic pixel content for this record (used by the
    /// real-compute path: codec round-trips, examples, LotusMap isolation).
    #[must_use]
    pub fn materialize(&self) -> Image {
        let mut rng = StdRng::seed_from_u64(self.content_seed);
        Image::synthetic(self.height as usize, self.width as usize, &mut rng)
    }
}

/// A synthetic image-classification / detection dataset model.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageDatasetModel {
    name: String,
    len: u64,
    seed: u64,
    file_size: LogNormal,
    min_side: u32,
    max_side: u32,
    /// Encoded bytes per decoded pixel (JPEG compression density).
    bytes_per_pixel: f64,
}

impl ImageDatasetModel {
    /// The full ImageNet-2012 train split model: 1.28 M images, file sizes
    /// log-normal with mean 111 KB and σ 133 KB (§V-C of the paper).
    #[must_use]
    pub fn imagenet(seed: u64) -> ImageDatasetModel {
        ImageDatasetModel {
            name: "imagenet".into(),
            len: 1_281_167,
            seed,
            file_size: LogNormal::from_mean_std(111_000.0, 133_000.0),
            min_side: 120,
            max_side: 4200,
            bytes_per_pixel: 0.55,
        }
    }

    /// The 26 061-image ImageNet subset the paper uses for profiler
    /// comparisons ("ImageNet-small", §VI-B).
    #[must_use]
    pub fn imagenet_small(seed: u64) -> ImageDatasetModel {
        let mut m = ImageDatasetModel::imagenet(seed);
        m.name = "imagenet-small".into();
        m.len = 26_061;
        m
    }

    /// An MS-COCO-like detection dataset model (larger images, 118 K items).
    #[must_use]
    pub fn coco(seed: u64) -> ImageDatasetModel {
        ImageDatasetModel {
            name: "coco".into(),
            len: 118_287,
            seed,
            file_size: LogNormal::from_mean_std(165_000.0, 80_000.0),
            min_side: 240,
            max_side: 760,
            bytes_per_pixel: 0.38,
        }
    }

    /// A custom model, mainly for tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or the side bounds are inverted.
    #[must_use]
    pub fn custom(
        name: impl Into<String>,
        len: u64,
        seed: u64,
        file_size: LogNormal,
        side_bounds: (u32, u32),
        bytes_per_pixel: f64,
    ) -> ImageDatasetModel {
        assert!(len > 0, "dataset must be non-empty");
        assert!(
            side_bounds.0 > 0 && side_bounds.0 <= side_bounds.1,
            "invalid side bounds"
        );
        ImageDatasetModel {
            name: name.into(),
            len,
            seed,
            file_size,
            min_side: side_bounds.0,
            max_side: side_bounds.1,
            bytes_per_pixel,
        }
    }

    /// Truncates the dataset to its first `len` items (for scaled-down
    /// experiment runs).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[must_use]
    pub fn truncated(&self, len: u64) -> ImageDatasetModel {
        assert!(len > 0, "dataset must be non-empty");
        let mut m = self.clone();
        m.len = len.min(self.len);
        m
    }

    /// Dataset name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the dataset has no items (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The record for item `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    pub fn record(&self, index: u64) -> ImageRecord {
        assert!(
            index < self.len,
            "index {index} out of range (len {})",
            self.len
        );
        let item_seed = mix_seed(self.seed, index);
        let mut rng = StdRng::seed_from_u64(item_seed);
        let file_bytes = (self.file_size.sample(&mut rng).max(4096.0)) as u64;
        // Derive decoded dimensions from the encoded size: pixels ≈
        // bytes / density, split into an aspect ratio in [3:4, 4:3].
        let pixels = (file_bytes as f64 / self.bytes_per_pixel).max(1.0);
        let aspect: f64 = rng.gen_range(0.75..=1.3333);
        let width = (pixels * aspect).sqrt().round();
        let height = (pixels / aspect).sqrt().round();
        let clamp = |v: f64| (v as u32).clamp(self.min_side, self.max_side);
        ImageRecord {
            index,
            file_bytes,
            width: clamp(width),
            height: clamp(height),
            content_seed: mix_seed(item_seed, 0x00C0_FFEE),
        }
    }

    /// Mean encoded file size over the first `sample_n` items.
    #[must_use]
    pub fn sample_mean_file_bytes(&self, sample_n: u64) -> f64 {
        let n = sample_n.min(self.len).max(1);
        (0..n)
            .map(|i| self.record(i).file_bytes as f64)
            .sum::<f64>()
            / n as f64
    }
}

/// Metadata for one CT volume in a KiTS19-like segmentation dataset
/// (stored as preprocessed numpy arrays, as in the MLPerf IS reference
/// implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolumeRecord {
    /// Case index.
    pub index: u64,
    /// Volume dimensions (depth, height, width) in voxels.
    pub dims: (u32, u32, u32),
    /// Stored bytes (float32 voxels, image + label).
    pub stored_bytes: u64,
    /// Seed for materializing content.
    pub content_seed: u64,
}

impl VolumeRecord {
    /// Total voxel count.
    #[must_use]
    pub fn voxels(&self) -> u64 {
        u64::from(self.dims.0) * u64::from(self.dims.1) * u64::from(self.dims.2)
    }
}

/// A KiTS19-like volumetric dataset model: 210 training cases with highly
/// variable depth (the source of the IS pipeline's large load-time
/// variance in Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct VolumeDatasetModel {
    len: u64,
    seed: u64,
}

impl VolumeDatasetModel {
    /// The KiTS19 training-set model.
    #[must_use]
    pub fn kits19(seed: u64) -> VolumeDatasetModel {
        VolumeDatasetModel { len: 210, seed }
    }

    /// Number of cases.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the dataset has no cases (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The record for case `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    pub fn record(&self, index: u64) -> VolumeRecord {
        assert!(
            index < self.len,
            "case {index} out of range (len {})",
            self.len
        );
        let item_seed = mix_seed(self.seed.wrapping_add(0x5E6), index);
        let mut rng = StdRng::seed_from_u64(item_seed);
        // KiTS19 axial slice counts roughly 30–1000; H×W fixed-ish after
        // MLPerf preprocessing.
        let depth: u32 = rng.gen_range(24..=480);
        let side: u32 = rng.gen_range(160..=352);
        let dims = (depth, side, side);
        let voxels = u64::from(depth) * u64::from(side) * u64::from(side);
        VolumeRecord {
            index,
            dims,
            // image (f32) + label (u8)
            stored_bytes: voxels * 5,
            content_seed: mix_seed(item_seed, 0xBEEF),
        }
    }
}

/// Metadata for one compressed audio clip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AudioRecord {
    /// Clip index.
    pub index: u64,
    /// Compressed (FLAC-like) file size in bytes.
    pub file_bytes: u64,
    /// Decoded sample count at the native rate.
    pub samples: u64,
    /// Native sample rate in Hz.
    pub sample_rate: u32,
    /// Seed for materializing waveform content.
    pub content_seed: u64,
}

impl AudioRecord {
    /// Materializes a synthetic waveform for this clip: a seeded mixture
    /// of tones plus noise, f32 samples in `[-1, 1]`.
    #[must_use]
    pub fn materialize(&self) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(self.content_seed);
        let tones: Vec<(f64, f64)> = (0..3)
            .map(|_| (rng.gen_range(60.0..4_000.0), rng.gen_range(0.05..0.3)))
            .collect();
        let sr = f64::from(self.sample_rate);
        (0..self.samples)
            .map(|i| {
                let t = i as f64 / sr;
                let tone: f64 = tones
                    .iter()
                    .map(|(hz, amp)| amp * (std::f64::consts::TAU * hz * t).sin())
                    .sum();
                let noise: f64 = rng.gen_range(-0.02..0.02);
                (tone + noise) as f32
            })
            .collect()
    }
}

/// A synthetic audio-classification dataset model (AudioSet-like clips:
/// variable duration, 22.05 kHz native rate, ~55 % FLAC compression).
///
/// This backs the repository's audio-pipeline extension — the workload
/// class the paper's introduction names as preprocessing-bound.
#[derive(Debug, Clone, PartialEq)]
pub struct AudioDatasetModel {
    len: u64,
    seed: u64,
    duration: LogNormal,
    sample_rate: u32,
}

impl AudioDatasetModel {
    /// An AudioSet-like model: 100 k clips, durations log-normal with
    /// mean 4 s / σ 2 s, recorded at 22.05 kHz.
    #[must_use]
    pub fn audioset(seed: u64) -> AudioDatasetModel {
        AudioDatasetModel {
            len: 100_000,
            seed,
            duration: LogNormal::from_mean_std(4.0, 2.0),
            sample_rate: 22_050,
        }
    }

    /// Truncates to the first `len` clips.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[must_use]
    pub fn truncated(&self, len: u64) -> AudioDatasetModel {
        assert!(len > 0, "dataset must be non-empty");
        let mut m = self.clone();
        m.len = len.min(self.len);
        m
    }

    /// Number of clips.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the dataset has no clips (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Native sample rate.
    #[must_use]
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// The record for clip `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    pub fn record(&self, index: u64) -> AudioRecord {
        assert!(
            index < self.len,
            "clip {index} out of range (len {})",
            self.len
        );
        let item_seed = mix_seed(self.seed.wrapping_add(0xA0D10), index);
        let mut rng = StdRng::seed_from_u64(item_seed);
        let duration = self.duration.sample(&mut rng).clamp(0.5, 30.0);
        let samples = (duration * f64::from(self.sample_rate)) as u64;
        AudioRecord {
            index,
            // 16-bit PCM compressed ~55 % by FLAC.
            file_bytes: (samples as f64 * 2.0 * 0.55) as u64,
            samples,
            sample_rate: self.sample_rate,
            content_seed: mix_seed(item_seed, 0xFACE),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_deterministic() {
        let d = ImageDatasetModel::imagenet(17);
        assert_eq!(d.record(5), d.record(5));
        assert_ne!(d.record(5), d.record(6));
    }

    #[test]
    fn imagenet_file_sizes_match_paper_mean() {
        let d = ImageDatasetModel::imagenet(1);
        let mean = d.sample_mean_file_bytes(20_000);
        assert!((mean - 111_000.0).abs() / 111_000.0 < 0.05, "mean {mean}");
    }

    #[test]
    fn dims_scale_with_file_size() {
        let d = ImageDatasetModel::imagenet(2);
        let mut small_px = Vec::new();
        let mut large_px = Vec::new();
        for i in 0..2_000 {
            let r = d.record(i);
            if r.file_bytes < 50_000 {
                small_px.push(r.pixels() as f64);
            } else if r.file_bytes > 200_000 {
                large_px.push(r.pixels() as f64);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&large_px) > 2.0 * avg(&small_px));
    }

    #[test]
    fn truncation_limits_length_and_keeps_prefix() {
        let full = ImageDatasetModel::imagenet(3);
        let small = full.truncated(100);
        assert_eq!(small.len(), 100);
        assert_eq!(small.record(42), full.record(42));
    }

    #[test]
    fn imagenet_small_matches_paper_count() {
        assert_eq!(ImageDatasetModel::imagenet_small(0).len(), 26_061);
    }

    #[test]
    fn kits19_depth_varies_widely() {
        let d = VolumeDatasetModel::kits19(9);
        let depths: Vec<u32> = (0..d.len()).map(|i| d.record(i).dims.0).collect();
        let min = depths.iter().min().unwrap();
        let max = depths.iter().max().unwrap();
        assert!(*max > *min * 4, "depth range should be wide: {min}..{max}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_record_panics() {
        let _ = ImageDatasetModel::imagenet(0).truncated(10).record(10);
    }

    #[test]
    fn audio_materialization_is_seeded_and_bounded() {
        let d = AudioDatasetModel::audioset(5).truncated(4);
        let r = d.record(1);
        let a = r.materialize();
        let b = r.materialize();
        assert_eq!(a, b);
        assert_eq!(a.len() as u64, r.samples);
        assert!(a.iter().all(|&x| (-1.2..=1.2).contains(&x)));
        assert!(a.iter().any(|&x| x.abs() > 0.01), "not silence");
    }

    #[test]
    fn audio_records_have_sane_durations() {
        let d = AudioDatasetModel::audioset(3);
        let mut total = 0.0;
        for i in 0..2_000 {
            let r = d.record(i);
            let dur = r.samples as f64 / f64::from(r.sample_rate);
            assert!((0.5..=30.0).contains(&dur), "duration {dur}");
            assert!(r.file_bytes > 0);
            total += dur;
        }
        let mean = total / 2_000.0;
        assert!((3.2..4.8).contains(&mean), "mean duration {mean}");
    }

    #[test]
    fn mix_seed_spreads_bits() {
        let a = mix_seed(1, 1);
        let b = mix_seed(1, 2);
        let c = mix_seed(2, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
