//! Seedable statistical distributions (Box–Muller based).
//!
//! Implemented here rather than pulling in `rand_distr` to keep the
//! dependency set minimal (see DESIGN.md) and to make the sampling code
//! property-testable.

use rand::Rng;

/// A normal (Gaussian) distribution.
///
/// ```
/// use lotus_data::dist::Normal;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let n = Normal::new(10.0, 2.0);
/// let x = n.sample(&mut StdRng::seed_from_u64(1));
/// assert!((0.0..20.0).contains(&x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or not finite.
    #[must_use]
    pub fn new(mean: f64, std: f64) -> Normal {
        assert!(
            std.is_finite() && std >= 0.0,
            "std must be finite and non-negative"
        );
        Normal { mean, std }
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    #[must_use]
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Draws one sample using the Box–Muller transform.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        // Avoid u1 == 0 (log of zero).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std * z
    }
}

/// A log-normal distribution parameterized by the underlying normal's
/// `mu` and `sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution from the underlying normal
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        LogNormal {
            normal: Normal::new(mu, sigma),
        }
    }

    /// Creates a log-normal distribution with the given *arithmetic* mean
    /// and standard deviation (the moments the paper reports for ImageNet
    /// file sizes: mean 111 KB, σ 133 KB).
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0` and `std >= 0`.
    #[must_use]
    pub fn from_mean_std(mean: f64, std: f64) -> LogNormal {
        assert!(mean > 0.0, "log-normal mean must be positive");
        assert!(std >= 0.0, "log-normal std must be non-negative");
        let cv2 = (std / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal::new(mu, sigma2.sqrt())
    }

    /// The arithmetic mean `exp(mu + sigma²/2)`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        (self.normal.mean() + self.normal.std().powi(2) / 2.0).exp()
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        self.normal.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    #[test]
    fn normal_matches_requested_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = Normal::new(5.0, 3.0);
        let samples: Vec<f64> = (0..200_000).map(|_| n.sample(&mut rng)).collect();
        let (mean, std) = moments(&samples);
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((std - 3.0).abs() < 0.05, "std {std}");
    }

    #[test]
    fn lognormal_from_mean_std_reproduces_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = LogNormal::from_mean_std(111_000.0, 133_000.0);
        let samples: Vec<f64> = (0..400_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, std) = moments(&samples);
        assert!((mean - 111_000.0).abs() / 111_000.0 < 0.03, "mean {mean}");
        assert!((std - 133_000.0).abs() / 133_000.0 < 0.08, "std {std}");
    }

    #[test]
    fn lognormal_samples_are_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = LogNormal::from_mean_std(10.0, 30.0);
        assert!((0..10_000).all(|_| d.sample(&mut rng) > 0.0));
    }

    #[test]
    fn analytic_mean_matches_construction() {
        let d = LogNormal::from_mean_std(111.0, 133.0);
        assert!((d.mean() - 111.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_mean_is_rejected() {
        let _ = LogNormal::from_mean_std(0.0, 1.0);
    }
}
