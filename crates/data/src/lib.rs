//! # lotus-data — tensors, images and synthetic dataset models
//!
//! Shared data substrate for the Lotus reproduction: a minimal dense
//! [`Tensor`], decoded [`Image`]s, seedable distributions
//! ([`dist::LogNormal`], [`dist::Normal`]), descriptive statistics
//! ([`stats::Summary`]) and deterministic synthetic dataset models matching
//! the published statistics of ImageNet, KiTS19 and MS-COCO
//! ([`ImageDatasetModel`], [`VolumeDatasetModel`]).
//!
//! ```
//! use lotus_data::ImageDatasetModel;
//!
//! let imagenet = ImageDatasetModel::imagenet(42);
//! let rec = imagenet.record(0);
//! assert!(rec.file_bytes > 0);
//! let img = rec.materialize();
//! assert_eq!(img.height(), rec.height as usize);
//! ```

#![warn(missing_docs)]
// The whole workspace is safe Rust; determinism and auditability both
// lean on it. Gate any future exception through a crate-level decision.
#![deny(unsafe_code)]

pub mod dist;
pub mod stats;

mod dataset;
mod image;
mod tensor;

pub use dataset::{
    mix_seed, AudioDatasetModel, AudioRecord, ImageDatasetModel, ImageRecord, VolumeDatasetModel,
    VolumeRecord,
};
pub use image::Image;
pub use tensor::{DType, Tensor, TensorData};
