//! A minimal dense tensor, sufficient for the preprocessing transforms.

/// Element type of a [`Tensor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// Unsigned 8-bit (decoded image bytes).
    U8,
    /// 32-bit float (normalized model inputs).
    F32,
}

impl DType {
    /// Size of one element in bytes.
    #[must_use]
    pub fn size_bytes(self) -> usize {
        match self {
            DType::U8 => 1,
            DType::F32 => 4,
        }
    }
}

/// Storage for a [`Tensor`].
#[derive(Debug, Clone, PartialEq)]
pub enum TensorData {
    /// Unsigned 8-bit buffer.
    U8(Vec<u8>),
    /// 32-bit float buffer.
    F32(Vec<f32>),
}

/// A dense, row-major tensor.
///
/// Only what the preprocessing pipelines need: shape/dtype bookkeeping,
/// elementwise access, and conversions. Layout for images is CHW after
/// `ToTensor` (PyTorch convention) and HWC before.
///
/// ```
/// use lotus_data::{DType, Tensor};
///
/// let t = Tensor::zeros(&[3, 2, 2], DType::F32);
/// assert_eq!(t.len(), 12);
/// assert_eq!(t.size_bytes(), 48);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: TensorData,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty.
    #[must_use]
    pub fn zeros(shape: &[usize], dtype: DType) -> Tensor {
        assert!(
            !shape.is_empty(),
            "tensor shape must have at least one dimension"
        );
        let len = shape.iter().product();
        let data = match dtype {
            DType::U8 => TensorData::U8(vec![0; len]),
            DType::F32 => TensorData::F32(vec![0.0; len]),
        };
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Wraps an owned u8 buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    #[must_use]
    pub fn from_u8(shape: &[usize], data: Vec<u8>) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape/data mismatch"
        );
        Tensor {
            shape: shape.to_vec(),
            data: TensorData::U8(data),
        }
    }

    /// Wraps an owned f32 buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    #[must_use]
    pub fn from_f32(shape: &[usize], data: Vec<f32>) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape/data mismatch"
        );
        Tensor {
            shape: shape.to_vec(),
            data: TensorData::F32(data),
        }
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    /// True for a zero-element tensor.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element type.
    #[must_use]
    pub fn dtype(&self) -> DType {
        match self.data {
            TensorData::U8(_) => DType::U8,
            TensorData::F32(_) => DType::F32,
        }
    }

    /// Total buffer size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.len() * self.dtype().size_bytes()
    }

    /// Borrows the u8 buffer, or `None` if the dtype is not [`DType::U8`].
    #[must_use]
    pub fn try_as_u8(&self) -> Option<&[u8]> {
        match &self.data {
            TensorData::U8(v) => Some(v),
            TensorData::F32(_) => None,
        }
    }

    /// Mutably borrows the u8 buffer, or `None` if the dtype is not
    /// [`DType::U8`].
    pub fn try_as_u8_mut(&mut self) -> Option<&mut [u8]> {
        match &mut self.data {
            TensorData::U8(v) => Some(v),
            TensorData::F32(_) => None,
        }
    }

    /// Borrows the u8 buffer.
    ///
    /// # Panics
    ///
    /// Panics if the dtype is not [`DType::U8`]; use [`Tensor::try_as_u8`]
    /// where a typed error is needed instead.
    #[must_use]
    pub fn as_u8(&self) -> &[u8] {
        self.try_as_u8().expect("tensor is f32, expected u8")
    }

    /// Mutably borrows the u8 buffer.
    ///
    /// # Panics
    ///
    /// Panics if the dtype is not [`DType::U8`].
    pub fn as_u8_mut(&mut self) -> &mut [u8] {
        self.try_as_u8_mut().expect("tensor is f32, expected u8")
    }

    /// Borrows the f32 buffer, or `None` if the dtype is not [`DType::F32`].
    #[must_use]
    pub fn try_as_f32(&self) -> Option<&[f32]> {
        match &self.data {
            TensorData::F32(v) => Some(v),
            TensorData::U8(_) => None,
        }
    }

    /// Mutably borrows the f32 buffer, or `None` if the dtype is not
    /// [`DType::F32`].
    pub fn try_as_f32_mut(&mut self) -> Option<&mut [f32]> {
        match &mut self.data {
            TensorData::F32(v) => Some(v),
            TensorData::U8(_) => None,
        }
    }

    /// Borrows the f32 buffer.
    ///
    /// # Panics
    ///
    /// Panics if the dtype is not [`DType::F32`]; use [`Tensor::try_as_f32`]
    /// where a typed error is needed instead.
    #[must_use]
    pub fn as_f32(&self) -> &[f32] {
        self.try_as_f32().expect("tensor is u8, expected f32")
    }

    /// Mutably borrows the f32 buffer.
    ///
    /// # Panics
    ///
    /// Panics if the dtype is not [`DType::F32`].
    pub fn as_f32_mut(&mut self) -> &mut [f32] {
        self.try_as_f32_mut().expect("tensor is u8, expected f32")
    }

    /// Converts to f32 in `[0, 1]` (PyTorch `ToTensor` scaling) if u8;
    /// returns self unchanged if already f32.
    #[must_use]
    pub fn to_f32_scaled(&self) -> Tensor {
        match &self.data {
            TensorData::F32(_) => self.clone(),
            TensorData::U8(v) => Tensor {
                shape: self.shape.clone(),
                data: TensorData::F32(v.iter().map(|&b| f32::from(b) / 255.0).collect()),
            },
        }
    }

    /// Converts to u8 with saturation (the IS pipeline's `Cast`).
    #[must_use]
    pub fn to_u8_saturating(&self) -> Tensor {
        match &self.data {
            TensorData::U8(_) => self.clone(),
            TensorData::F32(v) => Tensor {
                shape: self.shape.clone(),
                data: TensorData::U8(v.iter().map(|&f| f.clamp(0.0, 255.0) as u8).collect()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_len_and_dtype() {
        let t = Tensor::zeros(&[2, 3, 4], DType::U8);
        assert_eq!(t.len(), 24);
        assert_eq!(t.dtype(), DType::U8);
        assert_eq!(t.size_bytes(), 24);
        assert!(t.as_u8().iter().all(|&b| b == 0));
    }

    #[test]
    fn f32_size_is_four_bytes_per_element() {
        let t = Tensor::zeros(&[5], DType::F32);
        assert_eq!(t.size_bytes(), 20);
    }

    #[test]
    fn to_f32_scaled_maps_255_to_1() {
        let t = Tensor::from_u8(&[3], vec![0, 128, 255]);
        let f = t.to_f32_scaled();
        let v = f.as_f32();
        assert_eq!(v[0], 0.0);
        assert!((v[1] - 128.0 / 255.0).abs() < 1e-6);
        assert_eq!(v[2], 1.0);
    }

    #[test]
    fn to_u8_saturates() {
        let t = Tensor::from_f32(&[3], vec![-5.0, 100.2, 300.0]);
        assert_eq!(t.to_u8_saturating().as_u8(), &[0, 100, 255]);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn mismatched_shape_is_rejected() {
        let _ = Tensor::from_u8(&[2, 2], vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "expected u8")]
    fn wrong_dtype_access_panics() {
        let t = Tensor::zeros(&[1], DType::F32);
        let _ = t.as_u8();
    }
}
