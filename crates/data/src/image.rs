//! Raw decoded images (HWC, 8-bit).

use rand::Rng;

use crate::tensor::Tensor;

/// A decoded RGB image in HWC layout, 8 bits per channel.
///
/// ```
/// use lotus_data::Image;
///
/// let img = Image::filled(4, 6, [10, 20, 30]);
/// assert_eq!(img.pixel(2, 3), [10, 20, 30]);
/// assert_eq!(img.len_bytes(), 4 * 6 * 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    height: usize,
    width: usize,
    pixels: Vec<u8>,
}

impl Image {
    /// Number of channels (always RGB here, like torchvision's
    /// `pil_loader` which converts everything to RGB).
    pub const CHANNELS: usize = 3;

    /// Creates an image filled with one color.
    #[must_use]
    pub fn filled(height: usize, width: usize, rgb: [u8; 3]) -> Image {
        let mut pixels = Vec::with_capacity(height * width * Self::CHANNELS);
        for _ in 0..height * width {
            pixels.extend_from_slice(&rgb);
        }
        Image {
            height,
            width,
            pixels,
        }
    }

    /// Wraps an owned HWC pixel buffer.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != height * width * 3`.
    #[must_use]
    pub fn from_pixels(height: usize, width: usize, pixels: Vec<u8>) -> Image {
        assert_eq!(
            pixels.len(),
            height * width * Self::CHANNELS,
            "pixel buffer size mismatch"
        );
        Image {
            height,
            width,
            pixels,
        }
    }

    /// Generates a synthetic photo-like image: smooth gradients plus
    /// seeded noise, so codec round-trips and transforms exercise
    /// realistic (compressible but non-trivial) content.
    #[must_use]
    pub fn synthetic(height: usize, width: usize, rng: &mut impl Rng) -> Image {
        let mut pixels = Vec::with_capacity(height * width * Self::CHANNELS);
        let (fx, fy) = (rng.gen_range(0.5..3.0), rng.gen_range(0.5..3.0));
        let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        for y in 0..height {
            for x in 0..width {
                let u = x as f64 / width.max(1) as f64;
                let v = y as f64 / height.max(1) as f64;
                let base = ((u * fx + v * fy) * std::f64::consts::TAU + phase).sin() * 0.5 + 0.5;
                for c in 0..Self::CHANNELS {
                    let chan = (base * 200.0 + c as f64 * 18.0) as i32;
                    let noise = rng.gen_range(-12i32..=12);
                    pixels.push((chan + noise).clamp(0, 255) as u8);
                }
            }
        }
        Image {
            height,
            width,
            pixels,
        }
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Borrow of the HWC pixel buffer.
    #[must_use]
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Mutable borrow of the HWC pixel buffer.
    pub fn pixels_mut(&mut self) -> &mut [u8] {
        &mut self.pixels
    }

    /// Buffer size in bytes.
    #[must_use]
    pub fn len_bytes(&self) -> usize {
        self.pixels.len()
    }

    /// The RGB value at `(y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn pixel(&self, y: usize, x: usize) -> [u8; 3] {
        assert!(
            y < self.height && x < self.width,
            "pixel ({y},{x}) out of bounds"
        );
        let base = (y * self.width + x) * Self::CHANNELS;
        [
            self.pixels[base],
            self.pixels[base + 1],
            self.pixels[base + 2],
        ]
    }

    /// Sets the RGB value at `(y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set_pixel(&mut self, y: usize, x: usize, rgb: [u8; 3]) {
        assert!(
            y < self.height && x < self.width,
            "pixel ({y},{x}) out of bounds"
        );
        let base = (y * self.width + x) * Self::CHANNELS;
        self.pixels[base..base + 3].copy_from_slice(&rgb);
    }

    /// Converts to an HWC u8 tensor (consuming the image).
    #[must_use]
    pub fn into_tensor(self) -> Tensor {
        Tensor::from_u8(&[self.height, self.width, Self::CHANNELS], self.pixels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn filled_sets_every_pixel() {
        let img = Image::filled(2, 3, [1, 2, 3]);
        for y in 0..2 {
            for x in 0..3 {
                assert_eq!(img.pixel(y, x), [1, 2, 3]);
            }
        }
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut img = Image::filled(4, 4, [0, 0, 0]);
        img.set_pixel(3, 1, [9, 8, 7]);
        assert_eq!(img.pixel(3, 1), [9, 8, 7]);
        assert_eq!(img.pixel(3, 2), [0, 0, 0]);
    }

    #[test]
    fn synthetic_is_deterministic_per_seed() {
        let a = Image::synthetic(16, 16, &mut StdRng::seed_from_u64(7));
        let b = Image::synthetic(16, 16, &mut StdRng::seed_from_u64(7));
        let c = Image::synthetic(16, 16, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn synthetic_has_texture() {
        let img = Image::synthetic(32, 32, &mut StdRng::seed_from_u64(1));
        let distinct: std::collections::HashSet<u8> = img.pixels().iter().copied().collect();
        assert!(distinct.len() > 16, "synthetic image should not be flat");
    }

    #[test]
    fn into_tensor_preserves_shape() {
        let img = Image::filled(5, 7, [3, 3, 3]);
        let t = img.into_tensor();
        assert_eq!(t.shape(), &[5, 7, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_pixel_panics() {
        let img = Image::filled(2, 2, [0; 3]);
        let _ = img.pixel(2, 0);
    }
}
