//! Property-based tests for statistics, distributions and dataset models.

use lotus_data::dist::{LogNormal, Normal};
use lotus_data::stats::{fraction_above, fraction_below, percentile, Summary};
use lotus_data::{mix_seed, ImageDatasetModel, VolumeDatasetModel};
use proptest::prelude::*;
use rand::rngs::StdRng;

proptest! {
    #[test]
    fn summary_invariants(values in prop::collection::vec(-1e9f64..1e9, 1..200)) {
        let s = Summary::of(&values);
        prop_assert_eq!(s.count, values.len());
        prop_assert!(s.min <= s.p50 && s.p50 <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.p99 + 1e-9 && s.p99 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std >= 0.0);
        prop_assert!(s.iqr >= -1e-9);
    }

    #[test]
    fn percentiles_are_monotone(values in prop::collection::vec(-1e6f64..1e6, 1..100), p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&values, lo) <= percentile(&values, hi) + 1e-9);
    }

    #[test]
    fn fractions_partition_modulo_equals(values in prop::collection::vec(-100f64..100.0, 1..100), t in -100f64..100.0) {
        let below = fraction_below(&values, t);
        let above = fraction_above(&values, t);
        let equal = values.iter().filter(|&&v| v == t).count() as f64 / values.len() as f64;
        prop_assert!((below + above + equal - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lognormal_samples_are_positive_and_seeded(mean in 1.0f64..1e6, cv in 0.01f64..3.0, seed in 0u64..1000) {
        let d = LogNormal::from_mean_std(mean, mean * cv);
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| d.sample(&mut rng)).collect()
        };
        prop_assert_eq!(a.clone(), b);
        prop_assert!(a.iter().all(|&x| x > 0.0));
        prop_assert!((d.mean() - mean).abs() < 1e-6 * mean);
    }

    #[test]
    fn normal_is_symmetric_under_seed_pairs(mean in -1e3f64..1e3, std in 0.0f64..1e3, seed in 0u64..500) {
        let n = Normal::new(mean, std);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = n.sample(&mut rng);
        prop_assert!(x.is_finite());
        if std == 0.0 {
            prop_assert!((x - mean).abs() < 1e-9);
        }
    }

    /// Dataset records are pure functions of (seed, index) and always
    /// respect their configured bounds.
    #[test]
    fn image_records_are_stable_and_bounded(seed in 0u64..100, index in 0u64..1_000_000) {
        let d = ImageDatasetModel::imagenet(seed);
        let a = d.record(index);
        let b = d.record(index);
        prop_assert_eq!(a, b);
        prop_assert!(a.width >= 120 && a.width <= 4200);
        prop_assert!(a.height >= 120 && a.height <= 4200);
        prop_assert!(a.file_bytes >= 4096);
    }

    #[test]
    fn volume_records_are_stable_and_bounded(seed in 0u64..100, index in 0u64..210) {
        let d = VolumeDatasetModel::kits19(seed);
        let a = d.record(index);
        prop_assert_eq!(a, d.record(index));
        prop_assert!((24..=480).contains(&a.dims.0));
        prop_assert!((160..=352).contains(&a.dims.1));
        prop_assert_eq!(a.stored_bytes, a.voxels() * 5);
    }

    /// The seed mixer has no obvious collisions over small grids.
    #[test]
    fn mix_seed_is_injective_on_small_grids(base in 0u64..1000) {
        let mut seen = std::collections::HashSet::new();
        for i in 0..512u64 {
            prop_assert!(seen.insert(mix_seed(base, i)), "collision at index {i}");
        }
    }
}
