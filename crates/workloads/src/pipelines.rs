//! The three MLPerf-derived pipelines (§V-A of the paper) and the
//! experiment configurations that drive every table and figure.

use std::sync::Arc;

use lotus_data::{AudioDatasetModel, ImageDatasetModel, VolumeDatasetModel};
use lotus_dataflow::{
    DataLoaderConfig, GpuConfig, Sampler, SchedulingPolicyKind, Tracer, TrainingJob,
};
use lotus_sim::{Span, Storage, StorageConfig};
use lotus_transforms::{
    Cast, Compose, GaussianNoise, MelSpectrogram, Normalize, PadTrim, RandBalancedCrop,
    RandomBrightnessAugmentation, RandomFlip3d, RandomHorizontalFlip, RandomResizedCrop, Resample,
    Resize, SpecAugment, ToTensor,
};
use lotus_uarch::{HwProfiler, Machine};

use crate::datasets::{AudioClipDataset, ImageFolderDataset, VolumeDataset};
use crate::io::IoModel;

/// Which of the paper's three MLPerf training pipelines to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineKind {
    /// Image classification: ImageNet + ResNet18 (IC).
    ImageClassification,
    /// Image segmentation: KiTS19 + U-Net3D (IS).
    ImageSegmentation,
    /// Object detection: MS-COCO + Mask R-CNN (OD).
    ObjectDetection,
    /// Audio classification (AC) — the repository's extension pipeline
    /// for the preprocessing-bound workload class the paper's
    /// introduction cites (not part of the paper's evaluation).
    AudioClassification,
}

impl PipelineKind {
    /// The paper's abbreviation (IC/IS/OD).
    #[must_use]
    pub fn abbrev(self) -> &'static str {
        match self {
            PipelineKind::ImageClassification => "IC",
            PipelineKind::ImageSegmentation => "IS",
            PipelineKind::ObjectDetection => "OD",
            PipelineKind::AudioClassification => "AC",
        }
    }
}

/// One experiment run: pipeline + DataLoader/GPU knobs + scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Pipeline to run.
    pub pipeline: PipelineKind,
    /// Samples per batch.
    pub batch_size: usize,
    /// GPUs in the DataParallel group.
    pub num_gpus: usize,
    /// DataLoader worker processes.
    pub num_workers: usize,
    /// Truncate the dataset to this many items (None = full dataset).
    /// Scaled runs keep every distribution identical; only totals shrink.
    pub dataset_items: Option<u64>,
    /// Run seed.
    pub seed: u64,
    /// Simulated storage hierarchy the dataset reads from. `None` (the
    /// default everywhere) keeps the closed-form [`crate::IoModel`]
    /// costs of earlier PRs — no traced \[T0\] reads, byte-identical
    /// behavior. `Some` routes every `get_item` through a shared
    /// [`Storage`] instance instead.
    pub storage: Option<StorageConfig>,
    /// Visit dataset items in index order instead of the default seeded
    /// random permutation. Sequential access is what makes packed-record
    /// layouts fast: readahead turns neighbor fetches into page-cache
    /// hits, while shuffled access defeats it.
    pub sequential_access: bool,
    /// Dispatch discipline assigning index batches to loader workers.
    /// [`SchedulingPolicyKind::RoundRobin`] (the default) is PyTorch's
    /// strict `_worker_queue_idx_cycle` and leaves every fingerprint and
    /// trace byte-identical to earlier revisions.
    pub policy: SchedulingPolicyKind,
}

impl ExperimentConfig {
    /// The per-pipeline default configuration from §V-A: IC uses
    /// batch 128 / 1 GPU / 1 loader (Table II), IS batch 2 / 1 GPU /
    /// 8 loaders, OD batch 2 / 1 GPU / 4 loaders.
    #[must_use]
    pub fn paper_default(pipeline: PipelineKind) -> ExperimentConfig {
        let (batch_size, num_gpus, num_workers) = match pipeline {
            PipelineKind::ImageClassification => (128, 1, 1),
            PipelineKind::ImageSegmentation => (2, 1, 8),
            PipelineKind::ObjectDetection => (2, 1, 4),
            PipelineKind::AudioClassification => (64, 1, 4),
        };
        ExperimentConfig {
            pipeline,
            batch_size,
            num_gpus,
            num_workers,
            dataset_items: None,
            seed: 0x0107,
            storage: None,
            sequential_access: false,
            policy: SchedulingPolicyKind::RoundRobin,
        }
    }

    /// Returns a copy dispatching index batches with the given
    /// scheduling policy instead of strict round-robin.
    ///
    /// ```
    /// use lotus_dataflow::SchedulingPolicyKind;
    /// use lotus_workloads::{ExperimentConfig, PipelineKind};
    ///
    /// let ws = ExperimentConfig::paper_default(PipelineKind::ImageClassification)
    ///     .with_policy(SchedulingPolicyKind::WorkStealing);
    /// assert!(ws.fingerprint().ends_with(" policy=work-stealing"));
    /// ```
    #[must_use]
    pub fn with_policy(mut self, policy: SchedulingPolicyKind) -> ExperimentConfig {
        self.policy = policy;
        self
    }

    /// Returns a copy truncated to `items` dataset items.
    #[must_use]
    pub fn scaled_to(mut self, items: u64) -> ExperimentConfig {
        self.dataset_items = Some(items);
        self
    }

    /// Returns a copy that reads through the given simulated storage
    /// hierarchy (traced \[T0\] reads instead of closed-form I/O waits).
    ///
    /// ```
    /// use lotus_sim::StorageConfig;
    /// use lotus_workloads::{ExperimentConfig, PipelineKind};
    ///
    /// let cold = ExperimentConfig::paper_default(PipelineKind::ImageClassification)
    ///     .with_storage(StorageConfig::remote_object_store());
    /// assert!(cold.storage.is_some());
    /// assert!(cold.fingerprint().contains("storage["));
    /// ```
    #[must_use]
    pub fn with_storage(mut self, storage: StorageConfig) -> ExperimentConfig {
        self.storage = Some(storage);
        self
    }

    /// Returns a copy whose sampler visits items in index order instead
    /// of a seeded shuffle — the access pattern that lets packed-record
    /// layouts benefit from readahead.
    ///
    /// ```
    /// use lotus_workloads::{ExperimentConfig, PipelineKind};
    ///
    /// let seq = ExperimentConfig::paper_default(PipelineKind::ImageClassification)
    ///     .sequential();
    /// assert!(seq.sequential_access);
    /// assert!(seq.fingerprint().ends_with(" seq"));
    /// ```
    #[must_use]
    pub fn sequential(mut self) -> ExperimentConfig {
        self.sequential_access = true;
        self
    }

    /// The natural storage hierarchy for this pipeline's dataset: IC, OD
    /// and AC read training sets from a remote object store (tiny files,
    /// cold caches); IS keeps its preprocessed KiTS19 volumes on local
    /// NVMe. This is what the CLI's `--storage cold|warm` presets build
    /// on.
    #[must_use]
    pub fn default_storage(&self) -> StorageConfig {
        match self.pipeline {
            PipelineKind::ImageSegmentation => StorageConfig::local_nvme(),
            _ => StorageConfig::remote_object_store(),
        }
    }

    /// A stable one-line fingerprint of everything that determines this
    /// experiment's simulated behavior, for content-addressed cache
    /// keys: pipeline, batch size, GPU and worker counts, dataset
    /// truncation, and seed.
    ///
    /// ```
    /// use lotus_workloads::{ExperimentConfig, PipelineKind};
    ///
    /// let experiment = ExperimentConfig::paper_default(PipelineKind::ImageClassification)
    ///     .scaled_to(4096);
    /// assert_eq!(experiment.fingerprint(), "IC bs128 gpus1 workers1 items4096 seed=0x107");
    /// ```
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let items = match self.dataset_items {
            Some(n) => format!("items{n}"),
            None => "items-full".to_string(),
        };
        let mut fp = format!(
            "{} bs{} gpus{} workers{} {} seed={:#x}",
            self.pipeline.abbrev(),
            self.batch_size,
            self.num_gpus,
            self.num_workers,
            items,
            self.seed
        );
        if let Some(storage) = &self.storage {
            fp.push(' ');
            fp.push_str(&storage.fingerprint_token());
        }
        if self.sequential_access {
            fp.push_str(" seq");
        }
        // Only a non-default policy stamps the fingerprint, so every
        // round-robin cache key stays byte-identical to prior revisions.
        if self.policy != SchedulingPolicyKind::RoundRobin {
            fp.push_str(&format!(" policy={}", self.policy.as_str()));
        }
        fp
    }

    /// The DataLoader configuration [`build`](Self::build) uses: this
    /// experiment's batch size and worker count with PyTorch-shaped
    /// defaults for the rest (prefetch 2, unbounded data queue, pinned
    /// memory, seeded random sampling). `lotus tune` overlays its trial
    /// knobs on this.
    #[must_use]
    pub fn loader_defaults(&self) -> DataLoaderConfig {
        DataLoaderConfig {
            batch_size: self.batch_size,
            num_workers: self.num_workers,
            prefetch_factor: 2,
            data_queue_cap: None,
            pin_memory: true,
            sampler: if self.sequential_access {
                Sampler::Sequential
            } else {
                Sampler::Random { seed: self.seed }
            },
            drop_last: true,
            policy: self.policy,
        }
    }

    /// Builds the training job for this configuration with the default
    /// loader knobs ([`loader_defaults`](Self::loader_defaults)) and no
    /// fault injection.
    #[must_use]
    pub fn build(
        &self,
        machine: &Arc<Machine>,
        tracer: Arc<dyn Tracer>,
        hw_profiler: Option<Arc<HwProfiler>>,
    ) -> TrainingJob {
        self.build_with(
            machine,
            tracer,
            hw_profiler,
            self.loader_defaults(),
            lotus_dataflow::FaultPlan::default(),
        )
    }

    /// Builds the training job with an explicit DataLoader configuration
    /// and fault plan — the entry point for `lotus tune` trials, which
    /// vary the loader knobs while everything else (dataset, transforms,
    /// GPU model, seed) stays fixed.
    #[must_use]
    pub fn build_with(
        &self,
        machine: &Arc<Machine>,
        tracer: Arc<dyn Tracer>,
        hw_profiler: Option<Arc<HwProfiler>>,
        loader: DataLoaderConfig,
        faults: lotus_dataflow::FaultPlan,
    ) -> TrainingJob {
        self.build_job(machine, tracer, hw_profiler, loader, faults, false)
    }

    /// Like [`build_with`](Self::build_with), but the image pipelines
    /// (IC, OD) materialize real pixels — synthesize, JPEG-encode, and
    /// decode actual image content — so the codec and transform kernels
    /// do real work. This is what the native execution backend profiles;
    /// IS and AC remain cost-only (their volume/audio loaders model cost
    /// without materializing content).
    #[must_use]
    pub fn build_materialized_with(
        &self,
        machine: &Arc<Machine>,
        tracer: Arc<dyn Tracer>,
        hw_profiler: Option<Arc<HwProfiler>>,
        loader: DataLoaderConfig,
        faults: lotus_dataflow::FaultPlan,
    ) -> TrainingJob {
        self.build_job(machine, tracer, hw_profiler, loader, faults, true)
    }

    fn build_job(
        &self,
        machine: &Arc<Machine>,
        tracer: Arc<dyn Tracer>,
        hw_profiler: Option<Arc<HwProfiler>>,
        loader: DataLoaderConfig,
        faults: lotus_dataflow::FaultPlan,
        materialize: bool,
    ) -> TrainingJob {
        let storage = self.storage.map(|cfg| Arc::new(Storage::new(cfg)));
        let (dataset, gpu): (Arc<dyn lotus_dataflow::Dataset>, GpuConfig) = match self.pipeline {
            PipelineKind::ImageClassification => {
                let mut model = ImageDatasetModel::imagenet(self.seed);
                if let Some(items) = self.dataset_items {
                    model = model.truncated(items);
                }
                let mut dataset = ImageFolderDataset::new(
                    machine,
                    model,
                    IoModel::cloudlab_iscsi(),
                    ic_transforms(machine),
                );
                if materialize {
                    dataset = dataset.materialized();
                }
                if let Some(storage) = &storage {
                    dataset = dataset.with_storage(Arc::clone(storage));
                }
                (
                    Arc::new(dataset),
                    GpuConfig::v100(self.num_gpus, gpu_step::RESNET18_PER_SAMPLE),
                )
            }
            PipelineKind::ImageSegmentation => {
                let items = self.dataset_items.unwrap_or(210);
                let mut dataset = VolumeDataset::new(
                    machine,
                    VolumeDatasetModel::kits19(self.seed),
                    IoModel::local_nvme(),
                    is_transforms(machine),
                    items,
                );
                if let Some(storage) = &storage {
                    dataset = dataset.with_storage(Arc::clone(storage));
                }
                (
                    Arc::new(dataset),
                    GpuConfig::v100(self.num_gpus, gpu_step::UNET3D_PER_SAMPLE),
                )
            }
            PipelineKind::ObjectDetection => {
                let mut model = ImageDatasetModel::coco(self.seed);
                if let Some(items) = self.dataset_items {
                    model = model.truncated(items);
                }
                let mut dataset = ImageFolderDataset::new(
                    machine,
                    model,
                    IoModel::cloudlab_iscsi(),
                    od_transforms(machine),
                );
                if materialize {
                    dataset = dataset.materialized();
                }
                if let Some(storage) = &storage {
                    dataset = dataset.with_storage(Arc::clone(storage));
                }
                (
                    Arc::new(dataset),
                    GpuConfig::v100(self.num_gpus, gpu_step::MASKRCNN_PER_SAMPLE),
                )
            }
            PipelineKind::AudioClassification => {
                let mut model = AudioDatasetModel::audioset(self.seed);
                if let Some(items) = self.dataset_items {
                    model = model.truncated(items);
                }
                let mut dataset = AudioClipDataset::new(
                    machine,
                    model,
                    IoModel::cloudlab_iscsi(),
                    ac_transforms(machine),
                );
                if let Some(storage) = &storage {
                    dataset = dataset.with_storage(Arc::clone(storage));
                }
                (
                    Arc::new(dataset),
                    GpuConfig::v100(self.num_gpus, gpu_step::AUDIO_CNN_PER_SAMPLE),
                )
            }
        };
        TrainingJob {
            machine: Arc::clone(machine),
            dataset,
            storage,
            loader,
            gpu,
            tracer,
            hw_profiler,
            seed: self.seed,
            epochs: 1,
            faults,
            controller: None,
            mutation: lotus_dataflow::LoaderMutation::None,
        }
    }
}

/// Per-sample forward+backward GPU step times on a V100, calibrated so
/// that IC is preprocessing-bound while IS and OD are GPU-bound with the
/// paper's step times (IS ≈ 750 ms and OD ≈ 250 ms per batch of 2).
pub mod gpu_step {
    use lotus_sim::Span;

    /// ResNet18 (≈700 images/s/GPU).
    pub const RESNET18_PER_SAMPLE: Span = Span::from_micros(1_400);
    /// U-Net3D on 128³ patches.
    pub const UNET3D_PER_SAMPLE: Span = Span::from_micros(372_000);
    /// Mask R-CNN with a ResNet-50 backbone.
    pub const MASKRCNN_PER_SAMPLE: Span = Span::from_micros(122_000);
    /// A VGGish-style audio CNN over mel spectrograms (extension).
    pub const AUDIO_CNN_PER_SAMPLE: Span = Span::from_micros(1_200);
}

/// The IC transform chain from Listing 1: RandomResizedCrop(224),
/// RandomHorizontalFlip, ToTensor, Normalize.
#[must_use]
pub fn ic_transforms(machine: &Machine) -> Compose {
    Compose::new(
        machine,
        vec![
            Box::new(RandomResizedCrop::new(machine, 224)),
            Box::new(RandomHorizontalFlip::new(machine, 0.5)),
            Box::new(ToTensor::new(machine)),
            Box::new(Normalize::imagenet(machine)),
        ],
    )
}

/// The IS transform chain: RandBalancedCrop(128³, 0.4), RandomFlip,
/// Cast, RandomBrightnessAugmentation(0.1), GaussianNoise(0.1).
#[must_use]
pub fn is_transforms(machine: &Machine) -> Compose {
    Compose::new(
        machine,
        vec![
            Box::new(RandBalancedCrop::new(machine, (128, 128, 128), 0.4)),
            Box::new(RandomFlip3d::new(machine, 1.0 / 3.0)),
            Box::new(Cast::new(machine)),
            Box::new(RandomBrightnessAugmentation::new(machine, 0.1)),
            Box::new(GaussianNoise::new(machine, 0.1, 0.1)),
        ],
    )
}

/// The OD transform chain: Resize (Mask R-CNN's 800-pixel short side),
/// RandomHorizontalFlip, ToTensor, Normalize.
#[must_use]
pub fn od_transforms(machine: &Machine) -> Compose {
    Compose::new(
        machine,
        vec![
            Box::new(Resize::new(machine, 800, 1066)),
            Box::new(RandomHorizontalFlip::new(machine, 0.5)),
            Box::new(ToTensor::new(machine)),
            Box::new(Normalize::imagenet(machine)),
        ],
    )
}

/// The AC (extension) transform chain: Resample 22.05 kHz → 16 kHz,
/// PadTrim to 4 s, MelSpectrogram (1024/512, 64 mels), SpecAugment.
#[must_use]
pub fn ac_transforms(machine: &Machine) -> Compose {
    Compose::new(
        machine,
        vec![
            Box::new(Resample::new(machine, 22_050, 16_000)),
            Box::new(PadTrim::new(machine, 64_000)),
            Box::new(MelSpectrogram::new(machine, 16_000, 1024, 512, 64)),
            Box::new(SpecAugment::new(machine, 16, 8)),
        ],
    )
}

/// Check that the GPU step-time calibration reproduces the paper's
/// measured per-batch step times (IS 750 ms, OD 250 ms at batch 2).
#[must_use]
pub fn paper_step_times_hold() -> bool {
    let is = GpuConfig::v100(1, gpu_step::UNET3D_PER_SAMPLE).step_span(2);
    let od = GpuConfig::v100(1, gpu_step::MASKRCNN_PER_SAMPLE).step_span(2);
    let near = |a: Span, target_ms: f64| (a.as_millis_f64() - target_ms).abs() / target_ms < 0.05;
    near(is, 750.0) && near(od, 250.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_uarch::MachineConfig;

    #[test]
    fn paper_defaults_match_section_v_a() {
        let ic = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
        assert_eq!((ic.batch_size, ic.num_gpus, ic.num_workers), (128, 1, 1));
        let is = ExperimentConfig::paper_default(PipelineKind::ImageSegmentation);
        assert_eq!((is.batch_size, is.num_gpus, is.num_workers), (2, 1, 8));
        let od = ExperimentConfig::paper_default(PipelineKind::ObjectDetection);
        assert_eq!((od.batch_size, od.num_gpus, od.num_workers), (2, 1, 4));
    }

    #[test]
    fn gpu_step_calibration_matches_paper() {
        assert!(paper_step_times_hold());
    }

    #[test]
    fn build_produces_runnable_jobs_for_all_pipelines() {
        for kind in [
            PipelineKind::ImageClassification,
            PipelineKind::ImageSegmentation,
            PipelineKind::ObjectDetection,
            PipelineKind::AudioClassification,
        ] {
            let machine = Machine::new(MachineConfig::cloudlab_c4130());
            let base = ExperimentConfig::paper_default(kind);
            let config = base.scaled_to(base.batch_size as u64 * 2);
            let job = config.build(&machine, Arc::new(lotus_dataflow::NullTracer), None);
            let report = job.run().unwrap();
            assert_eq!(report.batches, 2, "{kind:?} must consume both batches");
        }
    }

    #[test]
    fn abbreviations_match_paper() {
        assert_eq!(PipelineKind::ImageClassification.abbrev(), "IC");
        assert_eq!(PipelineKind::ImageSegmentation.abbrev(), "IS");
        assert_eq!(PipelineKind::ObjectDetection.abbrev(), "OD");
    }
}
