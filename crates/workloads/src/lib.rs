//! # lotus-workloads — the paper's three MLPerf pipelines
//!
//! Builds the Image Classification (ImageNet + ResNet18), Image
//! Segmentation (KiTS19 + U-Net3D) and Object Detection (MS-COCO +
//! Mask R-CNN) preprocessing pipelines of §V-A over the simulated
//! substrates, with the storage, GPU and dataset models calibrated to the
//! paper's measurements.
//!
//! ```
//! use std::sync::Arc;
//! use lotus_dataflow::NullTracer;
//! use lotus_uarch::{Machine, MachineConfig};
//! use lotus_workloads::{ExperimentConfig, PipelineKind};
//!
//! let machine = Machine::new(MachineConfig::cloudlab_c4130());
//! let config = ExperimentConfig::paper_default(PipelineKind::ImageClassification)
//!     .scaled_to(256);
//! let report = config.build(&machine, Arc::new(NullTracer), None).run()?;
//! assert_eq!(report.samples, 256);
//! # Ok::<(), lotus_dataflow::JobError>(())
//! ```

#![warn(missing_docs)]
// The whole workspace is safe Rust; determinism and auditability both
// lean on it. Gate any future exception through a crate-level decision.
#![deny(unsafe_code)]

pub mod calibration;

mod datasets;
mod io;
mod mapping;
mod pipelines;

pub use datasets::{AudioClipDataset, ImageFolderDataset, MonotonicObserver, VolumeDataset};
pub use io::IoModel;
pub use mapping::{
    build_ic_mapping, build_ic_mapping_for_batch, build_ic_mapping_native, NATIVE_MAPPING_BATCH,
};
pub use pipelines::{
    ac_transforms, gpu_step, ic_transforms, is_transforms, od_transforms, paper_step_times_hold,
    ExperimentConfig, PipelineKind,
};
