//! The paper's published measurements, as structured constants — the
//! calibration targets the workload models aim at, and the tolerance
//! machinery the experiment tests use.
//!
//! Model constants themselves live next to the code they parameterize
//! (kernel cost coefficients in `lotus-codec`/`lotus-transforms`, storage
//! in [`crate::IoModel`], GPU steps in [`crate::gpu_step`]); this module
//! records *what they were tuned toward* so drift is caught by tests
//! rather than archaeology.

use std::sync::Arc;

use lotus_core::exec::run_jobs;
use lotus_core::trace::analysis::OpStats;
use lotus_core::trace::{LotusTrace, LotusTraceConfig, OpLogMode};
use lotus_sim::Span;
use lotus_uarch::{Machine, MachineConfig};

use crate::{ExperimentConfig, PipelineKind};

/// One Table II target row: per-image elapsed-time statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpTarget {
    /// Operation name as logged by LotusTrace.
    pub op: &'static str,
    /// Paper's average elapsed time, ms.
    pub avg_ms: f64,
    /// Paper's 90th percentile, ms.
    pub p90_ms: f64,
    /// Paper's fraction of executions under 10 ms (0–1).
    pub below_10ms: f64,
    /// Paper's fraction of executions under 100 µs (0–1).
    pub below_100us: f64,
}

/// Table II, IC block (batch 128, 1 GPU, 1 dataloader).
pub const PAPER_TABLE2_IC: [OpTarget; 6] = [
    OpTarget {
        op: "Loader",
        avg_ms: 4.76,
        p90_ms: 6.02,
        below_10ms: 0.9779,
        below_100us: 0.0,
    },
    OpTarget {
        op: "RandomResizedCrop",
        avg_ms: 1.11,
        p90_ms: 1.39,
        below_10ms: 0.9982,
        below_100us: 0.0,
    },
    OpTarget {
        op: "RandomHorizontalFlip",
        avg_ms: 0.06,
        p90_ms: 0.08,
        below_10ms: 1.0,
        below_100us: 0.983,
    },
    OpTarget {
        op: "ToTensor",
        avg_ms: 0.34,
        p90_ms: 0.39,
        below_10ms: 1.0,
        below_100us: 0.0,
    },
    OpTarget {
        op: "Normalize",
        avg_ms: 0.21,
        p90_ms: 0.23,
        below_10ms: 1.0,
        below_100us: 0.0,
    },
    OpTarget {
        op: "C(128)",
        avg_ms: 49.76,
        p90_ms: 52.49,
        below_10ms: 0.0,
        below_100us: 0.0,
    },
];

/// Table II, IS block (batch 2, 8 dataloaders).
pub const PAPER_TABLE2_IS: [OpTarget; 7] = [
    OpTarget {
        op: "Loader",
        avg_ms: 72.03,
        p90_ms: 130.94,
        below_10ms: 0.0,
        below_100us: 0.0,
    },
    OpTarget {
        op: "RandBalancedCrop",
        avg_ms: 91.10,
        p90_ms: 298.62,
        below_10ms: 0.6369,
        below_100us: 0.613,
    },
    OpTarget {
        op: "RandomFlip",
        avg_ms: 4.39,
        p90_ms: 8.84,
        below_10ms: 0.9523,
        below_100us: 0.2857,
    },
    OpTarget {
        op: "Cast",
        avg_ms: 2.16,
        p90_ms: 4.32,
        below_10ms: 0.9821,
        below_100us: 0.0,
    },
    OpTarget {
        op: "RandomBrightnessAugmentation",
        avg_ms: 0.78,
        p90_ms: 4.66,
        below_10ms: 0.988,
        below_100us: 0.8869,
    },
    OpTarget {
        op: "GaussianNoise",
        avg_ms: 6.46,
        p90_ms: 54.54,
        below_10ms: 0.8869,
        below_100us: 0.8869,
    },
    OpTarget {
        op: "C(2)",
        avg_ms: 14.24,
        p90_ms: 15.81,
        below_10ms: 0.0,
        below_100us: 0.0,
    },
];

/// Table II, OD block (batch 2, 4 dataloaders).
pub const PAPER_TABLE2_OD: [OpTarget; 6] = [
    OpTarget {
        op: "Loader",
        avg_ms: 9.59,
        p90_ms: 15.57,
        below_10ms: 0.5846,
        below_100us: 0.0,
    },
    OpTarget {
        op: "Resize",
        avg_ms: 9.43,
        p90_ms: 11.56,
        below_10ms: 0.7654,
        below_100us: 0.0,
    },
    OpTarget {
        op: "RandomHorizontalFlip",
        avg_ms: 0.52,
        p90_ms: 1.13,
        below_10ms: 1.0,
        below_100us: 0.4996,
    },
    OpTarget {
        op: "ToTensor",
        avg_ms: 6.75,
        p90_ms: 12.86,
        below_10ms: 0.8768,
        below_100us: 0.0,
    },
    OpTarget {
        op: "Normalize",
        avg_ms: 7.8,
        p90_ms: 12.6,
        below_10ms: 0.7996,
        below_100us: 0.0,
    },
    OpTarget {
        op: "C(2)",
        avg_ms: 7.39,
        p90_ms: 10.44,
        below_10ms: 0.8713,
        below_100us: 0.0,
    },
];

/// Other headline measurements the models are calibrated against.
pub mod headline {
    /// ImageNet mean file size, bytes (§V-C).
    pub const IMAGENET_MEAN_FILE_BYTES: f64 = 111_000.0;
    /// ImageNet file-size standard deviation, bytes (§V-C).
    pub const IMAGENET_STD_FILE_BYTES: f64 = 133_000.0;
    /// IS per-batch GPU step, ms (§V-B).
    pub const IS_GPU_STEP_MS: f64 = 750.0;
    /// OD per-batch GPU step, ms (§V-B).
    pub const OD_GPU_STEP_MS: f64 = 250.0;
    /// IS mean batch delay, seconds (§V-B).
    pub const IS_MEAN_DELAY_S: f64 = 10.9;
    /// OD mean batch delay, seconds (§V-B).
    pub const OD_MEAN_DELAY_S: f64 = 1.64;
    /// Fig 4 coefficient-of-variation band, fractions (§V-C1).
    pub const FIG4_CV_RANGE: (f64, f64) = (0.0548, 0.1073);
    /// Fig 6 total-CPU growth, 8 → 28 workers (§V-D).
    pub const FIG6_CPU_GROWTH: f64 = 14_423.64 / 9_402.62;
    /// §V-D's mis-bucketing hypothetical: RRC CPU inflation when
    /// `decode_mcu` lands in its bucket.
    pub const DECODE_MISBUCKET_INFLATION: f64 = 0.3021;
    /// Table III wall-time overheads (fractions) on ImageNet-small.
    pub const OVERHEAD_LOTUS: f64 = 0.02;
    /// Scalene's overhead fraction.
    pub const OVERHEAD_SCALENE: f64 = 0.961;
    /// py-spy's overhead fraction.
    pub const OVERHEAD_PYSPY: f64 = 0.08;
    /// austin's overhead fraction.
    pub const OVERHEAD_AUSTIN: f64 = 0.032;
    /// The PyTorch profiler's overhead fraction.
    pub const OVERHEAD_TORCH: f64 = 0.864;
    /// austin's log size on ImageNet-small, bytes.
    pub const AUSTIN_LOG_BYTES: f64 = 6.8e9;
}

/// True if `measured` is within `rel_tol` (relative) of `target`, with an
/// `abs_tol` floor for near-zero targets.
#[must_use]
pub fn within(measured: f64, target: f64, rel_tol: f64, abs_tol: f64) -> bool {
    (measured - target).abs() <= (target.abs() * rel_tol).max(abs_tol)
}

/// Finds the target row for `op` in a Table II block.
#[must_use]
pub fn target_for<'t>(block: &'t [OpTarget], op: &str) -> Option<&'t OpTarget> {
    block.iter().find(|t| t.op == op)
}

/// One pipeline's measured calibration block: the per-op statistics a
/// paper-default run on the paper's Intel testbed produces, plus the run
/// totals — what the Table II targets above are compared against.
#[derive(Debug, Clone)]
pub struct MeasuredBlock {
    /// Pipeline measured.
    pub pipeline: PipelineKind,
    /// Batches the run consumed.
    pub batches: u64,
    /// End-to-end elapsed virtual time.
    pub elapsed: Span,
    /// Per-op elapsed statistics, in pipeline order.
    pub ops: Vec<OpStats>,
}

/// Runs one paper-default pipeline truncated to `items` under an
/// aggregate-mode LotusTrace and returns its calibration block. This is
/// the measurement the calibration tests and the `calibrate` example
/// share; it is a pure function of `(kind, items)`.
///
/// # Panics
///
/// Panics if the simulated run fails (paper-default configurations
/// always complete).
#[must_use]
pub fn measure_op_block(kind: PipelineKind, items: u64) -> MeasuredBlock {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
        op_mode: OpLogMode::Aggregate,
        ..LotusTraceConfig::default()
    }));
    let report = ExperimentConfig::paper_default(kind)
        .scaled_to(items)
        .build(&machine, Arc::clone(&trace) as _, None)
        .run()
        .expect("calibration run must complete");
    MeasuredBlock {
        pipeline: kind,
        batches: report.batches,
        elapsed: report.elapsed,
        ops: trace.op_stats(),
    }
}

/// Measures several calibration blocks, fanning the independent runs
/// over `jobs` threads ([`run_jobs`] joins in submission order, so the
/// result is identical for any job count).
///
/// # Panics
///
/// Panics if any simulated run fails.
#[must_use]
pub fn measure_op_blocks(specs: &[(PipelineKind, u64)], jobs: usize) -> Vec<MeasuredBlock> {
    run_jobs(
        jobs,
        specs
            .iter()
            .map(|&(kind, items)| move || measure_op_block(kind, items))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_handles_relative_and_absolute_floors() {
        assert!(within(10.5, 10.0, 0.10, 0.0));
        assert!(!within(11.5, 10.0, 0.10, 0.0));
        assert!(within(0.02, 0.0, 0.10, 0.05), "abs floor applies near zero");
    }

    /// Fanning the calibration blocks over worker threads must not
    /// change a single measured number or their order.
    #[test]
    fn parallel_block_measurement_matches_serial() {
        let specs = [
            (crate::PipelineKind::ImageClassification, 512),
            (crate::PipelineKind::ObjectDetection, 128),
        ];
        let serial = measure_op_blocks(&specs, 1);
        let parallel = measure_op_blocks(&specs, 4);
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }

    #[test]
    fn target_lookup_finds_rows() {
        assert!(target_for(&PAPER_TABLE2_IC, "Loader").is_some());
        assert!(target_for(&PAPER_TABLE2_IC, "Nope").is_none());
    }

    /// The end-to-end calibration gate: every IC op's measured average is
    /// within 2.2× of the paper's value (most are within 15 %); the
    /// per-op *ordering* matches exactly.
    #[test]
    fn ic_calibration_tracks_the_paper() {
        let block = measure_op_block(crate::PipelineKind::ImageClassification, 4_096);
        assert!(block.batches > 0 && block.elapsed.as_nanos() > 0);
        let measured = block.ops;
        for target in &PAPER_TABLE2_IC {
            let m = measured
                .iter()
                .find(|o| o.name == target.op)
                .unwrap_or_else(|| panic!("{} missing from trace", target.op));
            let ratio = m.summary.mean / target.avg_ms;
            assert!(
                (1.0 / 2.2..2.2).contains(&ratio),
                "{}: measured {:.2} ms vs paper {:.2} ms",
                target.op,
                m.summary.mean,
                target.avg_ms
            );
        }
        // Ordering by cost matches the paper's ordering.
        let order_of = |ops: Vec<(&str, f64)>| {
            let mut v = ops;
            v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            v.into_iter()
                .map(|(n, _)| n.to_string())
                .collect::<Vec<_>>()
        };
        let paper_order = order_of(PAPER_TABLE2_IC.iter().map(|t| (t.op, t.avg_ms)).collect());
        let measured_order = order_of(
            measured
                .iter()
                .map(|o| {
                    let name: &str = PAPER_TABLE2_IC
                        .iter()
                        .find(|t| t.op == o.name)
                        .map_or("", |t| t.op);
                    (name, o.summary.mean)
                })
                .filter(|(n, _)| !n.is_empty())
                .collect(),
        );
        assert_eq!(
            paper_order, measured_order,
            "per-op cost ordering must match"
        );
    }
}
