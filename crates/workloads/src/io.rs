//! Storage I/O model for dataset reads.

use lotus_sim::Span;
use rand::Rng;

/// A latency + bandwidth model of dataset storage, with a heavy tail.
///
/// The paper's testbed mounts the dataset from a remote node as a ZFS zvol
/// exported over iSCSI; reads therefore pay network latency, share a
/// modest effective bandwidth, and occasionally stall for tens to hundreds
/// of milliseconds (queueing on the shared export, page-cache misses).
/// Those rare stragglers are what makes per-batch preprocessing time
/// spread grow so strongly with batch size in the paper's Figure 4: the
/// probability that *some* image in a batch straggles approaches 1 as the
/// batch grows. Reads are off-CPU time: they advance the reading worker's
/// clock without occupying a core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoModel {
    /// Fixed per-read latency (request round trip, metadata).
    pub latency: Span,
    /// Effective sequential read bandwidth in bytes/second.
    pub bytes_per_sec: f64,
    /// Probability that a read straggles.
    pub straggler_prob: f64,
    /// Extra stall of a straggling read, uniform in `[min, max]`.
    pub straggler_stall: (Span, Span),
}

impl IoModel {
    /// The remote iSCSI zvol of the paper's CloudLab setup (small-file
    /// effective throughput, including page-cache misses).
    #[must_use]
    pub fn cloudlab_iscsi() -> IoModel {
        IoModel {
            latency: Span::from_micros(150),
            bytes_per_sec: 120.0e6,
            straggler_prob: 0.0025,
            straggler_stall: (Span::from_millis(30), Span::from_millis(260)),
        }
    }

    /// A fast local NVMe (used by the IS pipeline, whose preprocessed
    /// numpy volumes live on local disk in the reference setup).
    #[must_use]
    pub fn local_nvme() -> IoModel {
        IoModel {
            latency: Span::from_micros(60),
            bytes_per_sec: 1.6e9,
            straggler_prob: 0.002,
            straggler_stall: (Span::from_millis(5), Span::from_millis(60)),
        }
    }

    /// Deterministic (tail-free) wall time to read `bytes`.
    #[must_use]
    pub fn read_span(&self, bytes: u64) -> Span {
        self.latency + Span::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Wall time to read `bytes`, including the straggler tail.
    pub fn read_span_with(&self, bytes: u64, rng: &mut impl Rng) -> Span {
        let mut span = self.read_span(bytes);
        if self.straggler_prob > 0.0 && rng.gen_bool(self.straggler_prob) {
            let (lo, hi) = self.straggler_stall;
            span += Span::from_nanos(
                rng.gen_range(lo.as_nanos()..=hi.as_nanos().max(lo.as_nanos() + 1)),
            );
        }
        span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn read_span_is_latency_plus_transfer() {
        let io = IoModel {
            latency: Span::from_micros(100),
            bytes_per_sec: 1e9,
            straggler_prob: 0.0,
            straggler_stall: (Span::ZERO, Span::ZERO),
        };
        assert_eq!(io.read_span(0), Span::from_micros(100));
        assert_eq!(io.read_span(1_000_000), Span::from_micros(1_100));
    }

    #[test]
    fn iscsi_is_much_slower_than_nvme() {
        let remote = IoModel::cloudlab_iscsi().read_span(111_000);
        let local = IoModel::local_nvme().read_span(111_000);
        assert!(remote > local * 5);
    }

    #[test]
    fn stragglers_are_rare_but_large() {
        let io = IoModel::cloudlab_iscsi();
        let mut rng = StdRng::seed_from_u64(1);
        let base = io.read_span(111_000);
        let reads: Vec<Span> = (0..20_000)
            .map(|_| io.read_span_with(111_000, &mut rng))
            .collect();
        let stragglers = reads
            .iter()
            .filter(|&&r| r > base + Span::from_millis(10))
            .count();
        let rate = stragglers as f64 / reads.len() as f64;
        assert!((0.002..0.007).contains(&rate), "straggler rate {rate}");
        let worst = reads.iter().max().unwrap();
        assert!(
            *worst > base + Span::from_millis(100),
            "tail too light: {worst}"
        );
    }

    #[test]
    fn zero_probability_disables_the_tail() {
        let mut io = IoModel::cloudlab_iscsi();
        io.straggler_prob = 0.0;
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(io.read_span_with(111_000, &mut rng), io.read_span(111_000));
        }
    }
}
