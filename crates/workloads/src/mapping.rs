//! Building the LotusMap operation→function mapping for the IC pipeline
//! (the preparatory step of §IV-B, done once per machine), on both the
//! simulated profiler and the native kernel-span feed.

use std::collections::BTreeMap;
use std::sync::Arc;

use lotus_codec::Codec;
use lotus_core::map::{IsolationConfig, MappedFunction, Mapping, OpIsolator, OpMapping};
use lotus_data::{DType, Image, ImageDatasetModel};
use lotus_transforms::{
    python_interp_kernel, Collate, Compose, Normalize, NullObserver, RandomHorizontalFlip,
    RandomResizedCrop, Sample, ToTensor, Transform, TransformCtx,
};
use lotus_uarch::{CpuThread, KernelSpanFeed, Machine};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the Python-op → native-function mapping for the whole IC
/// pipeline by isolating each operation under the hardware profiler
/// (Listing 4 of the paper), with each op preceded by its real
/// predecessor so attribution skid is exercised.
///
/// The returned mapping is noise-filtered (functions captured in fewer
/// than 2 runs with fewer than 3 samples are dropped).
/// Like [`build_ic_mapping_for_batch`] with the Table II batch size (128).
#[must_use]
pub fn build_ic_mapping(machine: &Arc<Machine>, config: IsolationConfig) -> Mapping {
    build_ic_mapping_for_batch(machine, config, 128)
}

/// Builds the IC mapping with the collation op named for `batch_size`
/// (`C(1024)` for the Figure 6 configuration).
#[must_use]
pub fn build_ic_mapping_for_batch(
    machine: &Arc<Machine>,
    config: IsolationConfig,
    batch_size: usize,
) -> Mapping {
    let codec = Codec::new(machine);
    let rrc = RandomResizedCrop::new(machine, 224);
    let rhf = RandomHorizontalFlip::new(machine, 0.5);
    let tt = ToTensor::new(machine);
    let norm = Normalize::imagenet(machine);
    let collate = Collate::new(machine);
    let python = python_interp_kernel(machine);

    // An enlarged input, as in the paper's Listing 4 (which raises
    // `Image.MAX_IMAGE_PIXELS` to decode a huge image): every decode and
    // resample kernel then spans several sampling intervals, so the
    // mapping converges in few runs.
    let mut record = ImageDatasetModel::imagenet(7).record(0);
    record.width = 3_600;
    record.height = 3_600;
    record.file_bytes = (record.pixels() as f64 * 0.55) as u64;
    let (h, w) = (record.height as usize, record.width as usize);

    let loader = move |cpu: &mut CpuThread, _rng: &mut StdRng| {
        cpu.exec(python, 0.0);
        codec.charge_decode(record.width, record.height, record.file_bytes, cpu);
    };
    fn apply<'t>(
        t: &'t dyn Transform,
        input: Sample,
        python: lotus_uarch::KernelId,
    ) -> impl FnMut(&mut CpuThread, &mut StdRng) + 't {
        move |cpu: &mut CpuThread, rng: &mut StdRng| {
            cpu.exec(python, 0.0);
            let mut ctx = TransformCtx { cpu, rng };
            let _ = t.apply(input.clone(), &mut ctx);
        }
    }

    let isolator = OpIsolator::new(Arc::clone(machine), config);
    let mut mapping = Mapping::new();

    // Loader runs first in the pipeline (no preamble).
    mapping.insert(isolator.isolate("Loader", loader, None::<fn(&mut CpuThread, &mut StdRng)>));
    // Each subsequent op is isolated with its real predecessor as the
    // preamble, matching the pipeline's back-to-back execution.
    mapping.insert(isolator.isolate(
        "RandomResizedCrop",
        apply(&rrc, Sample::image_meta(h, w), python),
        Some(loader),
    ));
    let square = Sample::image_meta(224, 224);
    mapping.insert(isolator.isolate(
        "RandomHorizontalFlip",
        // Isolate the flip path itself (the paper runs the op on a larger
        // input "in isolation instead of the pipeline" for short ops).
        apply(&rhf, Sample::image_meta(1024, 1024), python),
        Some(apply(&rrc, Sample::image_meta(h, w), python)),
    ));
    mapping.insert(isolator.isolate(
        "ToTensor",
        apply(&tt, Sample::image_meta(1024, 1024), python),
        Some(apply(&rhf, square.clone(), python)),
    ));
    mapping.insert(isolator.isolate(
        "Normalize",
        apply(
            &norm,
            Sample::tensor_meta(&[3, 1024, 1024], DType::F32),
            python,
        ),
        Some(apply(&tt, square.clone(), python)),
    ));
    mapping.insert(isolator.isolate(
        &Collate::display_name(batch_size),
        |cpu: &mut CpuThread, rng: &mut StdRng| {
            cpu.exec(python, 0.0);
            let samples: Vec<Sample> = (0..batch_size)
                .map(|_| Sample::tensor_meta(&[3, 224, 224], DType::F32))
                .collect();
            let mut ctx = TransformCtx { cpu, rng };
            let _ = collate.apply(samples, &mut ctx);
        },
        Some(apply(
            &norm,
            Sample::tensor_meta(&[3, 224, 224], DType::F32),
            python,
        )),
    ));

    let mut filtered = Mapping::new();
    for op in mapping.ops() {
        let mut bucket = mapping.functions_for(op).expect("op just inserted").clone();
        bucket.filter_noise(2, 3);
        filtered.insert(bucket);
    }
    let _ = NullObserver; // (kept for symmetric imports in doc examples)
    filtered
}

/// Batch size [`build_ic_mapping_native`] collates — small enough that
/// real tensors stack quickly, and the op name (`C(4)`) can be matched by
/// building the simulated mapping with [`build_ic_mapping_for_batch`].
pub const NATIVE_MAPPING_BATCH: usize = 4;

/// Builds the IC operation→function mapping from *native* evidence: real
/// images are decoded and transformed with the kernel-span feed
/// collecting, and each op's observed kernels (real wall time, not cost
/// model) become its bucket, hottest first.
///
/// Mirrors the isolation harness's discipline on the native substrate:
/// the first pipeline pass is a warmup with the feed paused (allocator
/// and cache warmup, Listing 4's warmup loop), then each of `runs`
/// measured passes is bracketed by `resume`/`pause` and drained
/// separately so `captured_runs`/`total_runs` mean the same thing they
/// do in the simulated mapping.
///
/// # Panics
///
/// Panics if the self-encoded test image fails to decode or a transform
/// rejects its input — both would be codec/pipeline bugs, not data
/// errors.
#[must_use]
pub fn build_ic_mapping_native(machine: &Arc<Machine>, runs: usize) -> Mapping {
    let runs = runs.max(1);
    let codec = Codec::new(machine);
    let transforms = Compose::new(
        machine,
        vec![
            Box::new(RandomResizedCrop::new(machine, 224)),
            // p = 1.0 so every measured pass exercises the flip kernel.
            Box::new(RandomHorizontalFlip::new(machine, 1.0)),
            Box::new(ToTensor::new(machine)),
            Box::new(Normalize::imagenet(machine)),
        ],
    );
    let collate = Collate::new(machine);
    let feed = Arc::new(KernelSpanFeed::new_paused());
    let mut cpu = CpuThread::new(Arc::clone(machine));
    cpu.attach_native_feed(Arc::clone(&feed));
    let mut rng = StdRng::seed_from_u64(0x0107);

    // (op, function, library) -> (samples, total wall ns)
    let mut captured: BTreeMap<(String, String, String), (u64, u64)> = BTreeMap::new();
    for run in 0..=runs {
        let img = Image::synthetic(480, 640, &mut rng);
        // Encoding happens offline in the real pipeline: scratch thread,
        // no feed, so only decode-side kernels are observed.
        let mut scratch = CpuThread::new(Arc::clone(machine));
        let encoded = codec.encode(&img, 85, &mut scratch);
        if run > 0 {
            feed.resume();
        }
        cpu.set_op_context("Loader");
        let decoded = codec
            .decode(&encoded, &mut cpu)
            .expect("self-encoded image must decode");
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let sample = transforms
            .apply(Sample::image(decoded), &mut ctx)
            .expect("IC transforms accept a decoded image");
        let batch: Vec<Sample> = (0..NATIVE_MAPPING_BATCH).map(|_| sample.clone()).collect();
        collate
            .apply(batch, &mut ctx)
            .expect("uniform batch collates");
        feed.pause();
        // Run 0 drains nothing: the feed stayed paused through the warmup.
        for s in feed.take_samples() {
            let Some(op) = s.op else { continue };
            let spec = machine.kernel_spec(s.kernel);
            let entry = captured.entry((op, spec.name, spec.library)).or_default();
            entry.0 += 1;
            entry.1 += s.elapsed_ns;
        }
    }
    // Uniform passes exercise every instrumented kernel every measured
    // run (the feed has no sampling grid to miss short kernels with), so
    // captured_runs == runs.
    let mut buckets: BTreeMap<String, Vec<(MappedFunction, u64)>> = BTreeMap::new();
    for ((op, name, library), (samples, nanos)) in captured {
        buckets.entry(op).or_default().push((
            MappedFunction {
                name,
                library,
                captured_runs: runs,
                total_runs: runs,
                samples,
            },
            nanos,
        ));
    }
    let mut mapping = Mapping::new();
    for (op, mut rows) in buckets {
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.name.cmp(&b.0.name)));
        mapping.insert(OpMapping {
            op,
            functions: rows.into_iter().map(|(f, _)| f).collect(),
        });
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_uarch::MachineConfig;

    fn quick_config() -> IsolationConfig {
        IsolationConfig {
            runs_override: Some(30),
            ..IsolationConfig::default()
        }
    }

    #[test]
    fn loader_bucket_contains_the_decode_kernels() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let mapping = build_ic_mapping(&machine, quick_config());
        let loader = mapping.functions_for("Loader").expect("Loader mapped");
        assert!(loader.contains("decode_mcu"), "{loader:?}");
        assert!(loader.contains("jpeg_idct_islow") || loader.contains("jpeg_idct_16x16"));
        assert!(loader.contains("ycc_rgb_convert"));
    }

    #[test]
    fn rrc_bucket_contains_resample_but_not_decode() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let mapping = build_ic_mapping(&machine, quick_config());
        let rrc = mapping
            .functions_for("RandomResizedCrop")
            .expect("RRC mapped");
        assert!(
            rrc.contains("ImagingResampleHorizontal_8bpc")
                || rrc.contains("ImagingResampleVertical_8bpc"),
            "{rrc:?}"
        );
        for leaked in [
            "decode_mcu",
            "__memcpy_avx_unaligned_erms",
            "jpeg_fill_bit_buffer",
        ] {
            assert!(
                !rrc.contains(leaked),
                "{leaked} must not leak into the RRC bucket with the sleep gap on: {rrc:?}"
            );
        }
    }

    #[test]
    fn disabling_the_sleep_gap_pollutes_buckets() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let config = IsolationConfig {
            use_sleep_gap: false,
            runs_override: Some(400),
            ..IsolationConfig::default()
        };
        let mapping = build_ic_mapping(&machine, config);
        // With skid unguarded, at least one bucket catches a predecessor
        // function (typically a Loader kernel inside RandomResizedCrop).
        let rrc = mapping
            .functions_for("RandomResizedCrop")
            .expect("RRC mapped");
        let loader_kernels = [
            "decode_mcu",
            "jpeg_idct_islow",
            "ycc_rgb_convert",
            "ImagingUnpackRGB",
            // On this (Intel) machine RRC's own bulk move resolves to
            // __memmove..., so __memcpy... in its bucket is Loader leakage.
            "__memcpy_avx_unaligned_erms",
            "__memset_avx2_unaligned_erms",
            "jpeg_fill_bit_buffer",
        ];
        assert!(
            loader_kernels.iter().any(|k| rrc.contains(k)),
            "expected loader leakage without the sleep gap: {rrc:?}"
        );
    }

    #[test]
    fn native_mapping_top_kernels_agree_with_the_simulated_mapping() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        // 60 runs: enough for the 10 ms sampling grid to capture the
        // short bulk-move kernel the native side always observes.
        let sim = build_ic_mapping_for_batch(
            &machine,
            IsolationConfig {
                runs_override: Some(60),
                ..IsolationConfig::default()
            },
            NATIVE_MAPPING_BATCH,
        );
        let native = build_ic_mapping_native(&machine, 2);
        let loader = native.functions_for("Loader").expect("Loader observed");
        assert!(loader.contains("decode_mcu"), "{loader:?}");
        let verdicts = lotus_core::map::top_k_agreement(&sim, &native, 3);
        assert!(!verdicts.is_empty(), "no ops overlap between mappings");
        for v in &verdicts {
            assert!(
                v.agrees(),
                "{}: native top-k {:?} not all in sim bucket (missing {:?})",
                v.op,
                v.native_top,
                v.missing_from_sim
            );
        }
    }

    #[test]
    fn shared_memcpy_maps_to_multiple_ops() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let mapping = build_ic_mapping(&machine, quick_config());
        let shared = mapping.ops_containing("__memcpy_avx_unaligned_erms");
        assert!(
            shared.contains(&"Loader") && shared.contains(&"C(128)"),
            "memcpy should map to several ops: {shared:?}"
        );
    }
}
