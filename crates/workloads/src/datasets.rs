//! Dataset implementations: `ImageFolder`-style encoded-image datasets and
//! numpy-volume datasets, both reporting their `Loader` step to the
//! LotusTrace observer.

use std::sync::Arc;

use lotus_codec::Codec;
use lotus_data::{AudioDatasetModel, DType, ImageDatasetModel, VolumeDatasetModel};
use lotus_dataflow::Dataset;
use lotus_sim::{Storage, Time};
use lotus_transforms::{
    python_interp_kernel, Compose, PipelineError, Sample, TransformCtx, TransformObserver,
};
use lotus_uarch::{CostCoeffs, KernelId, Machine};

use crate::io::IoModel;

/// The shared fetch stage every dataset's `get_item` starts with: the
/// Python-level dispatch overhead (dataset `__getitem__`, file open),
/// then the record's bytes — from the simulated storage hierarchy
/// (traced, \[T0\]) when one is attached, or from the closed-form
/// [`IoModel`] wait otherwise. One code path for all three dataset
/// kinds, so fault injection, storage reads and the "Loader" span all
/// compose identically.
struct FetchStage {
    io: IoModel,
    storage: Option<Arc<Storage>>,
    python_overhead: KernelId,
}

impl FetchStage {
    fn new(machine: &Machine, io: IoModel) -> FetchStage {
        FetchStage {
            io,
            storage: None,
            python_overhead: python_interp_kernel(machine),
        }
    }

    /// Begins one `get_item`: charges the Python dispatch overhead and
    /// reads `bytes` for `record_index`, reporting the read to the
    /// observer when a storage hierarchy is attached. Returns the cursor
    /// at entry — the start of the "Loader" op span the caller reports.
    fn fetch(
        &self,
        record_index: u64,
        bytes: u64,
        ctx: &mut TransformCtx<'_>,
        observer: &mut dyn TransformObserver,
    ) -> Time {
        let start = ctx.cpu.cursor();
        ctx.cpu.exec(self.python_overhead, 0.0);
        match &self.storage {
            Some(storage) => {
                let issued = ctx.cpu.cursor();
                let read = storage.read(record_index, bytes, issued);
                // Off-CPU wait for the read, including queueing behind
                // other workers on the backing device.
                ctx.cpu.idle(read.span);
                observer.on_storage_read(issued, &read);
            }
            // Closed-form I/O wait (with the straggler tail).
            None => ctx.cpu.idle(self.io.read_span_with(bytes, ctx.rng)),
        }
        start
    }
}

/// `torchvision.datasets.ImageFolder` over a synthetic encoded-image
/// dataset: `get_item` reads the file (I/O), decodes it through the SJPG
/// codec ("Loader" in Table II), then applies the transform chain.
pub struct ImageFolderDataset {
    model: ImageDatasetModel,
    codec: Codec,
    fetch: FetchStage,
    transforms: Compose,
    /// When true, real pixels are synthesized, encoded and decoded (for
    /// examples and small runs exercising the full compute path).
    materialize: bool,
}

impl std::fmt::Debug for ImageFolderDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ImageFolderDataset")
            .field("dataset", &self.model.name())
            .field("len", &self.model.len())
            .field("materialize", &self.materialize)
            .finish()
    }
}

impl ImageFolderDataset {
    /// Creates the dataset in cost-only mode (the default for large
    /// simulated epochs).
    #[must_use]
    pub fn new(
        machine: &Machine,
        model: ImageDatasetModel,
        io: IoModel,
        transforms: Compose,
    ) -> ImageFolderDataset {
        ImageFolderDataset {
            model,
            codec: Codec::new(machine),
            fetch: FetchStage::new(machine, io),
            transforms,
            materialize: false,
        }
    }

    /// Attaches the simulated storage hierarchy `get_item` reads from:
    /// the closed-form `IoModel` wait becomes traced \[T0\] storage
    /// reads against the shared page cache and backing devices.
    #[must_use]
    pub fn with_storage(mut self, storage: Arc<Storage>) -> ImageFolderDataset {
        self.fetch.storage = Some(storage);
        self
    }

    /// Switches on real pixel materialization (encode + decode real
    /// content). Orders of magnitude slower; meant for examples and
    /// correctness tests.
    #[must_use]
    pub fn materialized(mut self) -> ImageFolderDataset {
        self.materialize = true;
        self
    }

    /// The underlying dataset model.
    #[must_use]
    pub fn model(&self) -> &ImageDatasetModel {
        &self.model
    }
}

impl Dataset for ImageFolderDataset {
    fn len(&self) -> u64 {
        self.model.len()
    }

    fn get_item(
        &self,
        index: u64,
        ctx: &mut TransformCtx<'_>,
        observer: &mut dyn TransformObserver,
    ) -> Result<Sample, PipelineError> {
        let record = self.model.record(index);
        let start = self.fetch.fetch(index, record.file_bytes, ctx, observer);
        // Native kernel spans inside the decode attribute to the Loader op.
        ctx.cpu.set_op_context("Loader");
        let sample = if self.materialize {
            // Real path: synthesize content, encode, decode. Encoding is
            // performed on a scratch thread so only decode cost lands in
            // the Loader span (the stored file was encoded offline).
            let image = record.materialize();
            let mut scratch = lotus_uarch::CpuThread::new(std::sync::Arc::clone(ctx.cpu.machine()));
            let encoded = self.codec.encode(&image, 85, &mut scratch);
            let decoded =
                self.codec
                    .decode(&encoded, ctx.cpu)
                    .map_err(|e| PipelineError::Decode {
                        index,
                        reason: e.to_string(),
                    })?;
            Sample::image(decoded)
        } else {
            self.codec
                .charge_decode(record.width, record.height, record.file_bytes, ctx.cpu);
            Sample::image_meta(record.height as usize, record.width as usize)
        };
        observer.on_transform("Loader", start, ctx.cpu.cursor().since(start));
        self.transforms.apply_observed(sample, ctx, observer)
    }

    fn cost_hint(&self, index: u64) -> Option<u64> {
        Some(self.model.record(index).file_bytes)
    }
}

/// The IS pipeline's dataset: preprocessed KiTS19 cases stored as numpy
/// arrays on local disk; `get_item` reads and parses the volume ("Load"),
/// then applies the volumetric transform chain.
pub struct VolumeDataset {
    model: VolumeDatasetModel,
    fetch: FetchStage,
    transforms: Compose,
    npy_read: KernelId,
    /// Number of items one epoch draws; indices wrap over the 210 cases
    /// (MLPerf's epoch-level oversampling).
    epoch_items: u64,
}

impl std::fmt::Debug for VolumeDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VolumeDataset")
            .field("cases", &self.model.len())
            .field("epoch_items", &self.epoch_items)
            .finish()
    }
}

impl VolumeDataset {
    /// Creates the dataset. `epoch_items` is the number of samples one
    /// epoch draws (indices wrap over the case list).
    ///
    /// # Panics
    ///
    /// Panics if `epoch_items == 0`.
    #[must_use]
    pub fn new(
        machine: &Machine,
        model: VolumeDatasetModel,
        io: IoModel,
        transforms: Compose,
        epoch_items: u64,
    ) -> VolumeDataset {
        assert!(epoch_items > 0, "epoch_items must be positive");
        VolumeDataset {
            model,
            fetch: FetchStage::new(machine, io),
            transforms,
            npy_read: machine.kernel(
                "npy_fromfile",
                "_multiarray_umath.cpython-310-x86_64-linux-gnu.so",
                CostCoeffs::streaming_default(),
            ),
            epoch_items,
        }
    }

    /// Attaches the simulated storage hierarchy `get_item` reads from.
    #[must_use]
    pub fn with_storage(mut self, storage: Arc<Storage>) -> VolumeDataset {
        self.fetch.storage = Some(storage);
        self
    }
}

impl Dataset for VolumeDataset {
    fn len(&self) -> u64 {
        self.epoch_items
    }

    fn get_item(
        &self,
        index: u64,
        ctx: &mut TransformCtx<'_>,
        observer: &mut dyn TransformObserver,
    ) -> Result<Sample, PipelineError> {
        // Indices wrap over the case list, so the storage read targets
        // the wrapped record (oversampled epochs re-read the same case,
        // which the page cache then serves).
        let wrapped = index % self.model.len();
        let record = self.model.record(wrapped);
        let start = self
            .fetch
            .fetch(wrapped, record.stored_bytes, ctx, observer);
        // numpy materializes the array from the raw bytes.
        ctx.cpu.exec(self.npy_read, record.stored_bytes as f64);
        let sample = Sample::tensor_meta(
            &[
                record.dims.0 as usize,
                record.dims.1 as usize,
                record.dims.2 as usize,
            ],
            DType::F32,
        );
        observer.on_transform("Loader", start, ctx.cpu.cursor().since(start));
        self.transforms.apply_observed(sample, ctx, observer)
    }

    fn cost_hint(&self, index: u64) -> Option<u64> {
        Some(self.model.record(index % self.model.len()).stored_bytes)
    }
}

/// The audio-classification extension's dataset: FLAC-like compressed
/// clips; `get_item` reads and decodes the clip ("Loader"), then applies
/// the audio transform chain.
pub struct AudioClipDataset {
    model: AudioDatasetModel,
    fetch: FetchStage,
    transforms: Compose,
    flac_decode: KernelId,
}

impl std::fmt::Debug for AudioClipDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AudioClipDataset")
            .field("len", &self.model.len())
            .finish()
    }
}

impl AudioClipDataset {
    /// Creates the dataset.
    #[must_use]
    pub fn new(
        machine: &Machine,
        model: AudioDatasetModel,
        io: IoModel,
        transforms: Compose,
    ) -> AudioClipDataset {
        AudioClipDataset {
            model,
            fetch: FetchStage::new(machine, io),
            transforms,
            flac_decode: machine.kernel(
                "FLAC__stream_decoder_process_single",
                "libFLAC.so.8",
                CostCoeffs {
                    base_insts: 3_000.0,
                    insts_per_unit: 95.0, // per decoded sample
                    uops_per_inst: 1.15,
                    ipc_base: 1.9,
                    l1_miss_per_unit: 0.02,
                    l2_miss_per_unit: 0.004,
                    llc_miss_per_unit: 0.001,
                    branches_per_unit: 6.0,
                    mispredict_rate: 0.04,
                    frontend_sensitivity: 0.6,
                },
            ),
        }
    }

    /// Attaches the simulated storage hierarchy `get_item` reads from.
    #[must_use]
    pub fn with_storage(mut self, storage: Arc<Storage>) -> AudioClipDataset {
        self.fetch.storage = Some(storage);
        self
    }
}

impl Dataset for AudioClipDataset {
    fn len(&self) -> u64 {
        self.model.len()
    }

    fn get_item(
        &self,
        index: u64,
        ctx: &mut TransformCtx<'_>,
        observer: &mut dyn TransformObserver,
    ) -> Result<Sample, PipelineError> {
        let record = self.model.record(index);
        let start = self.fetch.fetch(index, record.file_bytes, ctx, observer);
        ctx.cpu.exec(self.flac_decode, record.samples as f64);
        let sample = Sample::tensor_meta(&[record.samples as usize], DType::F32);
        observer.on_transform("Loader", start, ctx.cpu.cursor().since(start));
        self.transforms.apply_observed(sample, ctx, observer)
    }

    fn cost_hint(&self, index: u64) -> Option<u64> {
        Some(self.model.record(index).file_bytes)
    }
}

/// Convenience observer that discards events but asserts monotonic starts
/// (used in tests).
#[derive(Debug, Default)]
pub struct MonotonicObserver {
    last_start: Option<Time>,
}

impl TransformObserver for MonotonicObserver {
    fn on_transform(&mut self, _name: &str, start: Time, _elapsed: lotus_sim::Span) {
        if let Some(prev) = self.last_start {
            assert!(start >= prev, "op starts must be monotonic within a worker");
        }
        self.last_start = Some(start);
    }
}
