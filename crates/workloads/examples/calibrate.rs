//! Prints per-op elapsed-time statistics for each pipeline (Table II
//! calibration aid).

use std::sync::Arc;

use lotus_core::trace::LotusTrace;
use lotus_uarch::{Machine, MachineConfig};
use lotus_workloads::{ExperimentConfig, PipelineKind};

fn main() {
    for (kind, items) in [
        (PipelineKind::ImageClassification, 4096u64),
        (PipelineKind::ImageSegmentation, 210),
        (PipelineKind::ObjectDetection, 1024),
    ] {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let trace = Arc::new(LotusTrace::new());
        let config = ExperimentConfig::paper_default(kind).scaled_to(items);
        let report = config
            .build(&machine, Arc::clone(&trace) as _, None)
            .run()
            .unwrap();
        println!(
            "== {} ({} batches, E2E {:.1}s) ==",
            kind.abbrev(),
            report.batches,
            report.elapsed.as_secs_f64()
        );
        println!(
            "{:<28} {:>9} {:>9} {:>8} {:>8}",
            "op", "avg ms", "p90 ms", "<10ms%", "<100us%"
        );
        for op in trace.op_stats() {
            println!(
                "{:<28} {:>9.2} {:>9.2} {:>8.1} {:>8.1}",
                op.name,
                op.summary.mean,
                op.summary.p90,
                op.frac_below_10ms * 100.0,
                op.frac_below_100us * 100.0
            );
        }
    }
}
