//! Prints per-op elapsed-time statistics for each pipeline (Table II
//! calibration aid).
//!
//! The three pipeline runs are independent deterministic simulations,
//! so they fan out over all cores; output is identical to a serial run.

use lotus_core::exec::default_jobs;
use lotus_workloads::calibration::measure_op_blocks;
use lotus_workloads::PipelineKind;

fn main() {
    let specs = [
        (PipelineKind::ImageClassification, 4096u64),
        (PipelineKind::ImageSegmentation, 210),
        (PipelineKind::ObjectDetection, 1024),
    ];
    for block in measure_op_blocks(&specs, default_jobs()) {
        println!(
            "== {} ({} batches, E2E {:.1}s) ==",
            block.pipeline.abbrev(),
            block.batches,
            block.elapsed.as_secs_f64()
        );
        println!(
            "{:<28} {:>9} {:>9} {:>8} {:>8}",
            "op", "avg ms", "p90 ms", "<10ms%", "<100us%"
        );
        for op in &block.ops {
            println!(
                "{:<28} {:>9.2} {:>9.2} {:>8.1} {:>8.1}",
                op.name,
                op.summary.mean,
                op.summary.p90,
                op.frac_below_10ms * 100.0,
                op.frac_below_100us * 100.0
            );
        }
    }
}
