//! Behavioural models of the four baseline profilers the paper compares
//! against (§VI): Scalene, py-spy, austin and the PyTorch profiler.
//!
//! Each model consumes the ground-truth event stream through the
//! [`Tracer`] hooks, keeps only what its mechanism would actually capture,
//! and charges its interference (compute dilation for in-process
//! machinery, per-event costs for tracing) back to the simulated program.
//! Overhead constants are calibrated to the paper's Table III and
//! documented inline.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use lotus_dataflow::Tracer;
use lotus_sim::{Span, Time};

use crate::capabilities::Capabilities;

/// Result of a profiler session over one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilerOutput {
    /// Profiler name.
    pub name: String,
    /// Bytes of profile output written to storage.
    pub log_bytes: u64,
    /// Peak in-memory buffering, for profilers that hold data until exit.
    pub buffered_bytes: u64,
    /// Whether buffering exceeded machine memory (the PyTorch profiler
    /// OOMs on full ImageNet in the paper).
    pub out_of_memory: bool,
    /// Per-operation elapsed-time totals the profiler can reconstruct, if
    /// its output supports that at all.
    pub per_op_epoch_totals: Option<BTreeMap<String, Span>>,
    /// The Table IV functionality row.
    pub capabilities: Capabilities,
}

/// A baseline profiler model: a [`Tracer`] that can summarize what it
/// captured once the run finishes.
pub trait ProfilerModel: Tracer {
    /// Profiler name as it appears in Tables III/IV.
    fn name(&self) -> &'static str;

    /// Finalizes the session. `wall_time` is the traced program's
    /// end-to-end elapsed time and `processes` the number of OS processes
    /// it ran (sampling profilers write output proportional to both).
    fn finish(&self, wall_time: Span, processes: usize) -> ProfilerOutput;
}

/// Configuration of a sampling-based profiler model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Sampling period.
    pub interval: Span,
    /// Multiplicative slowdown imposed on the traced program's compute.
    /// In-process samplers (Scalene's signal handlers and allocation
    /// interception) dilate heavily; external attachers (py-spy, austin)
    /// only pause the target briefly per sample.
    pub dilation: f64,
    /// Output bytes written per sample (stack record). Zero for
    /// report-style outputs.
    pub bytes_per_sample: u64,
    /// Fixed output size (Scalene's aggregated report).
    pub report_bytes: u64,
    /// Whether per-function aggregates over the epoch can be recovered
    /// from the output (py-spy/austin flamegraph data can; Scalene's
    /// line-level report does not resolve worker-process preprocessing
    /// operations, per Table IV).
    pub resolves_ops: bool,
}

impl SamplingConfig {
    /// Scalene: in-process CPU+memory sampler. The ~96 % wall overhead of
    /// Table III comes from allocation interception on every tensor op.
    #[must_use]
    pub fn scalene() -> SamplingConfig {
        SamplingConfig {
            interval: Span::from_millis(10),
            dilation: 1.96,
            bytes_per_sample: 0,
            report_bytes: 2_500_000,
            resolves_ops: false,
        }
    }

    /// py-spy: external sampler, 10 ms default rate, ~50 B per sample in
    /// its raw format; ~8 % overhead from ptrace stops.
    #[must_use]
    pub fn py_spy() -> SamplingConfig {
        SamplingConfig {
            interval: Span::from_millis(10),
            dilation: 1.08,
            bytes_per_sample: 50,
            report_bytes: 0,
            resolves_ops: true,
        }
    }

    /// austin: external sampler at 100 µs, writing a full text stack per
    /// sample (~1.7 KB) — the 1000× storage blow-up of Table III.
    #[must_use]
    pub fn austin() -> SamplingConfig {
        SamplingConfig {
            interval: Span::from_micros(100),
            dilation: 1.032,
            bytes_per_sample: 1_700,
            report_bytes: 0,
            resolves_ops: true,
        }
    }
}

/// A sampling-based profiler (Scalene / py-spy / austin) model.
#[derive(Debug)]
pub struct SamplingProfiler {
    name: &'static str,
    config: SamplingConfig,
    state: Mutex<SamplingState>,
}

#[derive(Debug, Default)]
struct SamplingState {
    /// Samples attributed to each operation (grid points landing inside
    /// its spans).
    op_samples: BTreeMap<String, u64>,
}

impl SamplingProfiler {
    /// Creates a sampling profiler model.
    #[must_use]
    pub fn new(name: &'static str, config: SamplingConfig) -> SamplingProfiler {
        SamplingProfiler {
            name,
            config,
            state: Mutex::new(SamplingState::default()),
        }
    }

    /// Scalene with its default configuration.
    #[must_use]
    pub fn scalene() -> SamplingProfiler {
        SamplingProfiler::new("Scalene", SamplingConfig::scalene())
    }

    /// py-spy with its default configuration.
    #[must_use]
    pub fn py_spy() -> SamplingProfiler {
        SamplingProfiler::new("py-spy", SamplingConfig::py_spy())
    }

    /// austin with its default configuration.
    #[must_use]
    pub fn austin() -> SamplingProfiler {
        SamplingProfiler::new("austin", SamplingConfig::austin())
    }

    fn samples_in(&self, start: Time, dur: Span) -> u64 {
        let interval = self.config.interval.as_nanos();
        let begin = start.as_nanos();
        let end = begin + dur.as_nanos();
        let first = begin.div_ceil(interval) * interval;
        if first >= end {
            0
        } else {
            (end - first).div_ceil(interval)
        }
    }
}

impl Tracer for SamplingProfiler {
    fn on_op(&self, _pid: u32, _batch: u64, name: &str, start: Time, dur: Span) -> Span {
        let n = self.samples_in(start, dur);
        if n > 0 {
            let mut st = self.state.lock().expect("profiler poisoned");
            *st.op_samples.entry(name.to_string()).or_insert(0) += n;
        }
        Span::ZERO // sampling costs are modelled as dilation, not per-event
    }

    fn compute_dilation(&self) -> f64 {
        self.config.dilation
    }
}

impl ProfilerModel for SamplingProfiler {
    fn name(&self) -> &'static str {
        self.name
    }

    fn finish(&self, wall_time: Span, processes: usize) -> ProfilerOutput {
        let st = self.state.lock().expect("profiler poisoned");
        let total_samples =
            wall_time.as_nanos() / self.config.interval.as_nanos().max(1) * processes as u64;
        let log_bytes = self.config.report_bytes + total_samples * self.config.bytes_per_sample;
        let per_op = self.config.resolves_ops.then(|| {
            st.op_samples
                .iter()
                .map(|(name, &samples)| (name.clone(), self.config.interval * samples))
                .collect()
        });
        ProfilerOutput {
            name: self.name.to_string(),
            log_bytes,
            buffered_bytes: 0,
            out_of_memory: false,
            // Sampling profilers have no batch boundaries, no worker
            // data-flow view, and no wait/delay markers (Table IV).
            capabilities: Capabilities {
                epoch: per_op.is_some(),
                ..Capabilities::default()
            },
            per_op_epoch_totals: per_op,
        }
    }
}

/// The PyTorch profiler model: trace-based, main-process + GPU events
/// only, buffered in memory until exit.
#[derive(Debug)]
pub struct TorchProfiler {
    /// Per-sample event cost on the main process (aten op enter/exit
    /// records for forward+backward, allocator events, …). Calibrated to
    /// Table III's 86 % wall overhead.
    per_sample_event_cost: Span,
    /// Events recorded per consumed sample.
    events_per_sample: u64,
    /// Bytes per event when exported to the Chrome trace.
    bytes_per_event: u64,
    /// Bytes per event while buffered in memory.
    buffered_bytes_per_event: u64,
    /// Machine memory available for buffering.
    memory_limit: u64,
    events: AtomicU64,
    waits_seen: AtomicU64,
}

impl Default for TorchProfiler {
    fn default() -> Self {
        TorchProfiler::new()
    }
}

impl TorchProfiler {
    /// Creates the model with defaults matching the paper's setup
    /// (128 GiB machine).
    #[must_use]
    pub fn new() -> TorchProfiler {
        TorchProfiler {
            per_sample_event_cost: Span::from_micros(13_000),
            events_per_sample: 8,
            bytes_per_event: 145,
            // In-memory events carry shapes and Python stacks, far larger
            // than their serialized form — large enough that one full
            // ImageNet epoch (~10 M events) exceeds the 128 GiB machine,
            // reproducing the paper's OOM observation.
            buffered_bytes_per_event: 16_000,
            memory_limit: 128 * (1 << 30),
            events: AtomicU64::new(0),
            waits_seen: AtomicU64::new(0),
        }
    }
}

impl Tracer for TorchProfiler {
    fn on_batch_wait(
        &self,
        _pid: u32,
        _batch: u64,
        _start: Time,
        _dur: Span,
        _ooo: bool,
        _queue_delay: Span,
    ) -> Span {
        // The profiler sees the main process block in `_next_data` and
        // records it (this is how it reports "preprocessing time").
        self.waits_seen.fetch_add(1, Ordering::Relaxed);
        self.events.fetch_add(1, Ordering::Relaxed);
        Span::ZERO
    }

    fn on_batch_consumed(
        &self,
        _pid: u32,
        _batch: u64,
        _start: Time,
        _dur: Span,
        batch_len: usize,
    ) -> Span {
        // Recording every aten/CUDA event for the batch's forward and
        // backward passes slows the main process.
        self.events
            .fetch_add(self.events_per_sample * batch_len as u64, Ordering::Relaxed);
        self.per_sample_event_cost * batch_len as u64
    }
}

impl ProfilerModel for TorchProfiler {
    fn name(&self) -> &'static str {
        "PyTorch Profiler"
    }

    fn finish(&self, _wall_time: Span, _processes: usize) -> ProfilerOutput {
        let events = self.events.load(Ordering::Relaxed);
        let buffered = events * self.buffered_bytes_per_event;
        ProfilerOutput {
            name: "PyTorch Profiler".to_string(),
            log_bytes: events * self.bytes_per_event,
            buffered_bytes: buffered,
            out_of_memory: buffered > self.memory_limit,
            per_op_epoch_totals: None,
            // Captures the main process's wait for workers but nothing
            // inside them (Table IV: only Wait).
            capabilities: Capabilities {
                wait: self.waits_seen.load(Ordering::Relaxed) > 0,
                ..Capabilities::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_counts_grid_points() {
        let p = SamplingProfiler::py_spy();
        // 35 ms op starting at 2 ms: grid points at 10/20/30 ms.
        let _ = p.on_op(
            1,
            0,
            "Loader",
            Time::from_nanos(2_000_000),
            Span::from_millis(35),
        );
        // 1 ms op straddling no grid point.
        let _ = p.on_op(
            1,
            0,
            "Flip",
            Time::from_nanos(41_000_000),
            Span::from_millis(1),
        );
        let out = p.finish(Span::from_secs(1), 2);
        let per_op = out.per_op_epoch_totals.unwrap();
        assert_eq!(per_op["Loader"], Span::from_millis(30));
        assert!(!per_op.contains_key("Flip"), "sub-interval ops are missed");
    }

    #[test]
    fn log_bytes_scale_with_wall_time_and_processes() {
        let p = SamplingProfiler::austin();
        let small = p.finish(Span::from_secs(10), 2).log_bytes;
        let big = p.finish(Span::from_secs(100), 2).log_bytes;
        assert_eq!(big, small * 10);
        let more_procs = p.finish(Span::from_secs(10), 4).log_bytes;
        assert_eq!(more_procs, small * 2);
    }

    #[test]
    fn scalene_report_is_fixed_size_and_opaque() {
        let p = SamplingProfiler::scalene();
        let _ = p.on_op(1, 0, "Loader", Time::ZERO, Span::from_secs(1));
        let out = p.finish(Span::from_secs(100), 2);
        assert_eq!(out.log_bytes, 2_500_000);
        assert!(out.per_op_epoch_totals.is_none());
        assert_eq!(out.capabilities.count(), 0);
    }

    #[test]
    fn pyspy_epoch_estimates_track_truth_closely() {
        let p = SamplingProfiler::py_spy();
        // 10 000 ops of 7 ms each: truth 70 s.
        let mut t = 0u64;
        for _ in 0..10_000 {
            let _ = p.on_op(
                1,
                0,
                "Loader",
                Time::from_nanos(t),
                Span::from_micros(7_000),
            );
            t += 7_137_000; // keep grid phase sliding
        }
        let per_op = p
            .finish(Span::from_secs(80), 2)
            .per_op_epoch_totals
            .unwrap();
        let est = per_op["Loader"].as_secs_f64();
        assert!(
            (est - 70.0).abs() / 70.0 < 0.02,
            "estimate {est}s vs 70s truth"
        );
    }

    #[test]
    fn torch_profiler_ooms_only_at_scale() {
        let small = TorchProfiler::new();
        let _ = small.on_batch_consumed(1, 0, Time::ZERO, Span::from_millis(100), 512);
        assert!(!small.finish(Span::from_secs(1), 1).out_of_memory);

        let big = TorchProfiler::new();
        // Full-ImageNet scale: ~10 000 batches of 512.
        for i in 0..10_000 {
            let _ = big.on_batch_consumed(1, i, Time::ZERO, Span::from_millis(100), 512);
        }
        let out = big.finish(Span::from_secs(1), 1);
        assert!(out.out_of_memory, "buffered {} bytes", out.buffered_bytes);
    }

    #[test]
    fn torch_profiler_captures_only_wait() {
        let p = TorchProfiler::new();
        let _ = p.on_batch_wait(1, 0, Time::ZERO, Span::from_millis(5), false, Span::ZERO);
        let _ = p.on_batch_consumed(1, 0, Time::ZERO, Span::from_millis(100), 8);
        let caps = p.finish(Span::from_secs(1), 1).capabilities;
        assert!(caps.wait);
        assert_eq!(caps.count(), 1);
    }

    #[test]
    fn torch_profiler_charges_tracing_on_the_main_process() {
        let p = TorchProfiler::new();
        let oh = p.on_batch_consumed(1, 0, Time::ZERO, Span::from_millis(100), 512);
        assert!(
            oh > Span::from_secs(5),
            "per-batch tracing cost should be seconds: {oh}"
        );
    }
}
