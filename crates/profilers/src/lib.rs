//! # lotus-profilers — baseline profiler models
//!
//! Behavioural models of the profilers the Lotus paper compares against
//! (§VI): Scalene, py-spy, austin and the PyTorch profiler. Each model
//! plugs into the same [`lotus_dataflow::Tracer`] hook points as
//! LotusTrace, keeps only what its mechanism would capture (sampling
//! grids, main-process-only traces) and charges its interference back to
//! the simulated program — so Table III's overhead numbers and Table IV's
//! functionality matrix are *outputs* of the models, not constants.
//!
//! The [`ComparisonHarness`] reruns one experiment configuration under
//! every profiler and assembles the comparison rows.

#![warn(missing_docs)]
// The whole workspace is safe Rust; determinism and auditability both
// lean on it. Gate any future exception through a crate-level decision.
#![deny(unsafe_code)]

mod capabilities;
mod comparison;
mod models;
mod native;

pub use capabilities::{lotus_capabilities, Capabilities};
pub use comparison::{BaselineProfiler, ComparisonHarness, ComparisonRow, SinkOverheadRow};
pub use models::{ProfilerModel, ProfilerOutput, SamplingConfig, SamplingProfiler, TorchProfiler};
pub use native::{NativeSampler, SamplerConfig, SamplerTick, ThreadSample};
