//! The functionality matrix of Table IV: which preprocessing metrics each
//! profiler's output can deliver.

use lotus_core::trace::{SpanKind, TraceRecord};

/// The five capabilities the paper compares (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Capabilities {
    /// Overall and per-operation elapsed times for the epoch.
    pub epoch: bool,
    /// Per-batch elapsed time.
    pub batch: bool,
    /// Asynchronous main-process ↔ worker interaction (data-flow
    /// visualization).
    pub async_flow: bool,
    /// Main-process batch wait time.
    pub wait: bool,
    /// Batch consumption delay time.
    pub delay: bool,
}

impl Capabilities {
    /// Renders a Table IV row (`✓` / `✗` per column).
    #[must_use]
    pub fn row(&self) -> String {
        let mark = |b: bool| if b { "yes" } else { "no " };
        format!(
            "{}   {}   {}   {}   {}",
            mark(self.epoch),
            mark(self.batch),
            mark(self.async_flow),
            mark(self.wait),
            mark(self.delay)
        )
    }

    /// Number of supported capabilities.
    #[must_use]
    pub fn count(&self) -> usize {
        [
            self.epoch,
            self.batch,
            self.async_flow,
            self.wait,
            self.delay,
        ]
        .into_iter()
        .filter(|&b| b)
        .count()
    }
}

/// Derives LotusTrace's capabilities *from its actual output*: each
/// capability is granted only if the records contain the data needed to
/// compute the metric.
#[must_use]
pub fn lotus_capabilities(records: &[TraceRecord]) -> Capabilities {
    let has_ops = records.iter().any(|r| matches!(r.kind, SpanKind::Op(_)));
    let has_batches = records
        .iter()
        .any(|r| r.kind == SpanKind::BatchPreprocessed);
    let has_waits = records.iter().any(|r| r.kind == SpanKind::BatchWait);
    let has_consumed = records.iter().any(|r| r.kind == SpanKind::BatchConsumed);
    // Async flow visualization needs spans on both the main process and
    // worker processes.
    let worker_pids: std::collections::HashSet<u32> = records
        .iter()
        .filter(|r| r.kind == SpanKind::BatchPreprocessed)
        .map(|r| r.pid)
        .collect();
    let main_pids: std::collections::HashSet<u32> = records
        .iter()
        .filter(|r| r.kind == SpanKind::BatchWait)
        .map(|r| r.pid)
        .collect();
    let cross_process =
        !worker_pids.is_empty() && !main_pids.is_empty() && worker_pids.is_disjoint(&main_pids);
    Capabilities {
        epoch: has_ops,
        batch: has_batches,
        async_flow: cross_process,
        wait: has_waits,
        delay: has_batches && has_consumed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_sim::{Span, Time};

    fn rec(kind: SpanKind, pid: u32) -> TraceRecord {
        TraceRecord {
            kind,
            pid,
            batch_id: 0,
            start: Time::ZERO,
            duration: Span::from_micros(10),
            out_of_order: false,
            queue_delay: Span::ZERO,
        }
    }

    #[test]
    fn full_log_grants_everything() {
        let records = vec![
            rec(SpanKind::Op("Loader".into()), 2),
            rec(SpanKind::BatchPreprocessed, 2),
            rec(SpanKind::BatchWait, 1),
            rec(SpanKind::BatchConsumed, 1),
        ];
        let caps = lotus_capabilities(&records);
        assert_eq!(caps.count(), 5);
    }

    #[test]
    fn batch_only_log_loses_epoch_ops() {
        let records = vec![
            rec(SpanKind::BatchPreprocessed, 2),
            rec(SpanKind::BatchWait, 1),
            rec(SpanKind::BatchConsumed, 1),
        ];
        let caps = lotus_capabilities(&records);
        assert!(!caps.epoch);
        assert!(caps.batch && caps.wait && caps.delay);
    }

    #[test]
    fn single_process_log_cannot_show_async_flow() {
        let records = vec![
            rec(SpanKind::BatchPreprocessed, 1),
            rec(SpanKind::BatchWait, 1),
        ];
        assert!(!lotus_capabilities(&records).async_flow);
    }

    #[test]
    fn row_renders_five_columns() {
        let caps = Capabilities {
            epoch: true,
            ..Capabilities::default()
        };
        let row = caps.row();
        assert!(row.starts_with("yes"));
        assert_eq!(row.matches("no ").count(), 4);
    }
}
