//! OS-level sampling profiler for the native backend.
//!
//! [`NativeSampler`] periodically scrapes `/proc/self/task/*` for
//! per-thread on-CPU time (`schedstat`), thread names (`comm`) and
//! voluntary/involuntary context switches (`status`), plus the process
//! RSS from `/proc/self/status` — the OS-level signals an external
//! profiler like VTune's or uProf's driver would read alongside its PMU
//! samples. It pairs with the cooperative per-kernel span feed
//! ([`KernelSpanFeed`]) the instrumented kernel entry points report to,
//! and honors the same `resume` / `pause` / `detach` collection-control
//! verbs.
//!
//! Off Linux (or in locked-down containers) `/proc` scraping degrades
//! gracefully to no-ops: ticks are still counted but carry no thread
//! rows, and every public API keeps working.
//!
//! Every scrape self-times itself; [`NativeSampler::overhead`] folds the
//! scrape cost together with the feed's recording cost so the bench
//! report can state exactly how much wall time profiling added.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lotus_core::metrics::MetricsRegistry;
use lotus_sim::{Span, Time};
use lotus_uarch::KernelSpanFeed;

/// Knobs of the OS-level sampler.
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Sampling period; defaults to the 10 ms grid VTune uses (the
    /// AMD-side 1 ms grid is a fine choice for short runs).
    pub tick: Span,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            tick: Span::from_millis(10),
        }
    }
}

/// One thread's row inside a [`SamplerTick`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadSample {
    /// OS thread name (`/proc/self/task/<tid>/comm`), e.g. `dataloader0`.
    pub thread: String,
    /// Cumulative on-CPU time in nanoseconds (`schedstat` field 1).
    pub cpu_ns: u64,
    /// Cumulative voluntary context switches.
    pub voluntary_switches: u64,
    /// Cumulative involuntary context switches.
    pub involuntary_switches: u64,
}

/// One periodic scrape of the process's OS-level counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplerTick {
    /// Offset of the scrape from the sampler's epoch.
    pub at_ns: u64,
    /// Process resident set size in kB (`VmRSS`); 0 when unreadable.
    pub rss_kb: u64,
    /// Per-thread rows; empty when `/proc` is unavailable.
    pub threads: Vec<ThreadSample>,
}

/// Shared state between the sampler handle and its background thread.
#[derive(Debug)]
struct SamplerShared {
    feed: Arc<KernelSpanFeed>,
    epoch: Instant,
    stop: AtomicBool,
    ticks: Mutex<Vec<SamplerTick>>,
    scrape_overhead_ns: AtomicU64,
}

impl SamplerShared {
    /// Scrapes `/proc` once and, when the feed is collecting, appends the
    /// tick. The scrape's own cost is accounted either way, because the
    /// reads happen before the collecting check is worth skipping.
    fn sample_once(&self) {
        if !self.feed.is_collecting() {
            return;
        }
        let entered = Instant::now();
        let at_ns = entered
            .checked_duration_since(self.epoch)
            .map_or(0, |d| d.as_nanos() as u64);
        let tick = SamplerTick {
            at_ns,
            rss_kb: read_rss_kb(Path::new("/proc/self/status")).unwrap_or(0),
            threads: read_thread_samples(Path::new("/proc/self/task")),
        };
        self.ticks.lock().expect("sampler poisoned").push(tick);
        self.scrape_overhead_ns
            .fetch_add(entered.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// The OS-level sampling profiler: a background thread on a fixed tick
/// plus the cooperative kernel-span feed.
///
/// ```no_run
/// use lotus_profilers::{NativeSampler, SamplerConfig};
///
/// let mut sampler = NativeSampler::new(SamplerConfig::default());
/// sampler.start();
/// // ... run the native backend with sampler.feed() attached ...
/// sampler.stop();
/// println!("{} ticks, {:?} overhead", sampler.ticks().len(), sampler.overhead());
/// ```
#[derive(Debug)]
pub struct NativeSampler {
    shared: Arc<SamplerShared>,
    tick: Duration,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl NativeSampler {
    /// Creates a sampler (collecting from the start) with its own feed.
    #[must_use]
    pub fn new(config: SamplerConfig) -> NativeSampler {
        NativeSampler::with_feed(config, Arc::new(KernelSpanFeed::new()))
    }

    /// Creates a sampler sharing an existing feed; the feed's
    /// collection-control state gates the sampler's ticks too, so one
    /// `resume`/`pause` toggles both signal sources.
    #[must_use]
    pub fn with_feed(config: SamplerConfig, feed: Arc<KernelSpanFeed>) -> NativeSampler {
        NativeSampler {
            shared: Arc::new(SamplerShared {
                feed,
                epoch: Instant::now(),
                stop: AtomicBool::new(false),
                ticks: Mutex::new(Vec::new()),
                scrape_overhead_ns: AtomicU64::new(0),
            }),
            tick: Duration::from_nanos(config.tick.as_nanos()),
            handle: None,
        }
    }

    /// The kernel-span feed paired with this sampler (attach it to the
    /// native backend).
    #[must_use]
    pub fn feed(&self) -> &Arc<KernelSpanFeed> {
        &self.shared.feed
    }

    /// Spawns the background sampling thread. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn a thread.
    pub fn start(&mut self) {
        if self.handle.is_some() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        let tick = self.tick;
        self.handle = Some(
            std::thread::Builder::new()
                .name("lotus-sampler".to_string())
                .spawn(move || {
                    while !shared.stop.load(Ordering::Acquire) {
                        shared.sample_once();
                        std::thread::sleep(tick);
                    }
                })
                .expect("failed to spawn sampler thread"),
        );
    }

    /// Stops and joins the background thread. Idempotent; collected
    /// ticks stay available.
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    /// Takes one scrape immediately on the calling thread (tests and
    /// one-shot snapshots).
    pub fn sample_now(&self) {
        self.shared.sample_once();
    }

    /// Resumes collection (forwards to the shared feed).
    pub fn resume(&self) {
        self.shared.feed.resume();
    }

    /// Pauses collection (forwards to the shared feed).
    pub fn pause(&self) {
        self.shared.feed.pause();
    }

    /// Detaches collection permanently (forwards to the shared feed).
    pub fn detach(&self) {
        self.shared.feed.detach();
    }

    /// The ticks collected so far.
    ///
    /// # Panics
    ///
    /// Panics if the sampler thread panicked mid-scrape.
    #[must_use]
    pub fn ticks(&self) -> Vec<SamplerTick> {
        self.shared.ticks.lock().expect("sampler poisoned").clone()
    }

    /// Total profiling overhead: the sampler's scrape time plus the
    /// feed's recording time — the self-accounted cost the bench report
    /// discloses.
    #[must_use]
    pub fn overhead(&self) -> Span {
        Span::from_nanos(self.shared.scrape_overhead_ns.load(Ordering::Relaxed))
            + self.shared.feed.overhead()
    }

    /// Streams the collected ticks into `registry` as gauge series:
    /// `sampler_rss_kb`, and per thread `sampler_thread_cpu_ns.<thread>`,
    /// `sampler_ctx_switches_voluntary.<thread>` /
    /// `sampler_ctx_switches_involuntary.<thread>` — picked up by the
    /// Prometheus/JSON/CSV exporters and `lotus top`.
    pub fn gauges_into(&self, registry: &MetricsRegistry) {
        for tick in self.ticks() {
            let at = Time::ZERO + Span::from_nanos(tick.at_ns);
            registry.set_gauge("sampler_rss_kb", at, tick.rss_kb as f64);
            for t in &tick.threads {
                registry.set_gauge(
                    &format!("sampler_thread_cpu_ns.{}", t.thread),
                    at,
                    t.cpu_ns as f64,
                );
                registry.set_gauge(
                    &format!("sampler_ctx_switches_voluntary.{}", t.thread),
                    at,
                    t.voluntary_switches as f64,
                );
                registry.set_gauge(
                    &format!("sampler_ctx_switches_involuntary.{}", t.thread),
                    at,
                    t.involuntary_switches as f64,
                );
            }
        }
    }
}

impl Drop for NativeSampler {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Parses `VmRSS:  <n> kB` out of a `/proc/<pid>/status` file.
fn read_rss_kb(status: &Path) -> Option<u64> {
    let text = std::fs::read_to_string(status).ok()?;
    parse_status_field(&text, "VmRSS:")
}

/// Extracts the first integer after `key` in a status-format file.
fn parse_status_field(text: &str, key: &str) -> Option<u64> {
    text.lines()
        .find(|l| l.starts_with(key))
        .and_then(|l| l[key.len()..].split_whitespace().next())
        .and_then(|v| v.parse().ok())
}

/// Scrapes every thread under a `/proc/<pid>/task` directory. Threads
/// that vanish mid-scrape (or unreadable files) are skipped silently.
fn read_thread_samples(task_dir: &Path) -> Vec<ThreadSample> {
    let Ok(entries) = std::fs::read_dir(task_dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.flatten() {
        let dir = entry.path();
        let Ok(comm) = std::fs::read_to_string(dir.join("comm")) else {
            continue;
        };
        // schedstat: "<on-cpu ns> <runqueue wait ns> <timeslices>"
        let cpu_ns = std::fs::read_to_string(dir.join("schedstat"))
            .ok()
            .and_then(|s| s.split_whitespace().next().and_then(|v| v.parse().ok()))
            .unwrap_or(0);
        let status = std::fs::read_to_string(dir.join("status")).unwrap_or_default();
        out.push(ThreadSample {
            thread: comm.trim().to_string(),
            cpu_ns,
            voluntary_switches: parse_status_field(&status, "voluntary_ctxt_switches:")
                .unwrap_or(0),
            involuntary_switches: parse_status_field(&status, "nonvoluntary_ctxt_switches:")
                .unwrap_or(0),
        });
    }
    out.sort_by(|a, b| a.thread.cmp(&b.thread));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_fields_parse_and_tolerate_garbage() {
        let text = "Name:\tx\nVmRSS:\t  123456 kB\nvoluntary_ctxt_switches:\t42\n";
        assert_eq!(parse_status_field(text, "VmRSS:"), Some(123_456));
        assert_eq!(
            parse_status_field(text, "voluntary_ctxt_switches:"),
            Some(42)
        );
        assert_eq!(
            parse_status_field(text, "nonvoluntary_ctxt_switches:"),
            None
        );
        assert_eq!(parse_status_field("", "VmRSS:"), None);
    }

    #[test]
    fn missing_proc_degrades_to_empty_rows() {
        assert!(read_thread_samples(Path::new("/definitely/not/proc")).is_empty());
        assert_eq!(read_rss_kb(Path::new("/definitely/not/status")), None);
    }

    #[test]
    fn pause_gates_ticks_and_resume_restores_them() {
        let sampler = NativeSampler::new(SamplerConfig::default());
        sampler.pause();
        sampler.sample_now();
        assert!(sampler.ticks().is_empty());
        sampler.resume();
        sampler.sample_now();
        assert_eq!(sampler.ticks().len(), 1);
        sampler.detach();
        sampler.resume(); // detached: stays off
        sampler.sample_now();
        assert_eq!(sampler.ticks().len(), 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_scrape_sees_this_thread_and_accounts_overhead() {
        let sampler = NativeSampler::new(SamplerConfig::default());
        // Burn a little CPU so schedstat has something to report.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        assert!(acc > 0);
        sampler.sample_now();
        let ticks = sampler.ticks();
        assert_eq!(ticks.len(), 1);
        assert!(!ticks[0].threads.is_empty(), "task dir should list threads");
        assert!(ticks[0].rss_kb > 0, "VmRSS should be readable");
        assert!(sampler.overhead() > Span::ZERO);
    }

    #[test]
    fn background_thread_collects_and_stops() {
        let mut sampler = NativeSampler::new(SamplerConfig {
            tick: Span::from_millis(1),
        });
        sampler.start();
        sampler.start(); // idempotent
        std::thread::sleep(Duration::from_millis(20));
        sampler.stop();
        let n = sampler.ticks().len();
        assert!(n >= 1, "expected at least one tick, got {n}");
        // Stopped: no further ticks accumulate.
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(sampler.ticks().len(), n);
    }

    #[test]
    fn gauges_land_in_the_registry() {
        use lotus_core::metrics::MetricsRegistry;
        let sampler = NativeSampler::new(SamplerConfig::default());
        sampler.shared.ticks.lock().unwrap().push(SamplerTick {
            at_ns: 5_000,
            rss_kb: 77,
            threads: vec![ThreadSample {
                thread: "dataloader0".to_string(),
                cpu_ns: 1_234,
                voluntary_switches: 3,
                involuntary_switches: 1,
            }],
        });
        let registry = MetricsRegistry::new();
        sampler.gauges_into(&registry);
        let snap = registry.snapshot();
        let gauge = |name: &str| snap.gauges.get(name).and_then(|s| s.last());
        assert_eq!(gauge("sampler_rss_kb"), Some(77.0));
        assert_eq!(gauge("sampler_thread_cpu_ns.dataloader0"), Some(1_234.0));
        assert_eq!(
            gauge("sampler_ctx_switches_voluntary.dataloader0"),
            Some(3.0)
        );
        assert_eq!(
            gauge("sampler_ctx_switches_involuntary.dataloader0"),
            Some(1.0)
        );
    }
}
