//! The profiler comparison harness behind Tables III and IV: run the same
//! pipeline with no profiler, with LotusTrace, and with each baseline
//! model; compare wall-time overhead, log storage and functionality.

use std::sync::Arc;

use lotus_core::metrics::{MetricsRegistry, MetricsSink, MultiSink};
use lotus_core::trace::LotusTrace;
use lotus_dataflow::{NullTracer, Tracer};
use lotus_sim::Span;
use lotus_uarch::{Machine, MachineConfig};
use lotus_workloads::ExperimentConfig;

use crate::capabilities::{lotus_capabilities, Capabilities};
use crate::models::{ProfilerModel, SamplingProfiler, TorchProfiler};

/// The four baseline profilers of §VI-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineProfiler {
    /// Scalene (in-process CPU/GPU/memory sampler).
    Scalene,
    /// py-spy (external sampler).
    PySpy,
    /// austin (external high-rate sampler).
    Austin,
    /// The built-in `torch.profiler`.
    TorchProfiler,
}

impl BaselineProfiler {
    /// All four baselines, in the paper's Table III order.
    pub const ALL: [BaselineProfiler; 4] = [
        BaselineProfiler::Scalene,
        BaselineProfiler::PySpy,
        BaselineProfiler::Austin,
        BaselineProfiler::TorchProfiler,
    ];

    /// Builds a fresh session of this profiler model.
    #[must_use]
    pub fn build(self) -> Arc<dyn ProfilerModel> {
        match self {
            BaselineProfiler::Scalene => Arc::new(SamplingProfiler::scalene()),
            BaselineProfiler::PySpy => Arc::new(SamplingProfiler::py_spy()),
            BaselineProfiler::Austin => Arc::new(SamplingProfiler::austin()),
            BaselineProfiler::TorchProfiler => Arc::new(TorchProfiler::new()),
        }
    }
}

/// One comparison row (Table III + Table IV combined).
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Profiler name.
    pub profiler: String,
    /// End-to-end wall time with the profiler attached.
    pub wall_time: Span,
    /// Wall-time overhead vs. the unprofiled baseline, as a fraction
    /// (0.08 = 8 %).
    pub wall_overhead: f64,
    /// Profile/log storage written.
    pub log_bytes: u64,
    /// Whether the profiler ran out of memory at this scale.
    pub out_of_memory: bool,
    /// Functionality (Table IV).
    pub capabilities: Capabilities,
}

/// Runs one experiment configuration under every profiler.
#[derive(Debug, Clone)]
pub struct ComparisonHarness {
    config: ExperimentConfig,
}

impl ComparisonHarness {
    /// Creates a harness for `config` (the paper uses IC with batch 512,
    /// 1 GPU, 1 DataLoader).
    #[must_use]
    pub fn new(config: ExperimentConfig) -> ComparisonHarness {
        ComparisonHarness { config }
    }

    fn run_with(&self, tracer: Arc<dyn Tracer>) -> Span {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let report = self
            .config
            .build(&machine, tracer, None)
            .run()
            .expect("comparison run must complete");
        report.elapsed
    }

    /// Wall time with no profiler attached.
    #[must_use]
    pub fn baseline_wall(&self) -> Span {
        self.run_with(Arc::new(NullTracer))
    }

    /// Runs with LotusTrace and derives its row (capabilities come from
    /// the actual records).
    #[must_use]
    pub fn run_lotus(&self, baseline: Span) -> ComparisonRow {
        let trace = Arc::new(LotusTrace::new());
        let wall = self.run_with(Arc::clone(&trace) as Arc<dyn Tracer>);
        ComparisonRow {
            profiler: "Lotus".to_string(),
            wall_time: wall,
            wall_overhead: overhead(baseline, wall),
            log_bytes: trace.log_storage_bytes(),
            out_of_memory: false,
            capabilities: lotus_capabilities(&trace.records()),
        }
    }

    /// Runs with one baseline profiler model.
    #[must_use]
    pub fn run_baseline(&self, which: BaselineProfiler, baseline: Span) -> ComparisonRow {
        let model = which.build();
        let wall = self.run_with(Arc::clone(&model) as Arc<dyn Tracer>);
        let processes = self.config.num_workers + 1;
        let output = model.finish(wall, processes);
        ComparisonRow {
            profiler: output.name,
            wall_time: wall,
            wall_overhead: overhead(baseline, wall),
            log_bytes: output.log_bytes,
            out_of_memory: output.out_of_memory,
            capabilities: output.capabilities,
        }
    }

    /// Runs the whole comparison: Lotus plus all four baselines.
    #[must_use]
    pub fn run_all(&self) -> Vec<ComparisonRow> {
        let baseline = self.baseline_wall();
        let mut rows = vec![self.run_lotus(baseline)];
        for which in BaselineProfiler::ALL {
            rows.push(self.run_baseline(which, baseline));
        }
        rows
    }

    /// Runs once with the full streaming sink stack (the LotusTrace log
    /// plus the live metrics registry behind one fan-out) and attributes
    /// the instrumentation cost sink by sink — Table III at sub-profiler
    /// granularity. Each row's `charged` is the sink's own self-accounted
    /// virtual-time total.
    #[must_use]
    pub fn run_sink_stack(&self, baseline: Span) -> Vec<SinkOverheadRow> {
        let trace = Arc::new(LotusTrace::new());
        let registry = Arc::new(MetricsRegistry::new());
        let metrics = Arc::new(MetricsSink::new(
            Arc::clone(&registry),
            self.config.num_workers,
        ));
        let sinks = Arc::new(
            MultiSink::new()
                .with(Arc::clone(&trace) as _)
                .with(Arc::clone(&metrics) as _),
        );
        let wall = self.run_with(Arc::clone(&sinks) as Arc<dyn Tracer>);
        sinks
            .overheads()
            .into_iter()
            .map(|(sink, charged)| SinkOverheadRow {
                sink,
                wall_time: wall,
                charged,
                wall_overhead: overhead(baseline, wall),
            })
            .collect()
    }
}

/// One row of the per-sink overhead attribution: what each streaming
/// sink charged the traced program during a single stacked run.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkOverheadRow {
    /// Sink name ([`lotus_core::metrics::TraceSink::name`]).
    pub sink: String,
    /// End-to-end wall time of the stacked run (same for every row).
    pub wall_time: Span,
    /// Virtual time this sink self-accounted.
    pub charged: Span,
    /// Wall-time overhead of the whole stack vs. the unprofiled
    /// baseline, as a fraction.
    pub wall_overhead: f64,
}

fn overhead(baseline: Span, with_profiler: Span) -> f64 {
    let b = baseline.as_nanos() as f64;
    if b == 0.0 {
        return 0.0;
    }
    (with_profiler.as_nanos() as f64 - b) / b
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_workloads::PipelineKind;

    fn small_ic() -> ComparisonHarness {
        let mut config = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
        config.batch_size = 512;
        config.num_workers = 1;
        config.num_gpus = 1;
        ComparisonHarness::new(config.scaled_to(2_048))
    }

    #[test]
    fn empty_multi_sink_matches_null_tracer_exactly() {
        let h = small_ic();
        let null_wall = h.run_with(Arc::new(NullTracer));
        let empty_wall = h.run_with(Arc::new(MultiSink::new()));
        // The no-sink configuration charges exactly zero: bit-identical
        // wall time, not merely close.
        assert_eq!(null_wall, empty_wall);
    }

    #[test]
    fn sink_stack_attributes_overhead_per_sink() {
        let h = small_ic();
        let baseline = h.baseline_wall();
        let rows = h.run_sink_stack(baseline);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].sink, "lotus-trace");
        assert_eq!(rows[1].sink, "metrics");
        for row in &rows {
            assert!(!row.charged.is_zero(), "{} charged nothing", row.sink);
            assert!(row.charged < row.wall_time);
        }
        // The log formats a line per event; the metrics fold is cheaper.
        assert!(rows[1].charged < rows[0].charged);
        assert!(rows[0].wall_time >= baseline);
    }

    #[test]
    fn lotus_has_low_overhead_and_full_functionality() {
        let h = small_ic();
        let baseline = h.baseline_wall();
        let row = h.run_lotus(baseline);
        assert!(
            row.wall_overhead < 0.05,
            "Lotus overhead {}",
            row.wall_overhead
        );
        assert_eq!(row.capabilities.count(), 5);
        assert!(row.log_bytes > 0);
    }

    #[test]
    fn scalene_nearly_doubles_a_preprocessing_bound_run() {
        let h = small_ic();
        let baseline = h.baseline_wall();
        let row = h.run_baseline(BaselineProfiler::Scalene, baseline);
        assert!(
            (0.7..1.2).contains(&row.wall_overhead),
            "Scalene overhead {}",
            row.wall_overhead
        );
        assert_eq!(row.capabilities.count(), 0);
    }

    #[test]
    fn austin_writes_orders_of_magnitude_more_log_than_pyspy() {
        let h = small_ic();
        let baseline = h.baseline_wall();
        let austin = h.run_baseline(BaselineProfiler::Austin, baseline);
        let pyspy = h.run_baseline(BaselineProfiler::PySpy, baseline);
        assert!(
            austin.log_bytes > 100 * pyspy.log_bytes,
            "austin {} vs py-spy {}",
            austin.log_bytes,
            pyspy.log_bytes
        );
        assert!(austin.capabilities.epoch);
        assert!(pyspy.capabilities.epoch);
        assert!(!pyspy.capabilities.batch);
    }

    #[test]
    fn torch_profiler_slows_the_run_and_only_sees_waits() {
        let h = small_ic();
        let baseline = h.baseline_wall();
        let row = h.run_baseline(BaselineProfiler::TorchProfiler, baseline);
        assert!(
            row.wall_overhead > 0.4,
            "torch profiler overhead {}",
            row.wall_overhead
        );
        assert!(row.capabilities.wait);
        assert_eq!(row.capabilities.count(), 1);
    }
}
