//! The profiler comparison harness behind Tables III and IV: run the same
//! pipeline with no profiler, with LotusTrace, and with each baseline
//! model; compare wall-time overhead, log storage and functionality.

use std::sync::Arc;

use lotus_core::trace::LotusTrace;
use lotus_dataflow::{NullTracer, Tracer};
use lotus_sim::Span;
use lotus_uarch::{Machine, MachineConfig};
use lotus_workloads::ExperimentConfig;

use crate::capabilities::{lotus_capabilities, Capabilities};
use crate::models::{ProfilerModel, SamplingProfiler, TorchProfiler};

/// The four baseline profilers of §VI-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineProfiler {
    /// Scalene (in-process CPU/GPU/memory sampler).
    Scalene,
    /// py-spy (external sampler).
    PySpy,
    /// austin (external high-rate sampler).
    Austin,
    /// The built-in `torch.profiler`.
    TorchProfiler,
}

impl BaselineProfiler {
    /// All four baselines, in the paper's Table III order.
    pub const ALL: [BaselineProfiler; 4] = [
        BaselineProfiler::Scalene,
        BaselineProfiler::PySpy,
        BaselineProfiler::Austin,
        BaselineProfiler::TorchProfiler,
    ];

    /// Builds a fresh session of this profiler model.
    #[must_use]
    pub fn build(self) -> Arc<dyn ProfilerModel> {
        match self {
            BaselineProfiler::Scalene => Arc::new(SamplingProfiler::scalene()),
            BaselineProfiler::PySpy => Arc::new(SamplingProfiler::py_spy()),
            BaselineProfiler::Austin => Arc::new(SamplingProfiler::austin()),
            BaselineProfiler::TorchProfiler => Arc::new(TorchProfiler::new()),
        }
    }
}

/// One comparison row (Table III + Table IV combined).
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Profiler name.
    pub profiler: String,
    /// End-to-end wall time with the profiler attached.
    pub wall_time: Span,
    /// Wall-time overhead vs. the unprofiled baseline, as a fraction
    /// (0.08 = 8 %).
    pub wall_overhead: f64,
    /// Profile/log storage written.
    pub log_bytes: u64,
    /// Whether the profiler ran out of memory at this scale.
    pub out_of_memory: bool,
    /// Functionality (Table IV).
    pub capabilities: Capabilities,
}

/// Runs one experiment configuration under every profiler.
#[derive(Debug, Clone)]
pub struct ComparisonHarness {
    config: ExperimentConfig,
}

impl ComparisonHarness {
    /// Creates a harness for `config` (the paper uses IC with batch 512,
    /// 1 GPU, 1 DataLoader).
    #[must_use]
    pub fn new(config: ExperimentConfig) -> ComparisonHarness {
        ComparisonHarness { config }
    }

    fn run_with(&self, tracer: Arc<dyn Tracer>) -> Span {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let report = self
            .config
            .build(&machine, tracer, None)
            .run()
            .expect("comparison run must complete");
        report.elapsed
    }

    /// Wall time with no profiler attached.
    #[must_use]
    pub fn baseline_wall(&self) -> Span {
        self.run_with(Arc::new(NullTracer))
    }

    /// Runs with LotusTrace and derives its row (capabilities come from
    /// the actual records).
    #[must_use]
    pub fn run_lotus(&self, baseline: Span) -> ComparisonRow {
        let trace = Arc::new(LotusTrace::new());
        let wall = self.run_with(Arc::clone(&trace) as Arc<dyn Tracer>);
        ComparisonRow {
            profiler: "Lotus".to_string(),
            wall_time: wall,
            wall_overhead: overhead(baseline, wall),
            log_bytes: trace.log_storage_bytes(),
            out_of_memory: false,
            capabilities: lotus_capabilities(&trace.records()),
        }
    }

    /// Runs with one baseline profiler model.
    #[must_use]
    pub fn run_baseline(&self, which: BaselineProfiler, baseline: Span) -> ComparisonRow {
        let model = which.build();
        let wall = self.run_with(Arc::clone(&model) as Arc<dyn Tracer>);
        let processes = self.config.num_workers + 1;
        let output = model.finish(wall, processes);
        ComparisonRow {
            profiler: output.name,
            wall_time: wall,
            wall_overhead: overhead(baseline, wall),
            log_bytes: output.log_bytes,
            out_of_memory: output.out_of_memory,
            capabilities: output.capabilities,
        }
    }

    /// Runs the whole comparison: Lotus plus all four baselines.
    #[must_use]
    pub fn run_all(&self) -> Vec<ComparisonRow> {
        let baseline = self.baseline_wall();
        let mut rows = vec![self.run_lotus(baseline)];
        for which in BaselineProfiler::ALL {
            rows.push(self.run_baseline(which, baseline));
        }
        rows
    }
}

fn overhead(baseline: Span, with_profiler: Span) -> f64 {
    let b = baseline.as_nanos() as f64;
    if b == 0.0 {
        return 0.0;
    }
    (with_profiler.as_nanos() as f64 - b) / b
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_workloads::PipelineKind;

    fn small_ic() -> ComparisonHarness {
        let mut config = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
        config.batch_size = 512;
        config.num_workers = 1;
        config.num_gpus = 1;
        ComparisonHarness::new(config.scaled_to(2_048))
    }

    #[test]
    fn lotus_has_low_overhead_and_full_functionality() {
        let h = small_ic();
        let baseline = h.baseline_wall();
        let row = h.run_lotus(baseline);
        assert!(
            row.wall_overhead < 0.05,
            "Lotus overhead {}",
            row.wall_overhead
        );
        assert_eq!(row.capabilities.count(), 5);
        assert!(row.log_bytes > 0);
    }

    #[test]
    fn scalene_nearly_doubles_a_preprocessing_bound_run() {
        let h = small_ic();
        let baseline = h.baseline_wall();
        let row = h.run_baseline(BaselineProfiler::Scalene, baseline);
        assert!(
            (0.7..1.2).contains(&row.wall_overhead),
            "Scalene overhead {}",
            row.wall_overhead
        );
        assert_eq!(row.capabilities.count(), 0);
    }

    #[test]
    fn austin_writes_orders_of_magnitude_more_log_than_pyspy() {
        let h = small_ic();
        let baseline = h.baseline_wall();
        let austin = h.run_baseline(BaselineProfiler::Austin, baseline);
        let pyspy = h.run_baseline(BaselineProfiler::PySpy, baseline);
        assert!(
            austin.log_bytes > 100 * pyspy.log_bytes,
            "austin {} vs py-spy {}",
            austin.log_bytes,
            pyspy.log_bytes
        );
        assert!(austin.capabilities.epoch);
        assert!(pyspy.capabilities.epoch);
        assert!(!pyspy.capabilities.batch);
    }

    #[test]
    fn torch_profiler_slows_the_run_and_only_sees_waits() {
        let h = small_ic();
        let baseline = h.baseline_wall();
        let row = h.run_baseline(BaselineProfiler::TorchProfiler, baseline);
        assert!(
            row.wall_overhead > 0.4,
            "torch profiler overhead {}",
            row.wall_overhead
        );
        assert!(row.capabilities.wait);
        assert_eq!(row.capabilities.count(), 1);
    }
}
