//! A pool of CPU cores that simulated processes compute on.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::ctx::Ctx;
use crate::kernel::{Kernel, Pid};

struct PoolInner {
    total: usize,
    available: usize,
    waiters: VecDeque<Pid>,
    /// High-water mark of concurrently held cores over the pool's lifetime.
    peak_active: usize,
}

/// A counted pool of CPU cores.
///
/// A process acquires a core before running compute and releases it after
/// (dropping the returned [`CoreGuard`] releases it automatically). The
/// instantaneous number of held cores is exposed via [`CorePool::active`],
/// which the micro-architecture model uses to derive shared-resource
/// contention (LLC, DRAM bandwidth, instruction fetch).
///
/// ```
/// use lotus_sim::{Simulation, Span};
///
/// let mut sim = Simulation::new();
/// let pool = sim.core_pool(1);
/// for w in 0..2 {
///     let pool = pool.clone();
///     sim.spawn(format!("worker{w}"), move |ctx| {
///         let _core = pool.acquire(&ctx);
///         ctx.delay(Span::from_millis(1));
///     });
/// }
/// let report = sim.run().unwrap();
/// // One core: the two 1 ms jobs serialize.
/// assert_eq!(report.end_time.as_nanos(), 2_000_000);
/// ```
pub struct CorePool {
    kernel: Arc<Kernel>,
    inner: Arc<Mutex<PoolInner>>,
}

impl Clone for CorePool {
    fn clone(&self) -> Self {
        CorePool {
            kernel: Arc::clone(&self.kernel),
            inner: Arc::clone(&self.inner),
        }
    }
}

impl std::fmt::Debug for CorePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = crate::locked(&self.inner);
        f.debug_struct("CorePool")
            .field("total", &inner.total)
            .field("active", &(inner.total - inner.available))
            .finish()
    }
}

impl CorePool {
    pub(crate) fn new(kernel: Arc<Kernel>, cores: usize) -> CorePool {
        assert!(cores > 0, "a core pool needs at least one core");
        CorePool {
            kernel,
            inner: Arc::new(Mutex::new(PoolInner {
                total: cores,
                available: cores,
                waiters: VecDeque::new(),
                peak_active: 0,
            })),
        }
    }

    /// Total number of cores in the pool.
    #[must_use]
    pub fn total(&self) -> usize {
        crate::locked(&self.inner).total
    }

    /// Number of cores currently held.
    #[must_use]
    pub fn active(&self) -> usize {
        let inner = crate::locked(&self.inner);
        inner.total - inner.available
    }

    /// High-water mark of concurrently held cores.
    #[must_use]
    pub fn peak_active(&self) -> usize {
        crate::locked(&self.inner).peak_active
    }

    /// Acquires a core, blocking the calling process until one is free.
    /// The core is released when the returned guard is dropped.
    #[must_use]
    pub fn acquire<'a>(&'a self, ctx: &'a Ctx) -> CoreGuard<'a> {
        loop {
            let mut inner = crate::locked(&self.inner);
            if inner.available > 0 {
                inner.available -= 1;
                let active = inner.total - inner.available;
                inner.peak_active = inner.peak_active.max(active);
                return CoreGuard {
                    pool: self,
                    _ctx: ctx,
                };
            }
            inner.waiters.push_back(ctx.pid());
            ctx.park("core.acquire", move |_st| drop(inner));
        }
    }

    fn release(&self) {
        let mut inner = crate::locked(&self.inner);
        inner.available += 1;
        debug_assert!(inner.available <= inner.total, "core released twice");
        if let Some(waiter) = inner.waiters.pop_front() {
            let mut st = crate::locked(&self.kernel.state);
            st.wake_now(waiter);
        }
    }
}

/// RAII guard for a held core; releases the core when dropped.
#[derive(Debug)]
pub struct CoreGuard<'a> {
    pool: &'a CorePool,
    _ctx: &'a Ctx,
}

impl Drop for CoreGuard<'_> {
    fn drop(&mut self) {
        self.pool.release();
    }
}
