//! Simulated inter-process queues.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::ctx::Ctx;
use crate::kernel::{Kernel, Pid};
use crate::time::Span;

struct QueueInner<T> {
    name: String,
    capacity: Option<usize>,
    items: VecDeque<T>,
    /// Processes blocked in `pop` waiting for an item.
    pop_waiters: VecDeque<Pid>,
    /// Processes blocked in `push` waiting for space.
    push_waiters: VecDeque<Pid>,
}

/// A FIFO channel between simulated processes, modelling Python's
/// `multiprocessing.Queue` as used by the PyTorch `DataLoader`.
///
/// `pop` blocks the calling process until an item is available; `push`
/// blocks while a bounded queue is full. Handles are cheaply cloneable and
/// may be shared by any number of producers and consumers (the DataLoader's
/// *data queue* is shared by all workers; its *index queues* are
/// single-producer single-consumer).
///
/// See [`crate::Simulation::queue`] for construction and an example.
pub struct Queue<T> {
    kernel: Arc<Kernel>,
    inner: Arc<Mutex<QueueInner<T>>>,
}

impl<T> Clone for Queue<T> {
    fn clone(&self) -> Self {
        Queue {
            kernel: Arc::clone(&self.kernel),
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for Queue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = crate::locked(&self.inner);
        f.debug_struct("Queue")
            .field("name", &inner.name)
            .field("len", &inner.items.len())
            .field("capacity", &inner.capacity)
            .finish()
    }
}

impl<T: Send + 'static> Queue<T> {
    pub(crate) fn new(kernel: Arc<Kernel>, name: String, capacity: Option<usize>) -> Queue<T> {
        Queue {
            kernel,
            inner: Arc::new(Mutex::new(QueueInner {
                name,
                capacity,
                items: VecDeque::new(),
                pop_waiters: VecDeque::new(),
                push_waiters: VecDeque::new(),
            })),
        }
    }

    /// Number of items currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        crate::locked(&self.inner).items.len()
    }

    /// True if no items are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The queue's name (used in deadlock diagnostics and traces).
    #[must_use]
    pub fn name(&self) -> String {
        crate::locked(&self.inner).name.clone()
    }

    /// Appends `item`, blocking the calling process while the queue is full.
    pub fn push(&self, ctx: &Ctx, item: T) {
        let mut item = Some(item);
        loop {
            let mut inner = crate::locked(&self.inner);
            let full = inner.capacity.is_some_and(|cap| inner.items.len() >= cap);
            if !full {
                // `item` is taken exactly once: the function returns right
                // after a successful push, so the `Some` is still intact
                // on every loop iteration that reaches this branch.
                #[allow(clippy::expect_used)]
                inner
                    .items
                    .push_back(item.take().expect("item consumed twice"));
                if let Some(waiter) = inner.pop_waiters.pop_front() {
                    let mut st = crate::locked(&self.kernel.state);
                    st.wake_now(waiter);
                }
                return;
            }
            inner.push_waiters.push_back(ctx.pid());
            ctx.park("queue.push", move |_st| drop(inner));
            // Re-check: space may have been re-taken by another producer
            // scheduled between our wake and our resumption.
        }
    }

    /// Removes and returns the front item, blocking the calling process
    /// while the queue is empty.
    #[must_use]
    pub fn pop(&self, ctx: &Ctx) -> T {
        loop {
            let mut inner = crate::locked(&self.inner);
            if let Some(item) = inner.items.pop_front() {
                if let Some(waiter) = inner.push_waiters.pop_front() {
                    let mut st = crate::locked(&self.kernel.state);
                    st.wake_now(waiter);
                }
                return item;
            }
            inner.pop_waiters.push_back(ctx.pid());
            ctx.park("queue.pop", move |_st| drop(inner));
        }
    }

    /// Removes and returns the front item, giving up after `timeout` —
    /// the analog of `multiprocessing.Queue.get(timeout=...)`, which
    /// PyTorch's main process uses to poll the data queue
    /// (`MP_STATUS_CHECK_INTERVAL`).
    ///
    /// Returns `None` on timeout. The calling process may be woken twice
    /// internally (item and timer race); both outcomes are handled.
    #[must_use]
    pub fn pop_timeout(&self, ctx: &Ctx, timeout: Span) -> Option<T> {
        let deadline = ctx.now() + timeout;
        loop {
            let mut inner = crate::locked(&self.inner);
            if let Some(item) = inner.items.pop_front() {
                if let Some(waiter) = inner.push_waiters.pop_front() {
                    let mut st = crate::locked(&self.kernel.state);
                    st.wake_now(waiter);
                }
                return Some(item);
            }
            if ctx.now() >= deadline {
                return None;
            }
            let pid = ctx.pid();
            inner.pop_waiters.push_back(pid);
            // Arm both wake sources: a push (targeted wake) and the
            // timeout. Whichever fires first wins; the loser's event goes
            // stale via the wake-generation check.
            ctx.park("queue.pop_timeout", move |st| {
                st.schedule_wake_at(pid, deadline);
                drop(inner);
            });
            // Either an item arrived, or we timed out; re-check both. A
            // stale waiter registration is harmless: push wakes are
            // generation-checked, and duplicate registrations are pruned
            // below.
            let mut inner = crate::locked(&self.inner);
            inner.pop_waiters.retain(|&w| w != pid);
            drop(inner);
        }
    }

    /// Removes and returns the front item if one is available, without
    /// blocking.
    #[must_use]
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = crate::locked(&self.inner);
        let item = inner.items.pop_front();
        if item.is_some() {
            if let Some(waiter) = inner.push_waiters.pop_front() {
                let mut st = crate::locked(&self.kernel.state);
                st.wake_now(waiter);
            }
        }
        item
    }
}
