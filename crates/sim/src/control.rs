//! Schedule control: a hook that lets an external driver resolve the
//! kernel's nondeterministic choices.
//!
//! An uncontrolled [`crate::Simulation`] breaks ties between events at the
//! same virtual time by sequence number (creation order), which is one
//! fixed — if arbitrary — interleaving. A [`ScheduleController`] exposes
//! those tie-breaks as explicit **decision points**: whenever two or more
//! processes are runnable at the same instant, the kernel asks the
//! controller which one to dispatch. A model checker can then enumerate
//! schedules systematically, and any schedule it finds can be replayed
//! deterministically with a [`GuidedController`].
//!
//! The controller also sees every scheduler dispatch via
//! [`ScheduleController::on_step`], which doubles as a livelock bound: a
//! protocol bug that makes the simulation spin forever (for example a main
//! process polling a queue that will never be filled) is cut off with
//! [`crate::SimError::StepLimit`] instead of hanging the host.

use std::sync::{Arc, Mutex};

use crate::kernel::Pid;
use crate::time::Time;

/// One runnable process at a scheduler decision point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Choice {
    /// Process that would be dispatched.
    pub pid: Pid,
    /// Name the process was spawned with.
    pub process: String,
}

/// A point where the scheduler must pick among several runnable processes
/// at the same virtual time.
///
/// `choices` is ordered by event sequence number, so index 0 is the
/// process the uncontrolled kernel would have dispatched.
#[derive(Debug)]
pub struct DecisionPoint<'a> {
    /// Virtual time of the tied events.
    pub now: Time,
    /// Scheduler dispatches completed so far in this run.
    pub step: u64,
    /// Structural hash of the kernel state (process states, wake
    /// generations and the pending wake set, with event sequence numbers
    /// deliberately excluded so converging schedules hash equal). Used by
    /// explorers to prune revisited states.
    pub state_hash: u64,
    /// The runnable processes; always at least two entries.
    pub choices: &'a [Choice],
}

/// Resolves the kernel's nondeterministic choices.
///
/// Installed with [`crate::Simulation::set_controller`]. Implementations
/// must be deterministic functions of the decision points they have seen
/// (no wall-clock, no OS entropy), or replay guarantees are lost.
pub trait ScheduleController: Send + Sync {
    /// Picks the index into [`DecisionPoint::choices`] to dispatch.
    /// Out-of-range returns are clamped to the last choice.
    fn pick(&self, point: &DecisionPoint<'_>) -> usize;

    /// Called once per scheduler dispatch with the running step count;
    /// returning `false` aborts the run with
    /// [`crate::SimError::StepLimit`]. The default never aborts.
    fn on_step(&self, step: u64) -> bool {
        let _ = step;
        true
    }
}

/// The identity controller: always picks choice 0 (lowest sequence
/// number), reproducing the uncontrolled kernel's FIFO tie-break exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoController;

impl ScheduleController for FifoController {
    fn pick(&self, _point: &DecisionPoint<'_>) -> usize {
        0
    }
}

/// What a [`GuidedController`] recorded at one decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Number of runnable processes that were tied.
    pub branches: usize,
    /// Index actually dispatched.
    pub taken: usize,
    /// Structural state hash at the decision point.
    pub state_hash: u64,
    /// Scheduler step count at the decision point.
    pub step: u64,
    /// Virtual time of the decision.
    pub now: Time,
}

/// Replays a schedule prefix and records every decision point it passes.
///
/// The controller follows `prefix` choice by choice; past the end of the
/// prefix it falls back to choice 0 (the FIFO default). Out-of-range
/// prefix entries are clamped, so a schedule minimized for one run still
/// replays meaningfully if branching shrinks. A `max_steps` of 0 means
/// unbounded.
///
/// This is both the explorer's probe (run a prefix, harvest the branch
/// counts and state hashes seen) and the counterexample replayer (run the
/// final schedule and watch it fail the same way every time).
#[derive(Debug)]
pub struct GuidedController {
    prefix: Vec<usize>,
    max_steps: u64,
    decisions: Mutex<Vec<DecisionRecord>>,
}

impl GuidedController {
    /// A controller that follows `prefix` then FIFO, aborting any run that
    /// exceeds `max_steps` scheduler dispatches (0 = unbounded).
    #[must_use]
    pub fn new(prefix: Vec<usize>, max_steps: u64) -> Arc<GuidedController> {
        Arc::new(GuidedController {
            prefix,
            max_steps,
            decisions: Mutex::new(Vec::new()),
        })
    }

    /// The decision points recorded so far, in order.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the internal
    /// lock (cannot happen under the kernel's single-runner discipline).
    #[must_use]
    pub fn decisions(&self) -> Vec<DecisionRecord> {
        crate::locked(&self.decisions).clone()
    }
}

impl ScheduleController for GuidedController {
    fn pick(&self, point: &DecisionPoint<'_>) -> usize {
        let mut log = crate::locked(&self.decisions);
        let position = log.len();
        let want = self.prefix.get(position).copied().unwrap_or(0);
        let taken = want.min(point.choices.len().saturating_sub(1));
        log.push(DecisionRecord {
            branches: point.choices.len(),
            taken,
            state_hash: point.state_hash,
            step: point.step,
            now: point.now,
        });
        taken
    }

    fn on_step(&self, step: u64) -> bool {
        self.max_steps == 0 || step <= self.max_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guided_follows_prefix_then_fifo_and_clamps() {
        let guide = GuidedController::new(vec![1, 7], 0);
        let choices = vec![
            Choice {
                pid: Pid(0),
                process: "a".into(),
            },
            Choice {
                pid: Pid(1),
                process: "b".into(),
            },
        ];
        let point = |step| DecisionPoint {
            now: Time::ZERO,
            step,
            state_hash: 0,
            choices: &choices,
        };
        assert_eq!(guide.pick(&point(0)), 1); // prefix[0]
        assert_eq!(guide.pick(&point(1)), 1); // prefix[1] = 7, clamped
        assert_eq!(guide.pick(&point(2)), 0); // past the prefix: FIFO
        let log = guide.decisions();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].taken, 1);
        assert_eq!(log[1].taken, 1);
        assert_eq!(log[2].taken, 0);
        assert!(log.iter().all(|d| d.branches == 2));
    }

    #[test]
    fn step_limit_zero_is_unbounded() {
        let guide = GuidedController::new(vec![], 0);
        assert!(guide.on_step(u64::MAX));
        let bounded = GuidedController::new(vec![], 10);
        assert!(bounded.on_step(10));
        assert!(!bounded.on_step(11));
    }
}
