//! The [`Simulation`] front-end: spawning processes and running the
//! scheduler to completion.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::control::ScheduleController;
use crate::ctx::Ctx;
use crate::error::SimError;
use crate::kernel::{Kernel, Pid, ShutdownSignal};
use crate::time::Time;

/// A deterministic discrete-event simulation.
///
/// Processes are spawned with [`Simulation::spawn`] (or dynamically with
/// [`Ctx::spawn`]) and communicate over [`crate::Queue`]s; [`Simulation::run`]
/// drives virtual time forward until every process finishes.
///
/// Determinism: exactly one process executes at a time, events at equal
/// virtual time fire in creation order, and no wall-clock values leak in, so
/// two runs of the same program produce identical traces.
///
/// ```
/// use lotus_sim::{Queue, Simulation, Span};
///
/// let mut sim = Simulation::new();
/// let q = sim.queue::<u32>("numbers", Some(1));
/// let tx = q.clone();
/// sim.spawn("producer", move |ctx| {
///     for i in 0..3 {
///         ctx.delay(Span::from_micros(10));
///         tx.push(&ctx, i);
///     }
/// });
/// sim.spawn("consumer", move |ctx| {
///     for expect in 0..3 {
///         assert_eq!(q.pop(&ctx), expect);
///     }
/// });
/// let report = sim.run().unwrap();
/// assert_eq!(report.end_time.as_nanos(), 30_000);
/// ```
pub struct Simulation {
    kernel: Arc<Kernel>,
    threads: ThreadRegistry,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = crate::locked(&self.kernel.state);
        f.debug_struct("Simulation")
            .field("now", &st.now)
            .field("processes", &st.procs.len())
            .finish()
    }
}

/// Summary returned by a successful [`Simulation::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Virtual time at which the last process finished.
    pub end_time: Time,
    /// Number of processes that ran over the simulation's lifetime.
    pub processes: usize,
}

/// Shared registry of the OS threads backing one simulation's processes.
type ThreadRegistry = Arc<Mutex<Vec<JoinHandle<()>>>>;

thread_local! {
    static THREAD_REGISTRY: std::cell::RefCell<Option<ThreadRegistry>> =
        const { std::cell::RefCell::new(None) };
}

impl Simulation {
    /// Creates an empty simulation with the clock at [`Time::ZERO`].
    #[must_use]
    pub fn new() -> Simulation {
        Simulation {
            kernel: Kernel::new(),
            threads: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Spawns a process that will start at the current virtual time when
    /// [`Simulation::run`] is (next) called. Returns its [`Pid`].
    pub fn spawn<F>(&mut self, name: impl Into<String>, body: F) -> Pid
    where
        F: FnOnce(Ctx) + Send + 'static,
    {
        register_thread_registry(&self.threads);
        spawn_process(&self.kernel, name.into(), body)
    }

    /// Creates a simulated queue bound to this simulation.
    ///
    /// `capacity` of `None` means unbounded; `Some(n)` blocks pushers when
    /// `n` items are in flight.
    #[must_use]
    pub fn queue<T: Send + 'static>(
        &mut self,
        name: impl Into<String>,
        capacity: Option<usize>,
    ) -> crate::Queue<T> {
        crate::Queue::new(Arc::clone(&self.kernel), name.into(), capacity)
    }

    /// Creates a pool of `cores` CPU cores bound to this simulation.
    #[must_use]
    pub fn core_pool(&mut self, cores: usize) -> crate::CorePool {
        crate::CorePool::new(Arc::clone(&self.kernel), cores)
    }

    /// Runs the simulation until every process has finished.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the event queue drains while
    /// processes are still blocked, and [`SimError::ProcessPanic`] if any
    /// simulated process panics.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        let result = self.kernel.run_scheduler();
        match result {
            Ok(()) => {
                let st = crate::locked(&self.kernel.state);
                Ok(RunReport {
                    end_time: st.now,
                    processes: st.procs.len(),
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Current virtual time (useful after [`Simulation::run`] returns).
    #[must_use]
    pub fn now(&self) -> Time {
        crate::locked(&self.kernel.state).now
    }

    /// Installs a [`ScheduleController`] that resolves same-time
    /// tie-breaks and bounds the run's step count. Install before
    /// [`Simulation::run`]; without a controller the kernel keeps its
    /// FIFO (creation-order) tie-break.
    pub fn set_controller(&mut self, controller: Arc<dyn ScheduleController>) {
        crate::locked(&self.kernel.state).controller = Some(controller);
    }

    /// Scheduler dispatches completed so far (a size measure for model
    /// checking reports; useful after [`Simulation::run`] returns).
    #[must_use]
    pub fn steps(&self) -> u64 {
        crate::locked(&self.kernel.state).steps
    }
}

impl Default for Simulation {
    fn default() -> Self {
        Simulation::new()
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        self.kernel.begin_shutdown();
        let mut threads = crate::locked(&self.threads);
        for handle in threads.drain(..) {
            // A process thread can only terminate by finishing or unwinding
            // on the shutdown signal, both of which we have arranged.
            let _ = handle.join();
        }
    }
}

fn register_thread_registry(registry: &ThreadRegistry) {
    THREAD_REGISTRY.with(|slot| {
        *slot.borrow_mut() = Some(Arc::clone(registry));
    });
}

/// Spawns the OS thread backing a simulated process. Shared by
/// [`Simulation::spawn`] and [`Ctx::spawn`].
// Setup-time panics are deliberate: spawning outside a `Simulation` is
// programmer error, and an OS refusing to create a thread leaves no
// simulation to report an error through.
#[allow(clippy::expect_used)]
pub(crate) fn spawn_process<F>(kernel: &Arc<Kernel>, name: String, body: F) -> Pid
where
    F: FnOnce(Ctx) + Send + 'static,
{
    let (pid, baton) = {
        let mut st = crate::locked(&kernel.state);
        st.add_proc(name.clone())
    };
    let kernel_for_thread = Arc::clone(kernel);
    let registry = THREAD_REGISTRY
        .with(|slot| slot.borrow().clone())
        .expect("spawn_process called outside a Simulation");
    let registry_for_thread = Arc::clone(&registry);
    let handle = std::thread::Builder::new()
        .name(format!("sim-{name}"))
        .spawn(move || {
            // Child processes spawned from this thread must register into
            // the same simulation's thread registry.
            register_thread_registry(&registry_for_thread);
            // Wait for the scheduler to hand over the baton for the first
            // time (the spawn event).
            {
                let mut go = crate::locked(&baton.go);
                while !*go {
                    go = crate::cv_wait(&baton.cv, go);
                }
                *go = false;
            }
            if crate::locked(&kernel_for_thread.state).shutdown {
                return;
            }
            let ctx = Ctx::new(Arc::clone(&kernel_for_thread), pid, baton);
            let outcome = panic::catch_unwind(AssertUnwindSafe(move || body(ctx)));
            let panic_message = match outcome {
                Ok(()) => None,
                Err(payload) => {
                    if payload.is::<ShutdownSignal>() {
                        // Unwound by Simulation::drop; nothing left to do —
                        // the scheduler is no longer waiting on us.
                        return;
                    }
                    Some(render_panic(&*payload))
                }
            };
            kernel_for_thread.finish(pid, panic_message);
        })
        .expect("failed to spawn simulation thread");
    crate::locked(&registry).push(handle);
    pid
}

fn render_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
