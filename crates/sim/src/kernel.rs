//! The simulation kernel: event queue, process table and the
//! scheduler/process handoff protocol.
//!
//! Every simulated process runs on its own OS thread, but the kernel
//! guarantees that **at most one thread runs at a time**: the scheduler hands
//! a "baton" to exactly one process, which runs until it blocks (on a delay,
//! a queue, or a resource) and hands the baton back. Events at equal virtual
//! time are ordered by a monotonically increasing sequence number, so a run
//! is fully deterministic regardless of OS scheduling.
//!
//! Lock ordering (outermost first): process baton → user structure lock
//! (queue/pool) → kernel state. The scheduler never holds the kernel state
//! lock while acquiring a baton.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic;
use std::sync::{Arc, Condvar, Mutex};

use crate::control::{Choice, DecisionPoint, ScheduleController};
use crate::error::{BlockedProcess, SimError};
use crate::time::Time;

/// Identifier of a simulated process within one [`crate::Simulation`].
///
/// `Pid`s are dense indices assigned in spawn order; they are stable for the
/// lifetime of the simulation and suitable for use as map keys or display in
/// logs.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub(crate) u32);

impl Pid {
    /// The dense index of this process (spawn order).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Per-process wake-up baton. `go == true` means the process holds the right
/// to run; it consumes the permit when it wakes.
pub(crate) struct Baton {
    pub(crate) go: Mutex<bool>,
    pub(crate) cv: Condvar,
}

impl Baton {
    fn new() -> Arc<Baton> {
        Arc::new(Baton {
            go: Mutex::new(false),
            cv: Condvar::new(),
        })
    }
}

/// Sentinel panic payload used to unwind process stacks at shutdown.
pub(crate) struct ShutdownSignal;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Turn {
    Scheduler,
    Process(Pid),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcState {
    /// Blocked waiting for a wake event; the label describes what on.
    Blocked(&'static str),
    Running,
    Finished,
}

pub(crate) struct ProcSlot {
    pub(crate) name: String,
    pub(crate) state: ProcState,
    pub(crate) baton: Arc<Baton>,
    /// Incremented each time the process blocks; wake events carry the
    /// generation they target so stale events are skipped.
    pub(crate) wake_gen: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: Time,
    seq: u64,
    pid: Pid,
    gen: u64,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

pub(crate) struct KernelState {
    pub(crate) now: Time,
    next_seq: u64,
    events: BinaryHeap<Reverse<Event>>,
    pub(crate) procs: Vec<ProcSlot>,
    pub(crate) turn: Turn,
    pub(crate) shutdown: bool,
    pub(crate) panic: Option<(String, String)>,
    /// Resolves same-time tie-breaks when installed; `None` keeps the
    /// FIFO (sequence-number) order without the tie-collection overhead.
    pub(crate) controller: Option<Arc<dyn ScheduleController>>,
    /// Scheduler dispatches completed so far.
    pub(crate) steps: u64,
}

impl KernelState {
    /// Registers a new process slot and schedules its initial wake at the
    /// current virtual time. Returns the new pid.
    pub(crate) fn add_proc(&mut self, name: String) -> (Pid, Arc<Baton>) {
        // A pid space of u32 cannot be exhausted by a real experiment;
        // hitting this means a runaway spawn loop, with no recovery.
        #[allow(clippy::expect_used)]
        let pid = Pid(u32::try_from(self.procs.len()).expect("too many processes"));
        let baton = Baton::new();
        self.procs.push(ProcSlot {
            name,
            state: ProcState::Blocked("spawn"),
            baton: Arc::clone(&baton),
            wake_gen: 0,
        });
        let now = self.now;
        self.schedule_wake_at(pid, now);
        (pid, baton)
    }

    /// Marks the current process blocked and bumps its wake generation.
    /// Must be followed (in the same critical section) by scheduling a wake
    /// or registering the process with a waker (queue/pool).
    pub(crate) fn block_current(&mut self, pid: Pid, label: &'static str) {
        let slot = &mut self.procs[pid.index()];
        debug_assert_eq!(
            slot.state,
            ProcState::Running,
            "only a running process can block"
        );
        slot.state = ProcState::Blocked(label);
        slot.wake_gen += 1;
        self.turn = Turn::Scheduler;
    }

    /// Schedules a wake event for `pid` at time `at`, targeting its current
    /// wake generation.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub(crate) fn schedule_wake_at(&mut self, pid: Pid, at: Time) {
        assert!(at >= self.now, "cannot schedule a wake in the past");
        let gen = self.procs[pid.index()].wake_gen;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Reverse(Event {
            time: at,
            seq,
            pid,
            gen,
        }));
    }

    /// Schedules a wake for `pid` at the current virtual time.
    pub(crate) fn wake_now(&mut self, pid: Pid) {
        let now = self.now;
        self.schedule_wake_at(pid, now);
    }

    fn is_stale(&self, ev: &Event) -> bool {
        let slot = &self.procs[ev.pid.index()];
        slot.wake_gen != ev.gen || !matches!(slot.state, ProcState::Blocked(_))
    }

    fn pop_runnable(&mut self) -> Option<Event> {
        let Some(controller) = self.controller.clone() else {
            while let Some(Reverse(ev)) = self.events.pop() {
                if !self.is_stale(&ev) {
                    return Some(ev);
                }
            }
            return None;
        };
        // Controlled: gather every runnable event tied at the earliest
        // ready time and let the controller break the tie. Unchosen events
        // go back with their original sequence numbers, so a controller
        // that always picks index 0 reproduces the FIFO order exactly.
        let mut ready: Vec<Event> = Vec::new();
        while let Some(Reverse(head)) = self.events.peek() {
            if ready.first().is_some_and(|first| head.time != first.time) {
                break;
            }
            let Some(Reverse(ev)) = self.events.pop() else {
                break; // unreachable: the peek above saw this event
            };
            if !self.is_stale(&ev) {
                ready.push(ev);
            }
        }
        if ready.is_empty() {
            return None;
        }
        let chosen = if ready.len() == 1 {
            0
        } else {
            let choices: Vec<Choice> = ready
                .iter()
                .map(|ev| Choice {
                    pid: ev.pid,
                    process: self.procs[ev.pid.index()].name.clone(),
                })
                .collect();
            let point = DecisionPoint {
                now: ready[0].time,
                step: self.steps,
                state_hash: self.state_hash(&ready),
                choices: &choices,
            };
            controller.pick(&point).min(ready.len() - 1)
        };
        let ev = ready.remove(chosen);
        for other in ready {
            self.events.push(Reverse(other));
        }
        Some(ev)
    }

    /// Structural FNV-1a hash of the schedulable state: process states,
    /// wake generations and the pending wake set. Event sequence numbers
    /// are deliberately excluded so that two different schedules which
    /// converge on the same semantic state hash equal (enabling explorer
    /// pruning); collisions only cost pruning precision, never soundness
    /// of a reported violation.
    fn state_hash(&self, ready: &[Event]) -> u64 {
        struct Fnv(u64);
        impl Fnv {
            fn mix_bytes(&mut self, bytes: &[u8]) {
                for &byte in bytes {
                    self.0 ^= u64::from(byte);
                    self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
            fn mix(&mut self, value: u64) {
                self.mix_bytes(&value.to_le_bytes());
            }
        }
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        h.mix(ready[0].time.as_nanos());
        for slot in &self.procs {
            let state_tag = match slot.state {
                ProcState::Blocked(label) => {
                    // Hash the label content: it encodes *what* the
                    // process is waiting on.
                    h.mix_bytes(label.as_bytes());
                    1
                }
                ProcState::Running => 2,
                ProcState::Finished => 3,
            };
            h.mix(state_tag);
            h.mix(slot.wake_gen);
        }
        let mut pending: Vec<(u64, u32, u64)> = self
            .events
            .iter()
            .map(|Reverse(ev)| (ev.time.as_nanos(), ev.pid.0, ev.gen))
            .collect();
        pending.extend(
            ready
                .iter()
                .map(|ev| (ev.time.as_nanos(), ev.pid.0, ev.gen)),
        );
        pending.sort_unstable();
        for (time, pid, gen) in pending {
            h.mix(time);
            h.mix(u64::from(pid));
            h.mix(gen);
        }
        h.0
    }

    fn blocked_report(&self) -> Vec<BlockedProcess> {
        self.procs
            .iter()
            .filter_map(|p| match p.state {
                ProcState::Blocked(label) => Some(BlockedProcess {
                    name: p.name.clone(),
                    waiting_on: label.to_string(),
                }),
                _ => None,
            })
            .collect()
    }
}

pub(crate) struct Kernel {
    pub(crate) state: Mutex<KernelState>,
    pub(crate) sched_cv: Condvar,
}

impl Kernel {
    pub(crate) fn new() -> Arc<Kernel> {
        Arc::new(Kernel {
            state: Mutex::new(KernelState {
                now: Time::ZERO,
                next_seq: 0,
                events: BinaryHeap::new(),
                procs: Vec::new(),
                turn: Turn::Scheduler,
                shutdown: false,
                panic: None,
                controller: None,
                steps: 0,
            }),
            sched_cv: Condvar::new(),
        })
    }

    /// Parks the calling process until the scheduler grants it the baton.
    /// `prepare` runs under the kernel state lock *after* the process has
    /// been marked blocked (so wake events it schedules target the right
    /// generation); it typically schedules a timed wake or registers the
    /// process with a queue. Any user-structure lock guard the caller still
    /// holds should be moved into `prepare` and dropped there.
    pub(crate) fn park<F>(&self, pid: Pid, baton: &Baton, label: &'static str, prepare: F)
    where
        F: FnOnce(&mut KernelState),
    {
        let mut go = crate::locked(&baton.go);
        {
            let mut st = crate::locked(&self.state);
            st.block_current(pid, label);
            prepare(&mut st);
            self.sched_cv.notify_one();
        }
        while !*go {
            go = crate::cv_wait(&baton.cv, go);
        }
        *go = false;
        drop(go);
        if crate::locked(&self.state).shutdown {
            panic::resume_unwind(Box::new(ShutdownSignal));
        }
    }

    /// Runs the scheduler loop until all processes finish.
    pub(crate) fn run_scheduler(&self) -> Result<(), SimError> {
        loop {
            let resume = {
                let mut st = crate::locked(&self.state);
                debug_assert_eq!(st.turn, Turn::Scheduler);
                match st.pop_runnable() {
                    Some(ev) => {
                        st.steps += 1;
                        if let Some(controller) = st.controller.clone() {
                            if !controller.on_step(st.steps) {
                                return Err(SimError::StepLimit { steps: st.steps });
                            }
                        }
                        st.now = ev.time;
                        st.turn = Turn::Process(ev.pid);
                        let slot = &mut st.procs[ev.pid.index()];
                        slot.state = ProcState::Running;
                        Some(Arc::clone(&slot.baton))
                    }
                    None => {
                        let blocked = st.blocked_report();
                        if blocked.is_empty() {
                            return Ok(());
                        }
                        return Err(SimError::Deadlock { blocked });
                    }
                }
            };
            if let Some(baton) = resume {
                {
                    let mut go = crate::locked(&baton.go);
                    *go = true;
                    baton.cv.notify_one();
                }
                let mut st = crate::locked(&self.state);
                while st.turn != Turn::Scheduler {
                    st = crate::cv_wait(&self.sched_cv, st);
                }
                if let Some((process, message)) = st.panic.take() {
                    st.shutdown = true;
                    return Err(SimError::ProcessPanic { process, message });
                }
            }
        }
    }

    /// Wakes every parked thread with the shutdown flag set so their stacks
    /// unwind; called from `Simulation::drop`.
    pub(crate) fn begin_shutdown(&self) {
        let batons: Vec<Arc<Baton>> = {
            let mut st = crate::locked(&self.state);
            st.shutdown = true;
            st.procs
                .iter()
                .filter(|p| !matches!(p.state, ProcState::Finished))
                .map(|p| Arc::clone(&p.baton))
                .collect()
        };
        for baton in batons {
            let mut go = crate::locked(&baton.go);
            *go = true;
            baton.cv.notify_one();
        }
    }

    /// Marks the calling process finished and returns the baton to the
    /// scheduler. `panic_message`, if set, aborts the whole simulation.
    pub(crate) fn finish(&self, pid: Pid, panic_message: Option<String>) {
        let mut st = crate::locked(&self.state);
        let name = st.procs[pid.index()].name.clone();
        st.procs[pid.index()].state = ProcState::Finished;
        if let Some(message) = panic_message {
            st.panic = Some((name, message));
        }
        st.turn = Turn::Scheduler;
        self.sched_cv.notify_one();
    }
}
