//! The handle a simulated process uses to interact with the simulation.

use std::sync::Arc;

use crate::kernel::{Baton, Kernel, KernelState, Pid};
use crate::time::{Span, Time};

/// Capability handle passed to every simulated process.
///
/// A `Ctx` identifies the calling process and gives it access to the virtual
/// clock, timed delays and dynamic process spawning. Queue and resource
/// operations ([`crate::Queue`], [`crate::CorePool`]) also take a `&Ctx` so
/// they can block the right process.
///
/// ```
/// use lotus_sim::{Simulation, Span};
///
/// let mut sim = Simulation::new();
/// sim.spawn("ticker", |ctx| {
///     ctx.delay(Span::from_millis(5));
///     assert_eq!(ctx.now().as_nanos(), 5_000_000);
/// });
/// sim.run().unwrap();
/// ```
pub struct Ctx {
    kernel: Arc<Kernel>,
    pid: Pid,
    baton: Arc<Baton>,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx").field("pid", &self.pid).finish()
    }
}

impl Ctx {
    pub(crate) fn new(kernel: Arc<Kernel>, pid: Pid, baton: Arc<Baton>) -> Ctx {
        Ctx { kernel, pid, baton }
    }

    /// The calling process's identifier.
    #[must_use]
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The name this process was spawned with.
    #[must_use]
    pub fn name(&self) -> String {
        let st = crate::locked(&self.kernel.state);
        st.procs[self.pid.index()].name.clone()
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Time {
        crate::locked(&self.kernel.state).now
    }

    /// Advances this process's virtual time by `span`, letting other
    /// processes run in the meantime. A zero-length delay yields to any
    /// other process scheduled at the same instant.
    pub fn delay(&self, span: Span) {
        let pid = self.pid;
        self.kernel
            .park(pid, &self.baton, "delay", |st: &mut KernelState| {
                let at = st.now + span;
                st.schedule_wake_at(pid, at);
            });
    }

    /// Spawns a new process that starts at the current virtual time.
    /// Returns its [`Pid`].
    pub fn spawn<F>(&self, name: impl Into<String>, body: F) -> Pid
    where
        F: FnOnce(Ctx) + Send + 'static,
    {
        crate::sim::spawn_process(&self.kernel, name.into(), body)
    }

    /// Parks this process; see [`Kernel::park`].
    pub(crate) fn park<F>(&self, label: &'static str, prepare: F)
    where
        F: FnOnce(&mut KernelState),
    {
        self.kernel.park(self.pid, &self.baton, label, prepare);
    }
}
