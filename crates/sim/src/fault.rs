//! Deterministic, seed-driven fault injection plans.
//!
//! A [`FaultPlan`] describes which faults a simulated run should suffer:
//! worker processes killed at a chosen virtual time, per-sample errors
//! injected with a fixed probability, and queues slowed by a factor. The
//! plan is *declarative* — consumers (the DataLoader model in
//! `lotus-dataflow`) query it at the relevant decision points — and every
//! decision is a pure function of `(seed, rule, sample index)`, so a plan
//! produces the same faults on every run **and** the same per-sample
//! verdicts even when a batch is re-dispatched to a different worker.

use crate::time::Time;

/// A per-sample error-injection rule.
#[derive(Debug, Clone, PartialEq)]
struct SampleErrorRule {
    /// The operation name the injected error reports (e.g. `"Decode"`).
    op: String,
    /// Probability in `[0, 1]` that a given sample index fails.
    probability: f64,
}

/// A per-sample slowdown rule: a fraction of samples cost `factor`× their
/// modeled preprocessing time (the skewed per-sample cost distributions
/// MinatoLoader characterizes — a corrupted shard, an outlier-sized
/// record, a cold cache line).
#[derive(Debug, Clone, PartialEq)]
struct SlowSampleRule {
    /// Probability in `[0, 1]` that a given sample index is slow.
    probability: f64,
    /// Multiplier (`>= 1`) applied to the sample's processing cost.
    factor: f64,
}

/// A deterministic plan of faults to inject into a simulated run.
///
/// Build one with the fluent constructors and hand it to a training job:
///
/// ```
/// use lotus_sim::{FaultPlan, Span, Time};
///
/// let plan = FaultPlan::new(7)
///     .kill_process("dataloader1", Time::ZERO + Span::from_millis(40))
///     .inject_sample_errors("Decode", 0.01)
///     .slow_queue("data_queue", 4.0);
/// assert!(!plan.is_empty());
/// assert!(plan.kill_time("dataloader1").is_some());
/// assert!(plan.kill_time("dataloader0").is_none());
/// assert_eq!(plan.queue_factor("data_queue"), 4.0);
/// assert_eq!(plan.queue_factor("index_queue_0"), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    kills: Vec<(String, Time)>,
    sample_errors: Vec<SampleErrorRule>,
    queue_slowdowns: Vec<(String, f64)>,
    slow_samples: Vec<SlowSampleRule>,
}

impl FaultPlan {
    /// An empty plan whose per-sample decisions derive from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Kills the process named `process` at virtual time `at` (the
    /// simulated analog of `kill -9` on a DataLoader worker).
    #[must_use]
    pub fn kill_process(mut self, process: impl Into<String>, at: Time) -> FaultPlan {
        self.kills.push((process.into(), at));
        self
    }

    /// Fails each sample independently with probability `probability`,
    /// reporting `op` as the failing operation.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= probability <= 1.0`.
    #[must_use]
    pub fn inject_sample_errors(mut self, op: impl Into<String>, probability: f64) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability out of range: {probability}"
        );
        self.sample_errors.push(SampleErrorRule {
            op: op.into(),
            probability,
        });
        self
    }

    /// Multiplies the serialization/deserialization cost of the queue
    /// named `name` by `factor` (a degraded IPC channel).
    ///
    /// # Panics
    ///
    /// Panics unless `factor >= 1.0`.
    #[must_use]
    pub fn slow_queue(mut self, name: impl Into<String>, factor: f64) -> FaultPlan {
        assert!(factor >= 1.0, "slowdown factor must be >= 1, got {factor}");
        self.queue_slowdowns.push((name.into(), factor));
        self
    }

    /// Slows each sample independently with probability `probability`,
    /// multiplying its processing cost by `factor`. Like
    /// [`sample_error`](FaultPlan::sample_error) verdicts, the slow set is
    /// a pure function of `(seed, rule, index)`, so a slow sample is slow
    /// on every worker it is (re-)dispatched to.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= probability <= 1.0` and `factor >= 1.0`.
    #[must_use]
    pub fn slow_samples(mut self, probability: f64, factor: f64) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability out of range: {probability}"
        );
        assert!(factor >= 1.0, "slowdown factor must be >= 1, got {factor}");
        self.slow_samples.push(SlowSampleRule {
            probability,
            factor,
        });
        self
    }

    /// True when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
            && self.sample_errors.is_empty()
            && self.queue_slowdowns.is_empty()
            && self.slow_samples.is_empty()
    }

    /// The virtual time at which `process` dies, if the plan kills it.
    #[must_use]
    pub fn kill_time(&self, process: &str) -> Option<Time> {
        self.kills
            .iter()
            .find(|(name, _)| name == process)
            .map(|&(_, at)| at)
    }

    /// The error-injection verdict for sample `index`: `Some(op)` when an
    /// injection rule fires, with `op` the operation name the error should
    /// report.
    ///
    /// The verdict hashes `(seed, rule, index)` — it does **not** consume
    /// any shared RNG stream — so it is independent of which worker
    /// processes the sample and of processing order. Re-dispatching a
    /// batch after a worker death reproduces the identical verdicts.
    #[must_use]
    pub fn sample_error(&self, index: u64) -> Option<&str> {
        for (rule_idx, rule) in self.sample_errors.iter().enumerate() {
            let h = mix(self.seed ^ mix(index ^ mix(rule_idx as u64)));
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            if unit < rule.probability {
                return Some(&rule.op);
            }
        }
        None
    }

    /// The cost multiplier for sample `index` (`1.0` when no slow-sample
    /// rule fires). Stacked rules compose multiplicatively. The verdict
    /// hashes `(seed, rule, index)` — independent of worker and
    /// processing order, exactly like [`sample_error`](FaultPlan::sample_error).
    #[must_use]
    pub fn sample_slowdown(&self, index: u64) -> f64 {
        let mut factor = 1.0;
        for (rule_idx, rule) in self.slow_samples.iter().enumerate() {
            // Salt the rule index so slow-sample rules draw verdicts
            // independent of error rules at the same position.
            let h = mix(self.seed ^ mix(index ^ mix(0x51_00 + rule_idx as u64)));
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            if unit < rule.probability {
                factor *= rule.factor;
            }
        }
        factor
    }

    /// The slowdown factor for the queue named `name` (`1.0` when the
    /// plan leaves it untouched).
    #[must_use]
    pub fn queue_factor(&self, name: &str) -> f64 {
        self.queue_slowdowns
            .iter()
            .filter(|(n, _)| n == name)
            .map(|&(_, f)| f)
            .product()
    }

    /// A stable one-line fingerprint of the full plan — every rule in
    /// insertion order plus the seed — for use in content-addressed
    /// cache keys. Two plans injecting the same faults produce the same
    /// fingerprint; any differing rule, time, probability, or seed
    /// changes it.
    ///
    /// ```
    /// use lotus_sim::{FaultPlan, Span, Time};
    ///
    /// let plan = FaultPlan::new(7)
    ///     .kill_process("dataloader1", Time::ZERO + Span::from_millis(40))
    ///     .inject_sample_errors("Decode", 0.01);
    /// assert_eq!(plan.fingerprint(), "seed=0x7;kill=dataloader1@40000000;err=Decode:0.01");
    /// assert_eq!(FaultPlan::default().fingerprint(), "seed=0x0");
    /// ```
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut out = format!("seed={:#x}", self.seed);
        for (process, at) in &self.kills {
            out.push_str(&format!(";kill={process}@{}", at.as_nanos()));
        }
        for rule in &self.sample_errors {
            out.push_str(&format!(";err={}:{}", rule.op, rule.probability));
        }
        for (name, factor) in &self.queue_slowdowns {
            out.push_str(&format!(";slow={name}:{factor}"));
        }
        for rule in &self.slow_samples {
            out.push_str(&format!(";lag={}:{}", rule.probability, rule.factor));
        }
        out
    }
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash of `z`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Span;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new(1);
        assert!(plan.is_empty());
        assert!(plan.kill_time("dataloader0").is_none());
        assert_eq!(plan.queue_factor("data_queue"), 1.0);
        assert!((0..10_000).all(|i| plan.sample_error(i).is_none()));
    }

    #[test]
    fn sample_error_rate_approximates_the_probability() {
        let plan = FaultPlan::new(42).inject_sample_errors("Decode", 0.1);
        let n = 100_000;
        let hits = (0..n).filter(|&i| plan.sample_error(i).is_some()).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn verdicts_are_order_independent_and_deterministic() {
        let plan = FaultPlan::new(9).inject_sample_errors("ToTensor", 0.05);
        let forward: Vec<bool> = (0..1_000).map(|i| plan.sample_error(i).is_some()).collect();
        let backward: Vec<bool> = (0..1_000)
            .rev()
            .map(|i| plan.sample_error(i).is_some())
            .collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        assert_eq!(
            forward,
            (0..1_000)
                .map(|i| plan.clone().sample_error(i).is_some())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_give_different_verdict_sets() {
        let a = FaultPlan::new(1).inject_sample_errors("Decode", 0.5);
        let b = FaultPlan::new(2).inject_sample_errors("Decode", 0.5);
        let va: Vec<bool> = (0..256).map(|i| a.sample_error(i).is_some()).collect();
        let vb: Vec<bool> = (0..256).map(|i| b.sample_error(i).is_some()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn first_matching_rule_names_the_op() {
        let plan = FaultPlan::new(3).inject_sample_errors("Decode", 1.0);
        assert_eq!(plan.sample_error(17), Some("Decode"));
    }

    #[test]
    fn kill_and_slowdown_lookups() {
        let at = Time::ZERO + Span::from_millis(25);
        let plan = FaultPlan::new(0)
            .kill_process("dataloader2", at)
            .slow_queue("data_queue", 2.0)
            .slow_queue("data_queue", 3.0);
        assert_eq!(plan.kill_time("dataloader2"), Some(at));
        assert_eq!(plan.kill_time("dataloader1"), None);
        // Stacked slowdowns compose multiplicatively.
        assert_eq!(plan.queue_factor("data_queue"), 6.0);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn out_of_range_probability_is_rejected() {
        let _ = FaultPlan::new(0).inject_sample_errors("Decode", 1.5);
    }

    #[test]
    fn slow_sample_rate_approximates_the_probability() {
        let plan = FaultPlan::new(11).slow_samples(0.1, 8.0);
        let n = 100_000;
        let hits = (0..n).filter(|&i| plan.sample_slowdown(i) > 1.0).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.005, "rate {rate}");
        // Every firing index gets exactly the configured factor.
        assert!((0..n).all(|i| {
            let f = plan.sample_slowdown(i);
            f == 1.0 || f == 8.0
        }));
    }

    #[test]
    fn slow_sample_verdicts_are_independent_of_error_rules() {
        // A slow-sample rule at position 0 must not share its verdict set
        // with an error rule at position 0 under the same seed.
        let slow = FaultPlan::new(5).slow_samples(0.5, 2.0);
        let err = FaultPlan::new(5).inject_sample_errors("Decode", 0.5);
        let vs: Vec<bool> = (0..256).map(|i| slow.sample_slowdown(i) > 1.0).collect();
        let ve: Vec<bool> = (0..256).map(|i| err.sample_error(i).is_some()).collect();
        assert_ne!(vs, ve);
    }

    #[test]
    fn stacked_slow_rules_compose_multiplicatively() {
        let plan = FaultPlan::new(0)
            .slow_samples(1.0, 2.0)
            .slow_samples(1.0, 3.0);
        assert_eq!(plan.sample_slowdown(17), 6.0);
        assert!(!plan.is_empty());
    }

    #[test]
    fn slow_samples_extend_the_fingerprint() {
        let plan = FaultPlan::new(7).slow_samples(0.05, 50.0);
        assert_eq!(plan.fingerprint(), "seed=0x7;lag=0.05:50");
    }

    #[test]
    #[should_panic(expected = "slowdown factor must be >= 1")]
    fn sub_unit_slow_factor_is_rejected() {
        let _ = FaultPlan::new(0).slow_samples(0.5, 0.5);
    }
}
