//! # lotus-sim — deterministic discrete-event simulation kernel
//!
//! The substrate underneath the Lotus reproduction: a process-oriented
//! discrete-event simulator with a nanosecond virtual clock. Simulated
//! processes are written as ordinary Rust closures that block on
//! [`Ctx::delay`], [`Queue`] operations and [`CorePool`] acquisition; the
//! scheduler interleaves them deterministically, so every experiment in the
//! repository is exactly reproducible.
//!
//! ## Example
//!
//! ```
//! use lotus_sim::{Simulation, Span};
//!
//! let mut sim = Simulation::new();
//! let q = sim.queue::<&'static str>("greetings", None);
//! let tx = q.clone();
//! sim.spawn("producer", move |ctx| {
//!     ctx.delay(Span::from_millis(1));
//!     tx.push(&ctx, "hello");
//! });
//! sim.spawn("consumer", move |ctx| {
//!     let msg = q.pop(&ctx);
//!     assert_eq!(msg, "hello");
//!     assert_eq!(ctx.now(), lotus_sim::Time::ZERO + Span::from_millis(1));
//! });
//! sim.run()?;
//! # Ok::<(), lotus_sim::SimError>(())
//! ```
//!
//! ## Determinism guarantees
//!
//! * At most one process executes at any moment (threads are used only as
//!   coroutines).
//! * Events at equal virtual time fire in the order they were scheduled.
//! * No wall-clock time or OS entropy is consulted anywhere.

#![warn(missing_docs)]
// The whole workspace is safe Rust; determinism and auditability both
// lean on it. Gate any future exception through a crate-level decision.
#![deny(unsafe_code)]
// Library code must surface failures as typed errors; every remaining
// panic site carries a targeted `#[allow]` with its invariant argument.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::sync::{Condvar, Mutex, MutexGuard};

/// Locks `mutex`, panicking on poisoning.
///
/// Poisoning is unreachable by construction: simulated-process panics
/// are caught by `catch_unwind` in `spawn_process` before they can
/// unwind past a kernel lock, so a poisoned lock means the simulator
/// itself is broken and no recovery is meaningful. This is the one
/// sanctioned lock-acquisition panic site in the crate;
/// `#[track_caller]` keeps the panic pointing at the real call site.
#[allow(clippy::expect_used)]
#[track_caller]
pub(crate) fn locked<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().expect("lock poisoned")
}

/// Waits on `cv`, panicking on poisoning — same invariant as [`locked`].
#[allow(clippy::expect_used)]
#[track_caller]
pub(crate) fn cv_wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).expect("lock poisoned")
}

mod clock;
mod control;
mod ctx;
mod error;
mod fault;
mod kernel;
mod pool;
mod queue;
mod sim;
mod storage;
mod time;

pub use clock::{TimeSource, WallClock};
pub use control::{
    Choice, DecisionPoint, DecisionRecord, FifoController, GuidedController, ScheduleController,
};
pub use ctx::Ctx;
pub use error::{BlockedProcess, SimError};
pub use fault::FaultPlan;
pub use kernel::Pid;
pub use pool::{CoreGuard, CorePool};
pub use queue::Queue;
pub use sim::{RunReport, Simulation};
pub use storage::{
    DeviceModel, FileLayout, ReadOutcome, Storage, StorageConfig, StorageCounters, StorageTier,
    PAGE_BYTES,
};
pub use time::{Span, Time};
