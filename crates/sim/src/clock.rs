//! Time sources: where "now" comes from.
//!
//! The simulated engine reads `Ctx::now()`; the native execution backend
//! reads a monotonic wall clock. Both express instants as [`Time`]
//! (nanoseconds since run start), so every consumer downstream of the
//! engine — LotusTrace, the metrics registry, the trace linter — works
//! identically on simulated and native runs.
//!
//! The trait lives here (rather than in `lotus-core`, where the trace
//! consumers live) because `lotus-core` depends on `lotus-dataflow`,
//! which needs the clock: putting it any higher in the stack would create
//! a dependency cycle.

use std::time::Instant;

use crate::time::{Span, Time};

/// A source of "now" as [`Time`] — nanoseconds since the start of a run.
///
/// Implementations must be monotonic: successive `now()` calls, from any
/// thread, never go backwards.
pub trait TimeSource: Send + Sync {
    /// The current instant, relative to the source's epoch.
    fn now(&self) -> Time;
}

/// A monotonic wall clock anchored at its construction instant.
///
/// `now()` returns the wall time elapsed since [`WallClock::new`] as a
/// [`Time`], so a native run's timestamps are directly comparable with a
/// simulated run's virtual timestamps (both count nanoseconds from the
/// run's start). Backed by [`std::time::Instant`], which is monotonic
/// across threads.
///
/// ```
/// use lotus_sim::{Time, TimeSource, WallClock};
///
/// let clock = WallClock::new();
/// let a = clock.now();
/// let b = clock.now();
/// assert!(Time::ZERO <= a && a <= b);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Creates a clock whose epoch (its `Time::ZERO`) is now.
    #[must_use]
    pub fn new() -> WallClock {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// The wall duration since the clock's epoch, as a [`Span`].
    #[must_use]
    pub fn elapsed(&self) -> Span {
        // u64 nanoseconds cover ~584 years; the truncation is theoretical.
        Span::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl TimeSource for WallClock {
    fn now(&self) -> Time {
        Time::ZERO + self.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = WallClock::new();
        let mut prev = clock.now();
        for _ in 0..1_000 {
            let now = clock.now();
            assert!(now >= prev, "wall clock went backwards");
            prev = now;
        }
    }

    #[test]
    fn wall_clock_advances_across_a_sleep() {
        let clock = WallClock::new();
        let before = clock.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let after = clock.now();
        assert!(after > before, "clock must advance over a real sleep");
    }

    #[test]
    fn two_threads_share_one_ordering() {
        let clock = std::sync::Arc::new(WallClock::new());
        let before = clock.now();
        let c = std::sync::Arc::clone(&clock);
        let seen = std::thread::spawn(move || c.now()).join().unwrap();
        let after = clock.now();
        assert!(before <= seen && seen <= after);
    }
}
