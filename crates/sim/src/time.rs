//! Virtual time types.
//!
//! The simulation clock counts nanoseconds from the start of the run. Two
//! newtypes keep instants and durations apart (mirroring
//! [`std::time::Instant`] / [`std::time::Duration`]): [`Time`] is a point on
//! the virtual clock and [`Span`] is a length of virtual time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since simulation start.
///
/// ```
/// use lotus_sim::{Span, Time};
///
/// let t = Time::ZERO + Span::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A length of virtual time, in nanoseconds.
///
/// ```
/// use lotus_sim::Span;
///
/// assert_eq!(Span::from_micros(5) * 3, Span::from_nanos(15_000));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span(u64);

impl Time {
    /// The origin of the simulation clock.
    pub const ZERO: Time = Time(0);

    /// Creates a time from raw nanoseconds since simulation start.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Nanoseconds since simulation start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (lossy; for reporting).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start, as a float (lossy; for reporting).
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Microseconds since simulation start, as a float (lossy; for reporting).
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (debug builds); saturates to
    /// zero in release builds via `saturating_since`.
    #[must_use]
    pub fn since(self, earlier: Time) -> Span {
        debug_assert!(
            earlier <= self,
            "Time::since: earlier ({earlier:?}) is after self ({self:?})"
        );
        Span(self.0.saturating_sub(earlier.0))
    }

    /// The span from `earlier` to `self`, or [`Span::ZERO`] if `earlier` is
    /// later.
    #[must_use]
    pub fn saturating_since(self, earlier: Time) -> Span {
        Span(self.0.saturating_sub(earlier.0))
    }
}

impl Span {
    /// The empty span.
    pub const ZERO: Span = Span(0);

    /// Creates a span from nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        Span(ns)
    }

    /// Creates a span from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        Span(us * 1_000)
    }

    /// Creates a span from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Span(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Span(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to whole nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "span seconds must be finite and non-negative"
        );
        Span((s * 1e9).round() as u64)
    }

    /// Length in nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in seconds, as a float (lossy; for reporting).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Length in milliseconds, as a float (lossy; for reporting).
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Length in microseconds, as a float (lossy; for reporting).
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if the span is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a float factor, rounding to whole nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> Span {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "span factor must be finite and non-negative"
        );
        Span((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Span) -> Span {
        Span(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Span> for Time {
    type Output = Time;
    fn add(self, rhs: Span) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Span> for Time {
    fn add_assign(&mut self, rhs: Span) {
        self.0 += rhs.0;
    }
}

impl Sub<Span> for Time {
    type Output = Time;
    fn sub(self, rhs: Span) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Span;
    fn sub(self, rhs: Time) -> Span {
        self.since(rhs)
    }
}

impl Add for Span {
    type Output = Span;
    fn add(self, rhs: Span) -> Span {
        Span(self.0 + rhs.0)
    }
}

impl AddAssign for Span {
    fn add_assign(&mut self, rhs: Span) {
        self.0 += rhs.0;
    }
}

impl Sub for Span {
    type Output = Span;
    fn sub(self, rhs: Span) -> Span {
        debug_assert!(rhs <= self, "Span subtraction underflow");
        Span(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Span {
    fn sub_assign(&mut self, rhs: Span) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Span {
    type Output = Span;
    fn mul(self, rhs: u64) -> Span {
        Span(self.0 * rhs)
    }
}

impl Div<u64> for Span {
    type Output = Span;
    fn div(self, rhs: u64) -> Span {
        Span(self.0 / rhs)
    }
}

impl Sum for Span {
    fn sum<I: Iterator<Item = Span>>(iter: I) -> Span {
        iter.fold(Span::ZERO, Add::add)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", format_ns(self.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ns(self.0))
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for Span {
    fn from(ns: u64) -> Self {
        Span(ns)
    }
}

/// Formats a nanosecond count with a human-friendly unit.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Span::from_micros(1).as_nanos(), 1_000);
        assert_eq!(Span::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Span::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Span::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn time_arithmetic_round_trips() {
        let t0 = Time::from_nanos(100);
        let t1 = t0 + Span::from_nanos(50);
        assert_eq!(t1 - t0, Span::from_nanos(50));
        assert_eq!(t1 - Span::from_nanos(50), t0);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = Time::from_nanos(10);
        let late = Time::from_nanos(20);
        assert_eq!(early.saturating_since(late), Span::ZERO);
        assert_eq!(late.saturating_since(early), Span::from_nanos(10));
    }

    #[test]
    fn span_sum_and_scale() {
        let total: Span = [Span::from_nanos(1), Span::from_nanos(2)].into_iter().sum();
        assert_eq!(total, Span::from_nanos(3));
        assert_eq!(Span::from_nanos(10).mul_f64(2.5), Span::from_nanos(25));
        assert_eq!(Span::from_nanos(10) / 2, Span::from_nanos(5));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Span::from_nanos(10)), "10ns");
        assert_eq!(format!("{}", Span::from_micros(10)), "10.000us");
        assert_eq!(format!("{}", Span::from_millis(10)), "10.000ms");
        assert_eq!(format!("{}", Span::from_secs(10)), "10.000s");
    }

    #[test]
    fn ordering_is_by_instant() {
        assert!(Time::from_nanos(1) < Time::from_nanos(2));
        assert!(Span::from_nanos(1) < Span::from_micros(1));
    }
}
