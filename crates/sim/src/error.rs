//! Simulation error types.

use std::error::Error;
use std::fmt;

/// A process that was still blocked when the event queue drained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedProcess {
    /// Process name given at spawn time.
    pub name: String,
    /// Short description of what the process was waiting on.
    pub waiting_on: String,
}

/// Error returned by [`crate::Simulation::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained while one or more processes were still
    /// blocked: the simulated system deadlocked (or was shut down
    /// incompletely).
    Deadlock {
        /// Processes that were blocked at the time, with their wait labels.
        blocked: Vec<BlockedProcess>,
    },
    /// A simulated process panicked; the message carries the panic payload
    /// and the process name.
    ProcessPanic {
        /// Name of the panicking process.
        process: String,
        /// Rendered panic payload.
        message: String,
    },
    /// The installed [`crate::ScheduleController`] refused to continue
    /// (its `on_step` returned `false`): the run exceeded the step budget,
    /// which bounds livelocks the same way [`SimError::Deadlock`] bounds
    /// starvation.
    StepLimit {
        /// Scheduler dispatches completed when the run was cut off.
        steps: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                write!(
                    f,
                    "simulation deadlocked with {} blocked process(es):",
                    blocked.len()
                )?;
                for p in blocked {
                    write!(f, " [{} waiting on {}]", p.name, p.waiting_on)?;
                }
                Ok(())
            }
            SimError::ProcessPanic { process, message } => {
                write!(f, "simulated process '{process}' panicked: {message}")
            }
            SimError::StepLimit { steps } => {
                write!(
                    f,
                    "simulation stopped by the schedule controller after {steps} \
                     dispatches (step limit: possible livelock)"
                )
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_display_lists_processes() {
        let err = SimError::Deadlock {
            blocked: vec![BlockedProcess {
                name: "worker0".into(),
                waiting_on: "queue pop".into(),
            }],
        };
        let s = err.to_string();
        assert!(s.contains("worker0"));
        assert!(s.contains("queue pop"));
    }

    #[test]
    fn step_limit_display_reports_count() {
        let err = SimError::StepLimit { steps: 512 };
        assert!(err.to_string().contains("512"));
        assert!(err.to_string().contains("step limit"));
    }

    #[test]
    fn panic_display_names_process() {
        let err = SimError::ProcessPanic {
            process: "main".into(),
            message: "boom".into(),
        };
        assert!(err.to_string().contains("main"));
        assert!(err.to_string().contains("boom"));
    }
}
