//! Simulated storage hierarchy: object store → local disk → OS page cache.
//!
//! The tier underneath `Dataset::get_item`: sample bytes live on a backing
//! device (an object store reached over the network, a local disk, or
//! both), fronted by a model of the OS page cache that all DataLoader
//! workers share. Every read reports a [`ReadOutcome`] — which tier
//! ultimately served it, how long it took (including queueing behind other
//! workers on the same device), how many bytes moved and whether the
//! device had to seek — which the dataflow layer turns into **T0
//! (fetch-from-storage)** trace spans.
//!
//! The model is deliberately simple and fully deterministic:
//!
//! * **Pages.** Caches hold fixed 64 KiB pages keyed by `(file, page)`.
//!   A read hits only if *every* page it spans is resident; accounting is
//!   page-granular.
//! * **LRU.** Both the page cache and the disk staging cache evict least
//!   recently used pages once over capacity.
//! * **Contention.** Each backing device serves one request at a time;
//!   later requests queue behind `busy_until` (FIFO, like a single-depth
//!   HDD/iSCSI queue). Queue depth is observable per read.
//! * **Seeks.** A disk read whose first byte is not where the previous
//!   read ended pays the device's seek penalty.
//! * **Readahead.** Packed-record reads that miss pull a few pages beyond
//!   the request into the caches, so sequential access over packed shards
//!   is much cheaper than shuffled access over tiny files.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

use crate::time::{Span, Time};

/// Cache/transfer granule: 64 KiB (Linux's default readahead window is of
/// this order; 4 KiB pages would just cost more bookkeeping).
pub const PAGE_BYTES: u64 = 64 * 1024;

/// Pages pulled beyond a missing packed-record read (readahead window).
const READAHEAD_PAGES: u64 = 4;

/// Records per shard file under [`FileLayout::PackedRecords`].
const RECORDS_PER_SHARD: u64 = 1024;

/// Nominal byte slot reserved per record inside a packed shard. Offsets
/// are computed from this fixed slot (not the record's actual size) so
/// page identity is stable and deterministic.
const PACKED_SLOT_BYTES: u64 = 256 * 1024;

/// Page-cache service: a memcpy out of DRAM.
const PAGE_CACHE_LATENCY: Span = Span::from_micros(1);
const PAGE_CACHE_BYTES_PER_SEC: u64 = 8_000_000_000;

/// Which tier ultimately served a read (the deepest tier touched).
///
/// Tier names deliberately use `-` rather than `_`: they are embedded in
/// trace labels of the form `SStorageRead_{batch}_{tier}`, which split on
/// `_`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StorageTier {
    /// All pages were resident in the shared OS page cache.
    PageCache,
    /// At least one page came off the local disk (but none from the
    /// object store).
    LocalDisk,
    /// At least one page had to be fetched from the object store.
    ObjectStore,
}

impl StorageTier {
    /// The tier's stable name, as it appears in trace labels and metric
    /// names.
    ///
    /// # Examples
    ///
    /// ```
    /// use lotus_sim::StorageTier;
    ///
    /// assert_eq!(StorageTier::PageCache.as_str(), "page-cache");
    /// assert_eq!(StorageTier::ObjectStore.as_str(), "object-store");
    /// ```
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            StorageTier::PageCache => "page-cache",
            StorageTier::LocalDisk => "local-disk",
            StorageTier::ObjectStore => "object-store",
        }
    }
}

impl std::fmt::Display for StorageTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Latency/bandwidth/seek model of one backing device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceModel {
    /// Fixed per-request latency (first-byte time).
    pub latency: Span,
    /// Extra penalty when a request is not sequential with the previous
    /// one (head movement, new connection — zero for an object store).
    pub seek: Span,
    /// Sustained transfer bandwidth.
    pub bytes_per_sec: u64,
}

impl DeviceModel {
    /// A remote object store (S3-class): high first-byte latency, decent
    /// streaming bandwidth, no seek concept.
    ///
    /// # Examples
    ///
    /// ```
    /// use lotus_sim::{DeviceModel, Span};
    ///
    /// let remote = DeviceModel::object_store();
    /// // A 128 KiB object costs first-byte latency plus transfer time.
    /// let t = remote.transfer(128 * 1024, false);
    /// assert!(t > Span::from_millis(5));
    /// ```
    #[must_use]
    pub const fn object_store() -> DeviceModel {
        DeviceModel {
            latency: Span::from_millis(5),
            seek: Span::ZERO,
            bytes_per_sec: 200_000_000,
        }
    }

    /// A local spinning/SATA-class disk: cheap sequential streaming,
    /// expensive seeks.
    #[must_use]
    pub const fn local_disk() -> DeviceModel {
        DeviceModel {
            latency: Span::from_micros(80),
            seek: Span::from_millis(4),
            bytes_per_sec: 180_000_000,
        }
    }

    /// A local NVMe drive: microsecond latency, negligible seek cost.
    ///
    /// # Examples
    ///
    /// ```
    /// use lotus_sim::DeviceModel;
    ///
    /// let nvme = DeviceModel::local_nvme();
    /// // Random access costs barely more than sequential on NVMe.
    /// let seq = nvme.transfer(1 << 20, false);
    /// let rnd = nvme.transfer(1 << 20, true);
    /// assert!(rnd.as_nanos() - seq.as_nanos() < 100_000);
    /// ```
    #[must_use]
    pub const fn local_nvme() -> DeviceModel {
        DeviceModel {
            latency: Span::from_micros(25),
            seek: Span::from_micros(10),
            bytes_per_sec: 1_600_000_000,
        }
    }

    /// Service time for one request of `bytes` (latency + optional seek +
    /// transfer), excluding queueing behind other requests.
    #[must_use]
    pub fn transfer(&self, bytes: u64, seek: bool) -> Span {
        let transfer =
            Span::from_nanos((bytes as u128 * 1_000_000_000 / self.bytes_per_sec as u128) as u64);
        let seek_cost = if seek { self.seek } else { Span::ZERO };
        self.latency + seek_cost + transfer
    }
}

/// How records are laid out on the backing store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileLayout {
    /// One file per record (`ImageFolder`-style directory trees). Every
    /// read opens a different file, so readahead never helps and every
    /// disk access seeks.
    TinyFiles,
    /// Records packed into large shard files at fixed slot offsets
    /// (TFRecord/WebDataset-style). Sequential access streams through a
    /// shard and benefits from readahead.
    PackedRecords,
}

impl FileLayout {
    /// Maps a record index to its `(file, byte offset)` location.
    ///
    /// # Examples
    ///
    /// ```
    /// use lotus_sim::FileLayout;
    ///
    /// assert_eq!(FileLayout::TinyFiles.locate(7), (7, 0));
    /// let (shard, offset) = FileLayout::PackedRecords.locate(1025);
    /// assert_eq!(shard, 1);
    /// assert!(offset > 0);
    /// ```
    #[must_use]
    pub fn locate(self, index: u64) -> (u64, u64) {
        match self {
            FileLayout::TinyFiles => (index, 0),
            FileLayout::PackedRecords => (
                index / RECORDS_PER_SHARD,
                (index % RECORDS_PER_SHARD) * PACKED_SLOT_BYTES,
            ),
        }
    }

    /// The layout's stable name ("tiny" / "packed").
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FileLayout::TinyFiles => "tiny",
            FileLayout::PackedRecords => "packed",
        }
    }
}

/// Configuration of the storage hierarchy one experiment runs against.
///
/// # Examples
///
/// ```
/// use lotus_sim::{FileLayout, StorageConfig};
///
/// // Cold tiny-file reads from an object store (the worst case)…
/// let cold = StorageConfig::remote_object_store();
/// // …versus a warm page cache over packed shards (the best case).
/// let warm = StorageConfig::remote_object_store()
///     .with_layout(FileLayout::PackedRecords)
///     .warm();
/// assert!(!cold.warm && warm.warm);
/// assert_ne!(cold.fingerprint_token(), warm.fingerprint_token());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageConfig {
    /// The remote object store, if the dataset lives on one. `None`
    /// means the local disk is the terminal tier.
    pub object_store: Option<DeviceModel>,
    /// The local disk. With an object store configured it acts as a
    /// staging cache; otherwise it is the backing store itself.
    pub disk: DeviceModel,
    /// OS page cache capacity in bytes (shared across all workers).
    pub page_cache_bytes: u64,
    /// Local-disk staging cache capacity in bytes (only used when an
    /// object store is configured).
    pub disk_cache_bytes: u64,
    /// On-store record layout.
    pub layout: FileLayout,
    /// Warm start: the page cache behaves as if a previous epoch already
    /// touched the data — first touches count as hits up to capacity.
    pub warm: bool,
}

impl StorageConfig {
    /// Dataset on a remote object store with a local-disk staging cache:
    /// the cold-start cloud training setup. Tiny files, cold caches.
    #[must_use]
    pub const fn remote_object_store() -> StorageConfig {
        StorageConfig {
            object_store: Some(DeviceModel::object_store()),
            disk: DeviceModel::local_disk(),
            page_cache_bytes: 4 << 30,
            disk_cache_bytes: 32 << 30,
            layout: FileLayout::TinyFiles,
            warm: false,
        }
    }

    /// Dataset on a local NVMe drive (the paper's IS pipeline keeps its
    /// preprocessed KiTS19 volumes on local storage).
    #[must_use]
    pub const fn local_nvme() -> StorageConfig {
        StorageConfig {
            object_store: None,
            disk: DeviceModel::local_nvme(),
            page_cache_bytes: 4 << 30,
            disk_cache_bytes: 0,
            layout: FileLayout::TinyFiles,
            warm: false,
        }
    }

    /// Returns a copy with a warm page cache (second-epoch behavior).
    #[must_use]
    pub const fn warm(mut self) -> StorageConfig {
        self.warm = true;
        self
    }

    /// Returns a copy with the given record layout.
    #[must_use]
    pub const fn with_layout(mut self, layout: FileLayout) -> StorageConfig {
        self.layout = layout;
        self
    }

    /// Returns a copy with the given page-cache capacity.
    #[must_use]
    pub const fn with_page_cache_bytes(mut self, bytes: u64) -> StorageConfig {
        self.page_cache_bytes = bytes;
        self
    }

    /// A stable token encoding everything that affects simulated read
    /// behavior, for content-addressed cache keys.
    #[must_use]
    pub fn fingerprint_token(&self) -> String {
        let obj = match self.object_store {
            Some(d) => format!("obj({},{},{})", d.latency, d.seek, d.bytes_per_sec),
            None => "no-obj".to_string(),
        };
        format!(
            "storage[{obj} disk({},{},{}) pc{} dc{} {} {}]",
            self.disk.latency,
            self.disk.seek,
            self.disk.bytes_per_sec,
            self.page_cache_bytes,
            self.disk_cache_bytes,
            self.layout.as_str(),
            if self.warm { "warm" } else { "cold" },
        )
    }
}

/// What one [`Storage::read`] observed: the input to a T0 trace span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Deepest tier touched (the tier that served the read).
    pub tier: StorageTier,
    /// Total time from issue to data ready, including queueing behind
    /// other workers on the backing device.
    pub span: Span,
    /// Bytes requested by the read.
    pub bytes: u64,
    /// True if the backing device had to seek.
    pub seek: bool,
    /// Requests outstanding on the backing device when this one was
    /// issued (including itself); zero for page-cache hits.
    pub queue_depth: u32,
}

impl ReadOutcome {
    /// True if the read was served entirely from the page cache.
    #[must_use]
    pub fn hit(&self) -> bool {
        self.tier == StorageTier::PageCache
    }
}

/// Cumulative, deterministic counters over a [`Storage`]'s lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageCounters {
    /// Reads served entirely from the page cache.
    pub page_cache_reads: u64,
    /// Bytes served from resident pages (page-granular).
    pub page_cache_bytes: u64,
    /// Reads whose deepest tier was the local disk.
    pub disk_reads: u64,
    /// Bytes transferred from the local disk (page-granular).
    pub disk_bytes: u64,
    /// Reads whose deepest tier was the object store.
    pub object_reads: u64,
    /// Bytes transferred from the object store (page-granular).
    pub object_bytes: u64,
    /// Seeks performed by the local disk.
    pub seeks: u64,
    /// Maximum backing-device queue depth observed.
    pub max_queue_depth: u32,
    /// Bytes currently resident in the page cache.
    pub resident_bytes: u64,
}

impl StorageCounters {
    /// Total reads across all tiers.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.page_cache_reads + self.disk_reads + self.object_reads
    }

    /// Fraction of reads served entirely from the page cache, in
    /// `[0, 1]` (zero when no reads happened).
    ///
    /// # Examples
    ///
    /// ```
    /// use lotus_sim::StorageCounters;
    ///
    /// let c = StorageCounters {
    ///     page_cache_reads: 3,
    ///     disk_reads: 1,
    ///     ..StorageCounters::default()
    /// };
    /// assert_eq!(c.hit_ratio(), 0.75);
    /// assert_eq!(StorageCounters::default().hit_ratio(), 0.0);
    /// ```
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            0.0
        } else {
            self.page_cache_reads as f64 / total as f64
        }
    }

    /// Reads and bytes for one tier by stable name, if it saw traffic.
    #[must_use]
    pub fn tier(&self, tier: StorageTier) -> (u64, u64) {
        match tier {
            StorageTier::PageCache => (self.page_cache_reads, self.page_cache_bytes),
            StorageTier::LocalDisk => (self.disk_reads, self.disk_bytes),
            StorageTier::ObjectStore => (self.object_reads, self.object_bytes),
        }
    }
}

/// One LRU page set (page cache or disk staging cache).
#[derive(Debug, Default)]
struct PageLru {
    /// Page → last-touch stamp.
    pages: HashMap<(u64, u64), u64>,
    /// Last-touch stamp → page (the eviction order).
    order: BTreeMap<u64, (u64, u64)>,
    stamp: u64,
}

impl PageLru {
    fn contains(&self, page: (u64, u64)) -> bool {
        self.pages.contains_key(&page)
    }

    /// Inserts or touches a page, evicting LRU pages over `capacity`.
    fn touch(&mut self, page: (u64, u64), capacity: u64) {
        if let Some(old) = self.pages.get(&page) {
            self.order.remove(old);
        }
        self.stamp += 1;
        self.pages.insert(page, self.stamp);
        self.order.insert(self.stamp, page);
        while self.pages.len() as u64 * PAGE_BYTES > capacity {
            let Some((_, evicted)) = self.order.pop_first() else {
                break;
            };
            self.pages.remove(&evicted);
        }
    }

    fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_BYTES
    }
}

/// One backing device's dynamic state.
#[derive(Debug, Default)]
struct DeviceState {
    /// Virtual instant the device finishes its current queue.
    busy_until: Time,
    /// Completion times of in-flight requests (pruned on every read).
    inflight: Vec<Time>,
    /// `(file, end offset)` of the last request, for seek detection.
    last_pos: Option<(u64, u64)>,
}

impl DeviceState {
    /// Issues one request of `bytes` at `now`; returns
    /// `(ready instant, seeked, queue depth at issue)`.
    fn issue(
        &mut self,
        device: &DeviceModel,
        file: u64,
        offset: u64,
        bytes: u64,
        now: Time,
    ) -> (Time, bool, u32) {
        self.inflight.retain(|done| *done > now);
        let depth = self.inflight.len() as u32 + 1;
        let seek = match self.last_pos {
            Some((f, end)) => f != file || end != offset,
            None => true,
        };
        let start = self.busy_until.max(now);
        let ready = start + device.transfer(bytes, seek && !device.seek.is_zero());
        self.busy_until = ready;
        self.inflight.push(ready);
        self.last_pos = Some((file, offset + bytes));
        (ready, seek && !device.seek.is_zero(), depth)
    }
}

#[derive(Debug, Default)]
struct StorageState {
    page_cache: PageLru,
    disk_cache: PageLru,
    disk: DeviceState,
    object: DeviceState,
    /// Remaining warm-start credit: first touches are treated as resident
    /// while this lasts.
    warm_credit: u64,
    counters: StorageCounters,
}

/// The shared storage hierarchy one experiment reads from.
///
/// One instance is shared (behind an `Arc`) by every DataLoader worker,
/// so the page cache and device queues are contended exactly as an OS
/// page cache and a physical device would be. All state sits behind one
/// mutex; in the simulation only one process runs at a time, so the lock
/// is uncontended and purely for interior mutability.
///
/// # Examples
///
/// ```
/// use lotus_sim::{Storage, StorageConfig, StorageTier, Time};
///
/// let storage = Storage::new(StorageConfig::remote_object_store());
/// // Cold first read: fetched from the object store.
/// let cold = storage.read(0, 100_000, Time::ZERO);
/// assert_eq!(cold.tier, StorageTier::ObjectStore);
/// // Re-read of the same record: the page cache now holds it.
/// let warm = storage.read(0, 100_000, Time::ZERO + cold.span);
/// assert!(warm.hit() && warm.span < cold.span);
/// assert_eq!(storage.counters().total_reads(), 2);
/// ```
#[derive(Debug)]
pub struct Storage {
    config: StorageConfig,
    state: Mutex<StorageState>,
}

impl Storage {
    /// Creates a storage hierarchy (cold, except for the configured
    /// warm-start credit).
    #[must_use]
    pub fn new(config: StorageConfig) -> Storage {
        Storage {
            config,
            state: Mutex::new(StorageState {
                warm_credit: if config.warm {
                    config.page_cache_bytes
                } else {
                    0
                },
                ..StorageState::default()
            }),
        }
    }

    /// The configuration this hierarchy was built with.
    #[must_use]
    pub fn config(&self) -> StorageConfig {
        self.config
    }

    /// Reads record `index` (`bytes` long) at virtual instant `now`.
    ///
    /// Classifies every spanned page against the caches, issues at most
    /// one request per backing device for the missing pages, fills the
    /// caches (with readahead for packed layouts) and returns the
    /// observable outcome. Deterministic: same call sequence, same
    /// outcomes.
    #[must_use]
    pub fn read(&self, index: u64, bytes: u64, now: Time) -> ReadOutcome {
        let bytes = bytes.max(1);
        let state = &mut *crate::locked(&self.state);
        let (file, offset) = self.config.layout.locate(index);
        let first_page = offset / PAGE_BYTES;
        let last_page = (offset + bytes - 1) / PAGE_BYTES;

        let mut resident_pages = 0u64;
        let mut disk_pages: Vec<u64> = Vec::new();
        let mut object_pages: Vec<u64> = Vec::new();
        for page in first_page..=last_page {
            let key = (file, page);
            if state.page_cache.contains(key) {
                resident_pages += 1;
            } else if state.warm_credit >= PAGE_BYTES {
                // Warm start: a previous epoch already faulted this page in.
                state.warm_credit -= PAGE_BYTES;
                resident_pages += 1;
            } else if self.config.object_store.is_some() && !state.disk_cache.contains(key) {
                object_pages.push(page);
            } else {
                disk_pages.push(page);
            }
        }

        // Service time: always pay the memcpy out of the page cache, then
        // wait for whichever backing devices must be touched.
        let mut span = PAGE_CACHE_LATENCY
            + Span::from_nanos(
                (bytes as u128 * 1_000_000_000 / PAGE_CACHE_BYTES_PER_SEC as u128) as u64,
            );
        let mut seek = false;
        let mut queue_depth = 0u32;
        let mut tier = StorageTier::PageCache;

        if !disk_pages.is_empty() {
            let disk_offset = disk_pages[0] * PAGE_BYTES;
            let disk_bytes = disk_pages.len() as u64 * PAGE_BYTES;
            let (ready, seeked, depth) =
                state
                    .disk
                    .issue(&self.config.disk, file, disk_offset, disk_bytes, now);
            span += ready.saturating_since(now);
            seek |= seeked;
            queue_depth = queue_depth.max(depth);
            tier = StorageTier::LocalDisk;
            if seeked {
                state.counters.seeks += 1;
            }
            state.counters.disk_bytes += disk_bytes;
        }

        if !object_pages.is_empty() {
            // Pages are classified as object-backed only when the layout
            // has an object store; reaching this with `None` is a
            // classification bug, not a runtime condition.
            #[allow(clippy::expect_used)]
            let object = self
                .config
                .object_store
                .expect("object pages classified without an object store");
            let obj_offset = object_pages[0] * PAGE_BYTES;
            let obj_bytes = object_pages.len() as u64 * PAGE_BYTES;
            let (ready, _, depth) = state
                .object
                .issue(&object, file, obj_offset, obj_bytes, now);
            span += ready.saturating_since(now);
            queue_depth = queue_depth.max(depth);
            tier = StorageTier::ObjectStore;
            state.counters.object_bytes += obj_bytes;
        }

        // Fill the caches with everything the read touched, plus
        // readahead beyond a missing packed-record read.
        let staging = self.config.object_store.is_some();
        for page in first_page..=last_page {
            if staging {
                state
                    .disk_cache
                    .touch((file, page), self.config.disk_cache_bytes);
            }
            state
                .page_cache
                .touch((file, page), self.config.page_cache_bytes);
        }
        if tier != StorageTier::PageCache && self.config.layout == FileLayout::PackedRecords {
            for page in (last_page + 1)..=(last_page + READAHEAD_PAGES) {
                if staging {
                    state
                        .disk_cache
                        .touch((file, page), self.config.disk_cache_bytes);
                }
                state
                    .page_cache
                    .touch((file, page), self.config.page_cache_bytes);
            }
        }

        match tier {
            StorageTier::PageCache => {
                state.counters.page_cache_reads += 1;
                state.counters.page_cache_bytes += resident_pages * PAGE_BYTES;
            }
            StorageTier::LocalDisk => state.counters.disk_reads += 1,
            StorageTier::ObjectStore => state.counters.object_reads += 1,
        }
        state.counters.max_queue_depth = state.counters.max_queue_depth.max(queue_depth);
        state.counters.resident_bytes = state.page_cache.resident_bytes();

        ReadOutcome {
            tier,
            span,
            bytes,
            seek,
            queue_depth,
        }
    }

    /// A snapshot of the cumulative counters.
    #[must_use]
    pub fn counters(&self) -> StorageCounters {
        crate::locked(&self.state).counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_read_goes_to_the_deepest_tier_and_warms_the_caches() {
        let s = Storage::new(StorageConfig::remote_object_store());
        let a = s.read(42, 100_000, Time::ZERO);
        assert_eq!(a.tier, StorageTier::ObjectStore);
        assert!(!a.hit());
        let b = s.read(42, 100_000, Time::ZERO + a.span);
        assert_eq!(b.tier, StorageTier::PageCache);
        assert!(b.span < a.span);
    }

    #[test]
    fn warm_start_serves_first_touches_from_the_page_cache() {
        let s = Storage::new(StorageConfig::remote_object_store().warm());
        for i in 0..100 {
            assert!(s.read(i, 100_000, Time::ZERO).hit(), "read {i} missed");
        }
        assert_eq!(s.counters().page_cache_reads, 100);
    }

    #[test]
    fn warm_credit_is_bounded_by_capacity() {
        let cfg = StorageConfig::remote_object_store()
            .warm()
            .with_page_cache_bytes(4 * PAGE_BYTES);
        let s = Storage::new(cfg);
        let mut misses = 0;
        for i in 0..100 {
            if !s.read(i, PAGE_BYTES, Time::ZERO).hit() {
                misses += 1;
            }
        }
        assert!(misses >= 96, "only {misses} misses under a 4-page credit");
    }

    #[test]
    fn page_cache_evicts_lru() {
        let cfg = StorageConfig::local_nvme().with_page_cache_bytes(2 * PAGE_BYTES);
        let s = Storage::new(cfg);
        let _ = s.read(0, PAGE_BYTES, Time::ZERO);
        let _ = s.read(1, PAGE_BYTES, Time::ZERO);
        let _ = s.read(2, PAGE_BYTES, Time::ZERO); // evicts record 0
        assert!(!s.read(0, PAGE_BYTES, Time::ZERO).hit());
        // Record 2 was most recently used (and re-touched by the miss
        // handling above only for record 0's pages), so it is resident.
        assert!(s.read(2, PAGE_BYTES, Time::ZERO).hit());
    }

    #[test]
    fn disk_cache_stages_object_store_reads() {
        let cfg = StorageConfig::remote_object_store().with_page_cache_bytes(2 * PAGE_BYTES);
        let s = Storage::new(cfg);
        let a = s.read(0, PAGE_BYTES, Time::ZERO);
        assert_eq!(a.tier, StorageTier::ObjectStore);
        // Flush record 0 out of the tiny page cache…
        let _ = s.read(1, PAGE_BYTES, Time::ZERO);
        let _ = s.read(2, PAGE_BYTES, Time::ZERO);
        // …the re-read is served from the disk staging cache, not remote.
        let b = s.read(0, PAGE_BYTES, Time::ZERO);
        assert_eq!(b.tier, StorageTier::LocalDisk);
        assert!(b.span < a.span);
    }

    #[test]
    fn contention_queues_behind_busy_devices() {
        let s = Storage::new(StorageConfig::remote_object_store());
        let a = s.read(0, 100_000, Time::ZERO);
        // A second worker issues while the device is still busy: it
        // queues and takes longer end to end.
        let b = s.read(1, 100_000, Time::ZERO);
        assert!(b.span > a.span, "{:?} !> {:?}", b.span, a.span);
        assert_eq!(b.queue_depth, 2);
        assert_eq!(s.counters().max_queue_depth, 2);
    }

    #[test]
    fn sequential_packed_reads_benefit_from_readahead() {
        let tiny = Storage::new(StorageConfig::remote_object_store());
        let packed = Storage::new(
            StorageConfig::remote_object_store().with_layout(FileLayout::PackedRecords),
        );
        let (mut t_tiny, mut t_packed) = (Time::ZERO, Time::ZERO);
        for i in 0..64 {
            t_tiny += tiny.read(i, 100_000, t_tiny).span;
            t_packed += packed.read(i, 100_000, t_packed).span;
        }
        assert!(
            t_packed.since(Time::ZERO) < t_tiny.since(Time::ZERO).mul_f64(0.7),
            "packed {:?} !< 0.7 × tiny {:?}",
            t_packed.since(Time::ZERO),
            t_tiny.since(Time::ZERO)
        );
        assert!(packed.counters().hit_ratio() > tiny.counters().hit_ratio());
    }

    #[test]
    fn reads_are_deterministic() {
        let run = || {
            let s = Storage::new(StorageConfig::remote_object_store());
            let mut now = Time::ZERO;
            let mut outcomes = Vec::new();
            for i in [5u64, 3, 5, 9, 3, 1] {
                let o = s.read(i, 90_000 + i * 1000, now);
                now += o.span;
                outcomes.push(o);
            }
            (outcomes, s.counters())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fingerprint_tokens_distinguish_configs() {
        let base = StorageConfig::remote_object_store();
        let mut seen = std::collections::BTreeSet::new();
        for cfg in [
            base,
            base.warm(),
            base.with_layout(FileLayout::PackedRecords),
            base.with_page_cache_bytes(1 << 20),
            StorageConfig::local_nvme(),
        ] {
            assert!(seen.insert(cfg.fingerprint_token()), "collision: {cfg:?}");
        }
    }
}
