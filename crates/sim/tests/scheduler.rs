//! Integration tests for the simulation kernel: determinism, blocking
//! semantics, deadlock detection and panic propagation.

use std::sync::{Arc, Mutex};

use lotus_sim::{SimError, Simulation, Span, Time};

#[test]
fn virtual_time_advances_only_by_delays() {
    let mut sim = Simulation::new();
    sim.spawn("p", |ctx| {
        assert_eq!(ctx.now(), Time::ZERO);
        ctx.delay(Span::from_micros(7));
        assert_eq!(ctx.now().as_nanos(), 7_000);
        ctx.delay(Span::ZERO);
        assert_eq!(ctx.now().as_nanos(), 7_000);
    });
    let report = sim.run().unwrap();
    assert_eq!(report.end_time.as_nanos(), 7_000);
    assert_eq!(report.processes, 1);
}

#[test]
fn events_at_equal_time_fire_in_spawn_order() {
    for _ in 0..5 {
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulation::new();
        for i in 0..10 {
            let order = Arc::clone(&order);
            sim.spawn(format!("p{i}"), move |ctx| {
                ctx.delay(Span::from_millis(1));
                order.lock().unwrap().push(i);
            });
        }
        sim.run().unwrap();
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }
}

#[test]
fn queue_blocks_consumer_until_producer_pushes() {
    let mut sim = Simulation::new();
    let q = sim.queue::<u64>("q", None);
    let tx = q.clone();
    sim.spawn("producer", move |ctx| {
        ctx.delay(Span::from_millis(10));
        tx.push(&ctx, 42);
    });
    let observed = Arc::new(Mutex::new(None));
    let observed_w = Arc::clone(&observed);
    sim.spawn("consumer", move |ctx| {
        let v = q.pop(&ctx);
        *observed_w.lock().unwrap() = Some((v, ctx.now()));
    });
    sim.run().unwrap();
    let (v, at) = observed.lock().unwrap().unwrap();
    assert_eq!(v, 42);
    assert_eq!(at.as_nanos(), 10_000_000);
}

#[test]
fn bounded_queue_applies_backpressure() {
    let mut sim = Simulation::new();
    let q = sim.queue::<u32>("bounded", Some(2));
    let tx = q.clone();
    let push_times = Arc::new(Mutex::new(Vec::new()));
    let push_times_w = Arc::clone(&push_times);
    sim.spawn("producer", move |ctx| {
        for i in 0..4 {
            tx.push(&ctx, i);
            push_times_w.lock().unwrap().push(ctx.now().as_nanos());
        }
    });
    sim.spawn("consumer", move |ctx| {
        for _ in 0..4 {
            ctx.delay(Span::from_millis(1));
            let _ = q.pop(&ctx);
        }
    });
    sim.run().unwrap();
    let times = push_times.lock().unwrap().clone();
    // First two pushes are immediate; the rest wait for pops at 1 ms and 2 ms.
    assert_eq!(times, vec![0, 0, 1_000_000, 2_000_000]);
}

#[test]
fn queue_is_fifo_across_multiple_producers() {
    let mut sim = Simulation::new();
    let q = sim.queue::<(usize, u32)>("multi", None);
    for w in 0..4 {
        let q = q.clone();
        sim.spawn(format!("producer{w}"), move |ctx| {
            for i in 0..5 {
                ctx.delay(Span::from_micros(100 * (w as u64 + 1)));
                q.push(&ctx, (w, i));
            }
        });
    }
    let seen = Arc::new(Mutex::new(Vec::new()));
    let seen_w = Arc::clone(&seen);
    sim.spawn("consumer", move |ctx| {
        for _ in 0..20 {
            seen_w.lock().unwrap().push(q.pop(&ctx));
        }
    });
    sim.run().unwrap();
    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), 20);
    // Per-producer order must be preserved even though arrivals interleave.
    for w in 0..4 {
        let per: Vec<u32> = seen
            .iter()
            .filter(|(p, _)| *p == w)
            .map(|(_, i)| *i)
            .collect();
        assert_eq!(per, vec![0, 1, 2, 3, 4]);
    }
}

#[test]
fn deadlock_is_reported_with_blocked_process_names() {
    let mut sim = Simulation::new();
    let q = sim.queue::<u8>("never", None);
    sim.spawn("starved", move |ctx| {
        let _ = q.pop(&ctx);
    });
    match sim.run() {
        Err(SimError::Deadlock { blocked }) => {
            assert_eq!(blocked.len(), 1);
            assert_eq!(blocked[0].name, "starved");
            assert_eq!(blocked[0].waiting_on, "queue.pop");
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn process_panic_aborts_the_run_with_context() {
    let mut sim = Simulation::new();
    sim.spawn("bomber", |ctx| {
        ctx.delay(Span::from_micros(1));
        panic!("kaboom");
    });
    match sim.run() {
        Err(SimError::ProcessPanic { process, message }) => {
            assert_eq!(process, "bomber");
            assert!(message.contains("kaboom"));
        }
        other => panic!("expected panic error, got {other:?}"),
    }
}

#[test]
fn dynamically_spawned_processes_run() {
    let mut sim = Simulation::new();
    let done = Arc::new(Mutex::new(Vec::new()));
    let done_w = Arc::clone(&done);
    sim.spawn("parent", move |ctx| {
        for i in 0..3 {
            let done = Arc::clone(&done_w);
            ctx.spawn(format!("child{i}"), move |cctx| {
                cctx.delay(Span::from_millis(i + 1));
                done.lock().unwrap().push(i);
            });
        }
        ctx.delay(Span::from_millis(10));
    });
    let report = sim.run().unwrap();
    assert_eq!(report.processes, 4);
    assert_eq!(*done.lock().unwrap(), vec![0, 1, 2]);
}

#[test]
fn core_pool_serializes_oversubscribed_compute() {
    let mut sim = Simulation::new();
    let pool = sim.core_pool(2);
    let finish = Arc::new(Mutex::new(Vec::new()));
    for w in 0..4 {
        let pool = pool.clone();
        let finish = Arc::clone(&finish);
        sim.spawn(format!("w{w}"), move |ctx| {
            let core = pool.acquire(&ctx);
            ctx.delay(Span::from_millis(10));
            drop(core);
            finish.lock().unwrap().push(ctx.now().as_nanos());
        });
    }
    let report = sim.run().unwrap();
    // Two waves of two jobs each.
    assert_eq!(report.end_time.as_nanos(), 20_000_000);
    let finishes = finish.lock().unwrap().clone();
    assert_eq!(finishes.iter().filter(|&&t| t == 10_000_000).count(), 2);
    assert_eq!(finishes.iter().filter(|&&t| t == 20_000_000).count(), 2);
}

#[test]
fn core_pool_tracks_peak_active() {
    let mut sim = Simulation::new();
    let pool = sim.core_pool(8);
    for w in 0..3 {
        let pool = pool.clone();
        sim.spawn(format!("w{w}"), move |ctx| {
            let _core = pool.acquire(&ctx);
            ctx.delay(Span::from_millis(1));
        });
    }
    let probe = pool.clone();
    sim.run().unwrap();
    assert_eq!(probe.peak_active(), 3);
    assert_eq!(probe.active(), 0);
}

#[test]
fn identical_programs_produce_identical_schedules() {
    fn run_once() -> Vec<(u64, usize, u32)> {
        let mut sim = Simulation::new();
        let q = sim.queue::<(usize, u32)>("q", Some(3));
        let log = Arc::new(Mutex::new(Vec::new()));
        for w in 0..3 {
            let q = q.clone();
            sim.spawn(format!("p{w}"), move |ctx| {
                for i in 0..10 {
                    ctx.delay(Span::from_micros(((w as u64) * 37 + 13) % 91 + 1));
                    q.push(&ctx, (w, i));
                }
            });
        }
        let log_w = Arc::clone(&log);
        sim.spawn("c", move |ctx| {
            for _ in 0..30 {
                let (w, i) = q.pop(&ctx);
                log_w.lock().unwrap().push((ctx.now().as_nanos(), w, i));
            }
        });
        sim.run().unwrap();
        let result = log.lock().unwrap().clone();
        result
    }
    assert_eq!(run_once(), run_once());
}

#[test]
fn dropping_an_unrun_simulation_does_not_hang() {
    let mut sim = Simulation::new();
    sim.spawn("never-started", |ctx| {
        ctx.delay(Span::from_secs(1));
    });
    drop(sim);
}

#[test]
fn dropping_a_deadlocked_simulation_unwinds_blocked_threads() {
    let mut sim = Simulation::new();
    let q = sim.queue::<u8>("never", None);
    for i in 0..4 {
        let q = q.clone();
        sim.spawn(format!("blocked{i}"), move |ctx| {
            let _ = q.pop(&ctx);
        });
    }
    assert!(sim.run().is_err());
    drop(sim); // must join all threads without hanging
}

#[test]
fn try_pop_never_blocks() {
    let mut sim = Simulation::new();
    let q = sim.queue::<u8>("tp", None);
    let results = Arc::new(Mutex::new(Vec::new()));
    let results_w = Arc::clone(&results);
    let tx = q.clone();
    sim.spawn("p", move |ctx| {
        results_w.lock().unwrap().push(tx.try_pop());
        tx.push(&ctx, 9);
        results_w.lock().unwrap().push(tx.try_pop());
    });
    sim.run().unwrap();
    assert_eq!(*results.lock().unwrap(), vec![None, Some(9)]);
}

#[test]
fn pop_timeout_returns_none_when_nothing_arrives() {
    let mut sim = Simulation::new();
    let q = sim.queue::<u8>("quiet", None);
    let outcome = Arc::new(Mutex::new(None));
    let outcome_w = Arc::clone(&outcome);
    sim.spawn("poller", move |ctx| {
        let got = q.pop_timeout(&ctx, Span::from_millis(5));
        *outcome_w.lock().unwrap() = Some((got, ctx.now().as_nanos()));
    });
    sim.run().unwrap();
    let (got, at) = outcome.lock().unwrap().take().unwrap();
    assert_eq!(got, None);
    assert_eq!(at, 5_000_000, "the poller gives up exactly at the deadline");
}

#[test]
fn pop_timeout_returns_items_that_arrive_in_time() {
    let mut sim = Simulation::new();
    let q = sim.queue::<u8>("timely", None);
    let tx = q.clone();
    sim.spawn("producer", move |ctx| {
        ctx.delay(Span::from_millis(2));
        tx.push(&ctx, 77);
    });
    let outcome = Arc::new(Mutex::new(None));
    let outcome_w = Arc::clone(&outcome);
    sim.spawn("poller", move |ctx| {
        let got = q.pop_timeout(&ctx, Span::from_millis(5));
        *outcome_w.lock().unwrap() = Some((got, ctx.now().as_nanos()));
    });
    sim.run().unwrap();
    let (got, at) = outcome.lock().unwrap().take().unwrap();
    assert_eq!(got, Some(77));
    assert_eq!(at, 2_000_000);
}

#[test]
fn pop_timeout_polling_loop_mirrors_pytorch_status_checks() {
    // The PyTorch main process polls the data queue every 5 s
    // (MP_STATUS_CHECK_INTERVAL); model three empty polls then success.
    let mut sim = Simulation::new();
    let q = sim.queue::<u8>("poll", None);
    let tx = q.clone();
    sim.spawn("slow-producer", move |ctx| {
        ctx.delay(Span::from_secs(12));
        tx.push(&ctx, 1);
    });
    let polls = Arc::new(Mutex::new(0u32));
    let polls_w = Arc::clone(&polls);
    sim.spawn("main", move |ctx| loop {
        *polls_w.lock().unwrap() += 1;
        if q.pop_timeout(&ctx, Span::from_secs(5)).is_some() {
            break;
        }
    });
    sim.run().unwrap();
    assert_eq!(*polls.lock().unwrap(), 3, "two timeouts then a hit");
}

/// Runs N same-time processes under a controller prefix and returns the
/// order in which they executed plus the recorded decision log.
fn run_tied(prefix: Vec<usize>) -> (Vec<usize>, Vec<lotus_sim::DecisionRecord>) {
    let order = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::new();
    for i in 0..3 {
        let order = Arc::clone(&order);
        sim.spawn(format!("p{i}"), move |ctx| {
            ctx.delay(Span::from_millis(1));
            order.lock().unwrap().push(i);
        });
    }
    let guide = lotus_sim::GuidedController::new(prefix, 0);
    sim.set_controller(Arc::clone(&guide) as _);
    sim.run().unwrap();
    let executed = order.lock().unwrap().clone();
    (executed, guide.decisions())
}

#[test]
fn fifo_controller_matches_uncontrolled_order() {
    // An all-zeros prefix (the FIFO default) must reproduce spawn order.
    let (order, decisions) = run_tied(vec![]);
    assert_eq!(order, vec![0, 1, 2]);
    // Spawn wakes tie at t=0 and the delays tie at t=1ms: at least the
    // two three-way ties must have surfaced as decision points.
    assert!(decisions.iter().filter(|d| d.branches == 3).count() >= 2);
    assert!(decisions.iter().all(|d| d.taken == 0));
}

#[test]
fn controller_choice_reorders_tied_events() {
    // Picking index 2 at the first decision point runs p2's spawn first;
    // subsequent zeros keep FIFO for the rest, so p2 also delays first
    // and completes first.
    let (order, _) = run_tied(vec![2, 0, 0, 2]);
    assert_ne!(order, vec![0, 1, 2], "schedule choice must be observable");
}

#[test]
fn schedules_replay_deterministically() {
    let (first, d1) = run_tied(vec![1, 2, 0, 1]);
    let (second, d2) = run_tied(vec![1, 2, 0, 1]);
    assert_eq!(first, second);
    assert_eq!(d1, d2, "decision log (hashes included) must replay exactly");
}

#[test]
fn step_limit_aborts_livelocked_run() {
    let mut sim = Simulation::new();
    let q = sim.queue::<u8>("never", None);
    sim.spawn("poller", move |ctx| loop {
        // Nothing ever arrives: an unbounded polling loop (livelock).
        let _ = q.pop_timeout(&ctx, Span::from_secs(5));
    });
    let guide = lotus_sim::GuidedController::new(vec![], 100);
    sim.set_controller(guide as _);
    match sim.run() {
        Err(SimError::StepLimit { steps }) => assert_eq!(steps, 101),
        other => panic!("expected StepLimit, got {other:?}"),
    }
}
