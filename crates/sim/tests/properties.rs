//! Property-based tests for the simulation kernel: time arithmetic,
//! queue conservation and schedule determinism under arbitrary programs.

use std::sync::{Arc, Mutex};

use lotus_sim::{Simulation, Span, Time};
use proptest::prelude::*;

proptest! {
    #[test]
    fn span_addition_is_associative_and_commutative(a in 0u64..1 << 40, b in 0u64..1 << 40, c in 0u64..1 << 40) {
        let (a, b, c) = (Span::from_nanos(a), Span::from_nanos(b), Span::from_nanos(c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn time_plus_span_round_trips(t in 0u64..1 << 40, d in 0u64..1 << 40) {
        let time = Time::from_nanos(t);
        let span = Span::from_nanos(d);
        prop_assert_eq!((time + span) - span, time);
        prop_assert_eq!((time + span) - time, span);
    }

    #[test]
    fn span_scaling_matches_integer_math(ns in 0u64..1 << 30, k in 0u64..1024) {
        prop_assert_eq!(Span::from_nanos(ns) * k, Span::from_nanos(ns * k));
        if k > 0 {
            prop_assert_eq!(Span::from_nanos(ns * k) / k, Span::from_nanos(ns));
        }
    }

    #[test]
    fn mul_f64_is_monotone(ns in 1u64..1 << 40, f1 in 0.0f64..8.0, f2 in 0.0f64..8.0) {
        let s = Span::from_nanos(ns);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(s.mul_f64(lo) <= s.mul_f64(hi));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Queues never lose or duplicate messages, under arbitrary
    /// producer/consumer counts, capacities and per-message delays.
    #[test]
    fn queues_conserve_messages(
        producers in 1usize..5,
        per_producer in 1usize..30,
        capacity in prop::option::of(1usize..8),
        delays in prop::collection::vec(0u64..5_000, 1..20),
    ) {
        let mut sim = Simulation::new();
        let q = sim.queue::<(usize, usize)>("prop", capacity);
        for p in 0..producers {
            let q = q.clone();
            let delays = delays.clone();
            sim.spawn(format!("producer{p}"), move |ctx| {
                for i in 0..per_producer {
                    ctx.delay(Span::from_nanos(delays[(p * 7 + i) % delays.len()]));
                    q.push(&ctx, (p, i));
                }
            });
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen_w = Arc::clone(&seen);
        let total = producers * per_producer;
        sim.spawn("consumer", move |ctx| {
            for _ in 0..total {
                seen_w.lock().unwrap().push(q.pop(&ctx));
            }
        });
        sim.run().unwrap();
        let mut seen = seen.lock().unwrap().clone();
        prop_assert_eq!(seen.len(), total);
        // Per-producer FIFO order is preserved.
        for p in 0..producers {
            let per: Vec<usize> = seen.iter().filter(|(pp, _)| *pp == p).map(|(_, i)| *i).collect();
            prop_assert_eq!(per, (0..per_producer).collect::<Vec<_>>());
        }
        // Exactly-once delivery.
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), total);
    }

    /// Two executions of the same arbitrary program produce the same
    /// virtual end time.
    #[test]
    fn schedules_are_deterministic(
        workers in 1usize..6,
        delays in prop::collection::vec(1u64..100_000, 1..12),
    ) {
        let run = || {
            let mut sim = Simulation::new();
            let q = sim.queue::<u64>("d", Some(2));
            for w in 0..workers {
                let q = q.clone();
                let delays = delays.clone();
                sim.spawn(format!("w{w}"), move |ctx| {
                    for (i, &d) in delays.iter().enumerate() {
                        ctx.delay(Span::from_nanos(d * (w as u64 + 1)));
                        q.push(&ctx, (w * 100 + i) as u64);
                    }
                });
            }
            let total = workers * delays.len();
            let q2 = q.clone();
            sim.spawn("sink", move |ctx| {
                for _ in 0..total {
                    let _ = q2.pop(&ctx);
                }
            });
            sim.run().unwrap().end_time.as_nanos()
        };
        prop_assert_eq!(run(), run());
    }

    /// The core pool never admits more holders than its capacity.
    #[test]
    fn core_pool_capacity_is_respected(cores in 1usize..6, tasks in 1usize..20) {
        let mut sim = Simulation::new();
        let pool = sim.core_pool(cores);
        let peak_probe = pool.clone();
        for t in 0..tasks {
            let pool = pool.clone();
            sim.spawn(format!("t{t}"), move |ctx| {
                let _core = pool.acquire(&ctx);
                ctx.delay(Span::from_micros(10 + t as u64));
            });
        }
        sim.run().unwrap();
        prop_assert!(peak_probe.peak_active() <= cores);
        prop_assert_eq!(peak_probe.active(), 0);
    }
}
