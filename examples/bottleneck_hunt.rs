//! Bottleneck hunting across the three MLPerf pipelines: the Figure 2
//! analysis — who is the bottleneck, the CPU preprocessing or the GPU?
//!
//! ```sh
//! cargo run --release --example bottleneck_hunt
//! ```

use std::error::Error;
use std::sync::Arc;

use lotus::core::trace::analysis::{batch_timelines, BatchTimeline};
use lotus::core::trace::{LotusTrace, LotusTraceConfig, OpLogMode};
use lotus::sim::Span;
use lotus::uarch::{Machine, MachineConfig};
use lotus::workloads::{ExperimentConfig, PipelineKind};

fn mean_ms(spans: impl Iterator<Item = Span>) -> f64 {
    let v: Vec<f64> = spans.map(|s| s.as_millis_f64()).collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    println!(
        "{:<4} {:>12} {:>12} {:>12}  verdict",
        "", "wait (ms)", "delay (ms)", "step (ms)"
    );
    for (kind, items) in [
        (PipelineKind::ImageClassification, 8_192u64),
        (PipelineKind::ImageSegmentation, 210),
        (PipelineKind::ObjectDetection, 512),
    ] {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        // Batch-level tracing is enough for bottleneck analysis.
        let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
            op_mode: OpLogMode::Off,
            ..LotusTraceConfig::default()
        }));
        let config = ExperimentConfig::paper_default(kind).scaled_to(items);
        let job = config.build(&machine, Arc::clone(&trace) as _, None);
        let step = job.gpu.step_span(config.batch_size);
        job.run()?;

        let timelines = batch_timelines(&trace.records());
        let wait = mean_ms(timelines.iter().filter_map(BatchTimeline::wait_span));
        let delay = mean_ms(timelines.iter().filter_map(BatchTimeline::delay));
        let diagnosis = if wait > delay {
            "preprocessing-bound: the GPU starves while workers preprocess"
        } else {
            "GPU-bound: preprocessed batches queue up behind the training step"
        };
        println!(
            "{:<4} {:>12.1} {:>12.1} {:>12.1}  {}",
            kind.abbrev(),
            wait,
            delay,
            step.as_millis_f64(),
            diagnosis
        );
    }
    println!(
        "\nThe IS/OD pipelines apply part of their preprocessing offline (before \
         training), which is why they are GPU-bound — the paper's Takeaway 2."
    );
    Ok(())
}
