//! Live metrics: stream a fault-injected epoch through the sink layer,
//! render the `lotus top` dashboard, export Prometheus/JSON/CSV, and
//! cross-check every counter against the trace-record ground truth.
//!
//! Self-validating: prints `METRICS OK` only if all shape and
//! ground-truth checks pass (CI runs this binary and greps for it).
//!
//! ```sh
//! cargo run --release --example live_metrics
//! ```

use std::error::Error;
use std::sync::Arc;

use lotus::core::metrics::{
    names, render_dashboard, to_csv, to_json, to_prometheus, DashboardOptions, MetricsRegistry,
    MetricsSink, MultiSink, TraceSink,
};
use lotus::core::trace::analysis::{fault_forensics, fault_summary};
use lotus::core::trace::{LotusTrace, SpanKind};
use lotus::dataflow::{FaultPlan, JobReport, NullTracer};
use lotus::sim::Time;
use lotus::uarch::{Machine, MachineConfig};
use lotus::workloads::{ExperimentConfig, PipelineKind};

struct StreamedRun {
    trace: Arc<LotusTrace>,
    registry: Arc<MetricsRegistry>,
    sinks: Arc<MultiSink>,
    report: JobReport,
}

fn config() -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
    config.num_workers = 4;
    config.scaled_to(1_024)
}

/// Runs the epoch with the full sink stack: the LotusTrace log (ground
/// truth) and the metrics registry, both fed from one event stream.
fn streamed_run(faults: FaultPlan) -> Result<StreamedRun, Box<dyn Error>> {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let config = config();
    let trace = Arc::new(LotusTrace::new());
    let registry = Arc::new(MetricsRegistry::new());
    let metrics = Arc::new(MetricsSink::new(Arc::clone(&registry), config.num_workers));
    let sinks = Arc::new(
        MultiSink::new()
            .with(Arc::clone(&trace) as _)
            .with(Arc::clone(&metrics) as _),
    );
    let mut job = config.build(&machine, Arc::clone(&sinks) as _, None);
    job.faults = faults;
    let report = job.run()?;
    Ok(StreamedRun {
        trace,
        registry,
        sinks,
        report,
    })
}

fn main() -> Result<(), Box<dyn Error>> {
    // Target the kill at mid-epoch of a fault-free baseline.
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let baseline = config()
        .build(&machine, Arc::new(NullTracer) as _, None)
        .run()?;
    let kill_at = Time::ZERO + baseline.elapsed.mul_f64(0.5);
    let faults = FaultPlan::new(7).kill_process("dataloader1", kill_at);

    let run = streamed_run(faults.clone())?;
    let snapshot = run.registry.snapshot();

    print!(
        "{}",
        render_dashboard(&snapshot, DashboardOptions { width: 48 })
    );
    for (name, overhead) in run.sinks.overheads() {
        println!("sink '{name}' charged {overhead}");
    }

    // -- Ground truth: every counter agrees with the trace log. --
    let records = run.trace.records();
    let count_kind = |pred: &dyn Fn(&SpanKind) -> bool| -> u64 {
        records.iter().filter(|r| pred(&r.kind)).count() as u64
    };
    let checks: [(&str, u64, u64); 5] = [
        (
            names::BATCHES_PRODUCED,
            run.registry.counter(names::BATCHES_PRODUCED),
            count_kind(&|k| *k == SpanKind::BatchPreprocessed),
        ),
        (
            names::BATCHES_CONSUMED,
            run.registry.counter(names::BATCHES_CONSUMED),
            run.report.batches,
        ),
        (
            names::SAMPLES_CONSUMED,
            run.registry.counter(names::SAMPLES_CONSUMED),
            run.report.samples,
        ),
        (
            names::WORKER_DEATHS,
            run.registry.counter(names::WORKER_DEATHS),
            count_kind(&|k| *k == SpanKind::WorkerDied),
        ),
        (
            names::REDISPATCHES,
            run.registry.counter(names::REDISPATCHES),
            count_kind(&|k| *k == SpanKind::BatchRedispatched),
        ),
    ];
    for (name, counted, truth) in checks {
        assert_eq!(counted, truth, "counter {name} disagrees with the trace");
    }
    let summary = fault_summary(&records);
    assert!(
        !summary.dead_workers.is_empty(),
        "the kill plan produced a worker death"
    );

    // -- Forensics: the metrics series annotate the death. --
    let forensics = fault_forensics(&records, &snapshot);
    for death in &forensics.deaths {
        println!(
            "worker {} died at {} (data queue depth {:?}, in flight {:?}, {} workers left)",
            death.pid,
            death.at,
            death.data_queue_depth,
            death.in_flight,
            death.live_workers_after.unwrap_or(0.0),
        );
    }
    for red in &forensics.redispatches {
        println!(
            "batch {} redispatched to worker {} after {:?}",
            red.batch_id, red.to_pid, red.latency_after_death,
        );
    }

    // -- Export shape. --
    let prom = to_prometheus(&snapshot);
    for needle in [
        "# TYPE lotus_batches_consumed_total counter",
        "lotus_queue_depth{queue=\"data_queue\"}",
        "# TYPE lotus_t2_batch_wait_ns summary",
        "lotus_live_workers 3",
    ] {
        assert!(prom.contains(needle), "prometheus export lacks {needle}");
    }
    let json = to_json(&snapshot);
    let doc: serde_json::Value = serde_json::from_str(&json)?;
    assert_eq!(
        doc["counters"][names::BATCHES_CONSUMED].as_u64(),
        Some(run.report.batches),
        "json counters round-trip"
    );
    assert!(
        doc["gauges"]["queue_depth.data_queue"][0]
            .as_array()
            .is_some(),
        "json gauge series are [time, value] pairs"
    );
    let csv = to_csv(&snapshot);
    assert!(csv.starts_with("metric,time_ns,value\n"), "csv header");

    // -- Determinism: an identical seeded run exports identical bytes. --
    let rerun = streamed_run(faults)?;
    let resnap = rerun.registry.snapshot();
    assert_eq!(prom, to_prometheus(&resnap), "prometheus determinism");
    assert_eq!(json, to_json(&resnap), "json determinism");
    assert_eq!(csv, to_csv(&resnap), "csv determinism");

    // -- Overhead self-accounting: the fan-out charged what sinks report. --
    let total: lotus::sim::Span = run.sinks.overheads().iter().map(|&(_, oh)| oh).sum();
    assert!(!total.is_zero(), "instrumented run charges overhead");
    let fresh = MetricsSink::new(Arc::new(MetricsRegistry::new()), 0);
    assert!(
        fresh.overhead().is_zero(),
        "a fresh sink has charged nothing"
    );

    println!("METRICS OK");
    Ok(())
}
