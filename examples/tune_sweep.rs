//! Self-validating `lotus tune` sweep: tunes two pipelines with opposite
//! characters and checks the tuner's recommendations match the paper's
//! characterization.
//!
//! * IC (ImageNet + ResNet18) at one worker is input-bound — the tuner
//!   must recommend more workers and predict a real speedup.
//! * IS (KiTS19 + U-Net3D) is GPU-bound — the tuner must *not* chase
//!   workers, and the verdict must say the accelerator is the limit.
//!
//! Run with `cargo run --example tune_sweep`. Prints `TUNE OK` when all
//! assertions hold.

use lotus::core::tune::TuneVerdict;
use lotus::tuning::{tune_experiment, TuneOptions};
use lotus::workloads::{ExperimentConfig, PipelineKind};

fn main() -> Result<(), String> {
    // IC, deliberately anchored at 1 worker (the paper's Table II
    // default): preprocessing cannot keep one GPU fed.
    let mut ic = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
    ic.num_workers = 1;
    let ic = ic.scaled_to(512);
    let report = tune_experiment(&ic, &TuneOptions::default())?;
    println!("=== IC (baseline 1 worker) ===");
    print!("{}", report.render_table());
    let speedup = report
        .predicted_speedup
        .ok_or("IC baseline must complete")?;
    assert!(
        report.recommended.num_workers > 1,
        "input-bound IC must want more workers"
    );
    assert!(speedup > 1.5, "IC speedup should be substantial: {speedup}");
    let rec = report.recommended_card();
    assert!(
        matches!(
            rec.verdict,
            Some(TuneVerdict::FetchBound | TuneVerdict::PreprocessingBound)
        ),
        "IC stays input-bound even tuned: {:?}",
        rec.verdict
    );

    // IS: a 750 ms GPU step per batch of 2 dwarfs preprocessing.
    let is = ExperimentConfig::paper_default(PipelineKind::ImageSegmentation).scaled_to(16);
    let report = tune_experiment(&is, &TuneOptions::default())?;
    println!("\n=== IS (GPU-bound) ===");
    print!("{}", report.render_table());
    let rec = report.recommended_card();
    assert_eq!(
        rec.verdict,
        Some(TuneVerdict::GpuBound),
        "IS is GPU-bound; loader tuning cannot move it"
    );
    let speedup = report
        .predicted_speedup
        .ok_or("IS baseline must complete")?;
    assert!(
        speedup < 1.2,
        "no loader config should promise big IS wins: {speedup}"
    );

    println!("\nTUNE OK");
    Ok(())
}
