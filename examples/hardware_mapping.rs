//! LotusMap end to end: build the Python-op → C/C++-function mapping by
//! isolating each op under the simulated VTune sampling driver, then use
//! it to attribute a whole pipeline's hardware counters to the ops.
//!
//! ```sh
//! cargo run --release --example hardware_mapping
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::sync::Arc;

use lotus::core::map::{required_runs, split_metrics, IsolationConfig};
use lotus::core::trace::{LotusTrace, LotusTraceConfig, OpLogMode};
use lotus::sim::Span;
use lotus::uarch::{CollectionMode, HwProfiler, Machine, MachineConfig, ProfilerConfig};
use lotus::workloads::{build_ic_mapping, ExperimentConfig, PipelineKind};

fn main() -> Result<(), Box<dyn Error>> {
    // §IV-B: how many isolation runs does a 660 µs function need under
    // VTune's 10 ms sampling to be caught with 75 % probability?
    let runs = required_runs(0.75, Span::from_micros(660), Span::from_millis(10));
    println!("run-count formula: a 660 µs function needs {runs} runs (paper: 20)\n");

    // Step 1 — the one-time mapping (Listing 4's isolation flow: warm-up,
    // sleep() gaps, resume/detach around the op of interest).
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let mapping = build_ic_mapping(&machine, IsolationConfig::default());
    println!("{}", mapping.to_table_string());

    // Step 2 — profile a training run with the hardware profiler attached
    // (the VTune µarch-exploration collection of §V-D) plus LotusTrace.
    let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
        op_mode: OpLogMode::Aggregate,
        ..LotusTraceConfig::default()
    }));
    let hw = Arc::new(HwProfiler::new(ProfilerConfig {
        sampling_interval: Span::from_millis(10),
        skid: Span::from_micros(120),
        mode: CollectionMode::Sampling,
        start_paused: false,
    }));
    ExperimentConfig::paper_default(PipelineKind::ImageClassification)
        .scaled_to(8_192)
        .build(&machine, Arc::clone(&trace) as _, Some(Arc::clone(&hw)))
        .run()?;

    // Step 3 — split the per-function counters onto the Python ops using
    // LotusTrace's elapsed-time weights.
    let op_times: BTreeMap<String, Span> = trace
        .op_stats()
        .iter()
        .map(|o| (o.name.clone(), o.total_cpu))
        .collect();
    let profile = hw.report(&machine);
    println!(
        "the profiler saw {} native functions; the mapping keeps the relevant ones\n",
        profile.len()
    );
    println!(
        "{:<24} {:>12} {:>10} {:>12} {:>12}",
        "op", "CPU (s)", "IPC", "FE-bound %", "DRAM-bound %"
    );
    for op in split_metrics(&profile, &mapping, &op_times) {
        if op.cpu_time.is_zero() {
            continue;
        }
        println!(
            "{:<24} {:>12.2} {:>10.2} {:>12.2} {:>12.2}",
            op.op,
            op.cpu_time.as_secs_f64(),
            op.events.ipc(),
            op.events.frontend_bound_fraction() * 100.0,
            op.events.dram_bound_fraction() * 100.0
        );
    }
    Ok(())
}
