//! LotusMap end to end: build the Python-op → C/C++-function mapping by
//! isolating each op under the simulated VTune sampling driver, then use
//! it to attribute a whole pipeline's hardware counters to the ops.
//!
//! ```sh
//! cargo run --release --example hardware_mapping
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::sync::Arc;

use lotus::core::map::{required_runs, split_metrics, top_k_agreement, IsolationConfig};
use lotus::core::trace::{LotusTrace, LotusTraceConfig, OpLogMode};
use lotus::sim::Span;
use lotus::uarch::{CollectionMode, HwProfiler, Machine, MachineConfig, ProfilerConfig};
use lotus::workloads::{
    build_ic_mapping, build_ic_mapping_for_batch, build_ic_mapping_native, ExperimentConfig,
    PipelineKind, NATIVE_MAPPING_BATCH,
};

fn main() -> Result<(), Box<dyn Error>> {
    // §IV-B: how many isolation runs does a 660 µs function need under
    // VTune's 10 ms sampling to be caught with 75 % probability?
    let runs = required_runs(0.75, Span::from_micros(660), Span::from_millis(10));
    println!("run-count formula: a 660 µs function needs {runs} runs (paper: 20)\n");

    // Step 1 — the one-time mapping (Listing 4's isolation flow: warm-up,
    // sleep() gaps, resume/detach around the op of interest).
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let mapping = build_ic_mapping(&machine, IsolationConfig::default());
    println!("{}", mapping.to_table_string());

    // Step 2 — profile a training run with the hardware profiler attached
    // (the VTune µarch-exploration collection of §V-D) plus LotusTrace.
    let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
        op_mode: OpLogMode::Aggregate,
        ..LotusTraceConfig::default()
    }));
    let hw = Arc::new(HwProfiler::new(ProfilerConfig {
        sampling_interval: Span::from_millis(10),
        skid: Span::from_micros(120),
        mode: CollectionMode::Sampling,
        start_paused: false,
    }));
    ExperimentConfig::paper_default(PipelineKind::ImageClassification)
        .scaled_to(8_192)
        .build(&machine, Arc::clone(&trace) as _, Some(Arc::clone(&hw)))
        .run()?;

    // Step 3 — split the per-function counters onto the Python ops using
    // LotusTrace's elapsed-time weights.
    let op_times: BTreeMap<String, Span> = trace
        .op_stats()
        .iter()
        .map(|o| (o.name.clone(), o.total_cpu))
        .collect();
    let profile = hw.report(&machine);
    println!(
        "the profiler saw {} native functions; the mapping keeps the relevant ones\n",
        profile.len()
    );
    println!(
        "{:<24} {:>12} {:>10} {:>12} {:>12}",
        "op", "CPU (s)", "IPC", "FE-bound %", "DRAM-bound %"
    );
    for op in split_metrics(&profile, &mapping, &op_times) {
        if op.cpu_time.is_zero() {
            continue;
        }
        println!(
            "{:<24} {:>12.2} {:>10.2} {:>12.2} {:>12.2}",
            op.op,
            op.cpu_time.as_secs_f64(),
            op.events.ipc(),
            op.events.frontend_bound_fraction() * 100.0,
            op.events.dram_bound_fraction() * 100.0
        );
    }

    // Step 4 — cross-validate the methodology against reality: execute
    // the REAL kernels under the cooperative span feed, fold the observed
    // spans into a mapping, and require each op's hottest native kernels
    // to appear in the simulated bucket. 60 isolation runs give the
    // 10 ms sampling grid enough chances to catch the short bulk-move
    // kernel the native side always observes.
    const TOP_K: usize = 3;
    let sim = build_ic_mapping_for_batch(
        &machine,
        IsolationConfig {
            runs_override: Some(60),
            ..IsolationConfig::default()
        },
        NATIVE_MAPPING_BATCH,
    );
    let native = build_ic_mapping_native(&machine, 3);
    println!("\nsimulated vs native top-{TOP_K} kernels per op:");
    println!(
        "{:<22} {:<52} simulated bucket",
        "op", "native (hottest first)"
    );
    let verdicts = top_k_agreement(&sim, &native, TOP_K);
    for v in &verdicts {
        let sim_names: Vec<&str> = sim
            .functions_for(&v.op)
            .map(|bucket| bucket.functions.iter().map(|f| f.name.as_str()).collect())
            .unwrap_or_default();
        println!(
            "{:<22} {:<52} {}",
            v.op,
            v.native_top.join(", "),
            sim_names.join(", ")
        );
        if !v.agrees() {
            println!(
                "{:<22} MISSING from sim: {}",
                "",
                v.missing_from_sim.join(", ")
            );
        }
    }
    if verdicts.is_empty() || !verdicts.iter().all(|v| v.agrees()) {
        return Err("sim-vs-native attribution disagreed".into());
    }
    println!(
        "\nMAPPING AGREE OK ({} ops cross-validated)",
        verdicts.len()
    );
    Ok(())
}
