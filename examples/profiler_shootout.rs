//! Profiler shoot-out: run the same pipeline under LotusTrace and the
//! four baseline profiler models (Scalene, py-spy, austin, PyTorch
//! profiler) and compare overheads and functionality (§VI).
//!
//! ```sh
//! cargo run --release --example profiler_shootout
//! ```

use std::error::Error;

use lotus::profilers::ComparisonHarness;
use lotus::workloads::{ExperimentConfig, PipelineKind};

fn human(bytes: u64) -> String {
    match bytes {
        b if b >= 1_000_000_000 => format!("{:.1} GB", b as f64 / 1e9),
        b if b >= 1_000_000 => format!("{:.1} MB", b as f64 / 1e6),
        b => format!("{:.1} KB", b as f64 / 1e3),
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    // The paper's §VI-B configuration: IC, batch 512, 1 GPU, 1 loader —
    // on a truncated ImageNet so the example runs in seconds.
    let mut config = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
    config.batch_size = 512;
    let harness = ComparisonHarness::new(config.scaled_to(8_192));

    println!(
        "{:<18} {:>11} {:>12} {:>12}   Epoch/Batch/Async/Wait/Delay",
        "profiler", "wall (s)", "overhead %", "log size"
    );
    for row in harness.run_all() {
        println!(
            "{:<18} {:>11.1} {:>12.1} {:>12}   {}{}",
            row.profiler,
            row.wall_time.as_secs_f64(),
            row.wall_overhead * 100.0,
            human(row.log_bytes),
            row.capabilities.row(),
            if row.out_of_memory { "  (OOM!)" } else { "" }
        );
    }
    println!(
        "\nLotusTrace is the only collector that sees the asynchronous \
         main↔worker data flow, at near-zero overhead (Tables III and IV)."
    );
    Ok(())
}
