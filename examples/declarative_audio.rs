//! Declarative pipelines beyond torchvision: a tf.data-style declaration
//! of the audio-classification extension pipeline, traced by LotusTrace
//! without any pipeline-specific instrumentation — the paper's
//! generality argument (§I, §II-A) in action.
//!
//! ```sh
//! cargo run --release --example declarative_audio
//! ```

use std::error::Error;
use std::sync::Arc;

use lotus::core::trace::insights::analyze;
use lotus::core::trace::LotusTrace;
use lotus::data::{AudioDatasetModel, DType};
use lotus::dataflow::{GpuConfig, Pipeline, Source};
use lotus::sim::Span;
use lotus::transforms::{MelSpectrogram, PadTrim, Resample, Sample, SpecAugment, TransformCtx};
use lotus::uarch::{CostCoeffs, KernelId, Machine, MachineConfig};
use lotus::workloads::IoModel;

/// A FLAC-clip source (the `tf.data` source dataset analog).
struct FlacSource {
    model: AudioDatasetModel,
    io: IoModel,
    decode: KernelId,
}

impl Source for FlacSource {
    fn len(&self) -> u64 {
        self.model.len()
    }

    fn load(&self, index: u64, ctx: &mut TransformCtx<'_>) -> Sample {
        let record = self.model.record(index);
        ctx.cpu
            .idle(self.io.read_span_with(record.file_bytes, ctx.rng));
        ctx.cpu.exec(self.decode, record.samples as f64);
        Sample::tensor_meta(&[record.samples as usize], DType::F32)
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let source = Arc::new(FlacSource {
        model: AudioDatasetModel::audioset(21).truncated(4_096),
        io: IoModel::cloudlab_iscsi(),
        decode: machine.kernel(
            "FLAC__stream_decoder_process_single",
            "libFLAC.so.8",
            CostCoeffs {
                base_insts: 3_000.0,
                insts_per_unit: 95.0,
                ..CostCoeffs::compute_default()
            },
        ),
    });

    // The declarative pipeline: source → resample → pad → mel → augment,
    // batched and prefetched — the hooks LotusTrace instruments are the
    // declaration itself.
    let trace = Arc::new(LotusTrace::new());
    let report = Pipeline::from_source(source)
        .map(Box::new(Resample::new(&machine, 22_050, 16_000)))
        .map(Box::new(PadTrim::new(&machine, 64_000)))
        .map(Box::new(MelSpectrogram::new(
            &machine, 16_000, 1024, 512, 64,
        )))
        .map(Box::new(SpecAugment::new(&machine, 16, 8)))
        .batch(64)
        .prefetch(2)
        .workers(4)
        .shuffle(7)
        .build_job_with(
            &machine,
            GpuConfig::v100(1, Span::from_micros(1_200)),
            Arc::clone(&trace) as _,
        )
        .run()?;

    println!(
        "audio epoch: {} batches / {} clips in {:.1}s of virtual time\n",
        report.batches,
        report.samples,
        report.elapsed.as_secs_f64()
    );
    println!("{:<20} {:>9} {:>9}", "stage", "avg ms", "P90 ms");
    for op in trace.op_stats() {
        println!(
            "{:<20} {:>9.2} {:>9.2}",
            op.name, op.summary.mean, op.summary.p90
        );
    }
    println!("\n{}", analyze(&trace.records()));
    Ok(())
}
