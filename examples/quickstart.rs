//! Quickstart: trace one (scaled-down) image-classification epoch with
//! LotusTrace and look at what the paper's Table II reports.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::error::Error;
use std::sync::Arc;

use lotus::core::trace::analysis::{batch_timelines, BatchTimeline};
use lotus::core::trace::chrome::{to_chrome_trace, ChromeTraceOptions};
use lotus::core::trace::LotusTrace;
use lotus::uarch::{Machine, MachineConfig};
use lotus::workloads::{ExperimentConfig, PipelineKind};

fn main() -> Result<(), Box<dyn Error>> {
    // The simulated testbed: the paper's CloudLab c4130 node.
    let machine = Machine::new(MachineConfig::cloudlab_c4130());

    // LotusTrace plugs into the DataLoader's tracer hooks.
    let trace = Arc::new(LotusTrace::new());

    // The paper's IC pipeline (ImageNet + ResNet18), truncated to 4096
    // images so this example finishes in about a second.
    let config =
        ExperimentConfig::paper_default(PipelineKind::ImageClassification).scaled_to(4_096);
    let report = config
        .build(&machine, Arc::clone(&trace) as _, None)
        .run()?;

    println!(
        "epoch finished: {} batches, {} samples, {:.1}s of virtual time",
        report.batches,
        report.samples,
        report.elapsed.as_secs_f64()
    );

    // [T3] Per-operation elapsed times (Table II).
    println!("\nper-op elapsed time:");
    for op in trace.op_stats() {
        println!(
            "  {:<24} avg {:>8.2} ms   P90 {:>8.2} ms   <10ms {:>5.1}%",
            op.name,
            op.summary.mean,
            op.summary.p90,
            op.frac_below_10ms * 100.0
        );
    }

    // [T1]/[T2] Per-batch fetch, wait and delay.
    let timelines = batch_timelines(&trace.records());
    let mean_wait: f64 = timelines
        .iter()
        .filter_map(BatchTimeline::wait_span)
        .map(|s| s.as_millis_f64())
        .sum::<f64>()
        / timelines.len() as f64;
    println!("\nmean main-process wait per batch: {mean_wait:.1} ms");

    // Visualization: a Chrome Trace Viewer file with flow arrows.
    let doc = to_chrome_trace(&trace.records(), ChromeTraceOptions { coarse: true });
    let path = "target/quickstart_trace.json";
    std::fs::write(path, serde_json::to_string_pretty(&doc)?)?;
    println!("coarse trace written to {path} — open it in chrome://tracing");
    Ok(())
}
