//! The real-compute path: a small epoch where every image is actually
//! synthesized, SJPG-encoded, decoded and transformed — pixels and all —
//! through exactly the same public API the cost-only simulations use.
//!
//! ```sh
//! cargo run --release --example real_decode
//! ```

use std::error::Error;
use std::sync::Arc;

use lotus::core::trace::LotusTrace;
use lotus::data::dist::LogNormal;
use lotus::data::ImageDatasetModel;
use lotus::dataflow::{DataLoaderConfig, FaultPlan, GpuConfig, LoaderMutation, TrainingJob};
use lotus::sim::Span;
use lotus::transforms::{Normalize, RandomHorizontalFlip, RandomResizedCrop, ToTensor};
use lotus::uarch::{Machine, MachineConfig};
use lotus::workloads::{ImageFolderDataset, IoModel};

fn main() -> Result<(), Box<dyn Error>> {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());

    // A tiny dataset of small images (materialization decodes real pixels,
    // so keep this modest).
    let model = ImageDatasetModel::custom(
        "tiny-imagenet",
        64,
        42,
        LogNormal::from_mean_std(9_000.0, 4_000.0),
        (96, 160),
        0.55,
    );
    let transforms = lotus::transforms::Compose::new(
        &machine,
        vec![
            Box::new(RandomResizedCrop::new(&machine, 64)),
            Box::new(RandomHorizontalFlip::new(&machine, 0.5)),
            Box::new(ToTensor::new(&machine)),
            Box::new(Normalize::imagenet(&machine)),
        ],
    );
    let dataset =
        ImageFolderDataset::new(&machine, model, IoModel::local_nvme(), transforms).materialized(); // ← real pixels: synthesize → encode → decode

    let trace = Arc::new(LotusTrace::new());
    let report = TrainingJob {
        machine: Arc::clone(&machine),
        dataset: Arc::new(dataset),
        storage: None,
        loader: DataLoaderConfig {
            batch_size: 8,
            num_workers: 2,
            ..DataLoaderConfig::default()
        },
        gpu: GpuConfig::v100(1, Span::from_micros(500)),
        tracer: Arc::clone(&trace) as _,
        hw_profiler: None,
        seed: 7,
        epochs: 1,
        faults: FaultPlan::default(),
        controller: None,
        mutation: LoaderMutation::None,
    }
    .run()?;

    println!(
        "real-decode epoch: {} batches / {} images, {:.1} ms of virtual time",
        report.batches,
        report.samples,
        report.elapsed.as_millis_f64()
    );
    println!("\nper-op elapsed time over real pixel data:");
    for op in trace.op_stats() {
        println!(
            "  {:<24} avg {:>8.3} ms over {} executions",
            op.name, op.summary.mean, op.count
        );
    }
    println!(
        "\nEvery image above went through the full SJPG decode (entropy decode, \
         IDCT, chroma upsample, YCbCr→RGB) and real bilinear resampling."
    );
    Ok(())
}
