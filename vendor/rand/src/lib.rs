//! Offline stub of the `rand` crate.
//!
//! The build container has no access to a crate registry, so the workspace
//! vendors the small API subset it actually uses: [`rngs::StdRng`] +
//! [`SeedableRng`], the [`Rng`] extension trait with `gen_range` /
//! `gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 stream the real `StdRng` uses, so absolute sequences differ
//! from upstream `rand`, but the repo only relies on *self-consistent*
//! determinism (same seed ⇒ same virtual-time schedule), which holds.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// (the same expansion the real crate documents).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types with a uniform-sampling routine (stands in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Ranges a value can be uniformly sampled from (stands in for
/// `rand::distributions::uniform::SampleRange`).
///
/// Kept as a *single* generic impl per range type (like the real crate)
/// so unsuffixed literals in `gen_range(0.5..3.0)` still infer.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

macro_rules! uniform_int_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128 + i128::from(inclusive)) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

uniform_int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let denom = if inclusive { (1u64 << 53) - 1 } else { 1u64 << 53 };
                let unit = (rng.next_u64() >> 11) as f64 / denom as f64;
                let v = lo as f64 + unit * (hi as f64 - lo as f64);
                // For the half-open case the multiply can land exactly on
                // `hi` only through rounding; clamp just below.
                if !inclusive && v >= hi as f64 {
                    <$t>::from_bits(hi.to_bits() - 1)
                } else {
                    v as $t
                }
            }
        }
    )*};
}

uniform_float_impl!(f32, f64);

/// Convenience extension methods over any [`RngCore`] (subset of
/// `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++ here; the real
    /// crate uses ChaCha12 — see the crate docs for the compatibility
    /// caveat).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *w = u64::from_le_bytes(b);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers (subset of `rand::seq`).

    use super::Rng;

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-12i32..=12);
            assert!((-12..=12).contains(&i));
        }
    }

    #[test]
    fn floats_cover_the_unit_interval_roughly_uniformly() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle staying sorted is (1e-158)-unlikely"
        );
    }
}
