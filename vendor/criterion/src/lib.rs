//! Offline stub of `criterion`.
//!
//! Provides just enough API for this workspace's micro-benchmarks to build
//! and run: [`Criterion::bench_function`], [`Bencher::iter`], and the
//! `criterion_group!` / `criterion_main!` macros. Instead of statistical
//! sampling it runs each benchmark a fixed small number of iterations and
//! prints the mean wall-clock time — enough to eyeball regressions without
//! the real crate's dependency tree.

use std::hint::black_box;
use std::time::Instant;

/// Iterations per benchmark (the real crate samples adaptively).
const ITERS: u32 = 20;

/// Warmup iterations excluded from timing.
const WARMUP: u32 = 3;

/// The benchmark registry/driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` as the benchmark named `id` and prints its mean time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            total_nanos: 0,
            timed_iters: 0,
        };
        f(&mut bencher);
        let mean = if bencher.timed_iters == 0 {
            0
        } else {
            bencher.total_nanos / u128::from(bencher.timed_iters)
        };
        println!("bench {id}: {mean} ns/iter (n={ITERS})");
        self
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    total_nanos: u128,
    timed_iters: u32,
}

impl Bencher {
    /// Runs `routine` repeatedly, timing all but the warmup iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..WARMUP {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.total_nanos += start.elapsed().as_nanos();
        self.timed_iters += ITERS;
    }
}

/// Declares a group function running each target against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut count = 0u32;
        Criterion::default().bench_function("stub", |b| b.iter(|| count += 1));
        assert_eq!(count, WARMUP + ITERS);
    }
}
