//! Offline stub of `serde_json`.
//!
//! Implements the subset this workspace uses: [`Value`] with the usual
//! accessors (`get`, `pointer`, `as_*`, indexing), a spec-conforming JSON
//! parser ([`from_str`]), a pretty serializer ([`to_string_pretty`]), and
//! a [`json!`] macro. One deliberate simplification: `json!` takes
//! *expressions* as object/array values, so nested literals are written
//! `json!({ "outer": json!({ ... }) })` instead of being inlined.

use std::fmt;

pub use serde::Content;
use serde::{Deserialize, Serialize};

/// A JSON document (thin wrapper over [`serde::Content`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Value(pub Content);

/// The statically-known `null`, returned when indexing misses.
static NULL: Value = Value(Content::Null);

impl Value {
    /// JSON `null`.
    #[must_use]
    pub fn null() -> Value {
        Value(Content::Null)
    }

    /// Object-field lookup; `None` for non-objects and missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match &self.0 {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| value_ref(v)),
            _ => None,
        }
    }

    /// RFC 6901 JSON-pointer lookup (`"/args/batch_id"`).
    #[must_use]
    pub fn pointer(&self, pointer: &str) -> Option<&Value> {
        if pointer.is_empty() {
            return Some(self);
        }
        let mut current = self;
        for token in pointer.strip_prefix('/')?.split('/') {
            let token = token.replace("~1", "/").replace("~0", "~");
            current = match &current.0 {
                Content::Map(_) => current.get(&token)?,
                Content::Seq(items) => {
                    let idx: usize = token.parse().ok()?;
                    value_ref(items.get(idx)?)
                }
                _ => return None,
            };
        }
        Some(current)
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match &self.0 {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match &self.0 {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if integral.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match &self.0 {
            Content::I64(i) => Some(*i),
            Content::U64(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match &self.0 {
            Content::U64(u) => Some(*u),
            Content::I64(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match &self.0 {
            Content::F64(f) => Some(*f),
            Content::U64(u) => Some(*u as f64),
            Content::I64(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match &self.0 {
            // SAFETY of the transmute-free cast: Value is repr-transparent
            // over Content in all but name; we instead rebuild on demand.
            Content::Seq(_) => Some(seq_ref(&self.0)),
            _ => None,
        }
    }
}

/// Reinterprets `&Content` as `&Value`.
///
/// `Value` is a newtype with the same layout as `Content`; this lets
/// accessors hand out references without cloning.
fn value_ref(content: &Content) -> &Value {
    // SAFETY: `Value` is a single-field tuple struct over `Content`, so
    // the two have identical layout.
    unsafe { &*std::ptr::from_ref(content).cast::<Value>() }
}

/// Reinterprets a `&Content::Seq`'s vector as `&Vec<Value>`.
fn seq_ref(content: &Content) -> &Vec<Value> {
    match content {
        // SAFETY: `Value` wraps `Content` transparently, so `Vec<Content>`
        // and `Vec<Value>` have identical layout.
        Content::Seq(items) => unsafe { &*std::ptr::from_ref(items).cast::<Vec<Value>>() },
        _ => unreachable!("seq_ref on non-seq"),
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match &self.0 {
            Content::Seq(items) => items.get(idx).map_or(&NULL, value_ref),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

macro_rules! value_from_impl {
    ($($t:ty => $variant:ident ($conv:expr)),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                #[allow(clippy::redundant_closure_call, clippy::redundant_closure)]
                Value(Content::$variant(($conv)(v)))
            }
        }
    )*};
}

value_from_impl!(
    bool => Bool(|v| v),
    i8 => I64(|v| i64::from(v)),
    i16 => I64(|v| i64::from(v)),
    i32 => I64(|v| i64::from(v)),
    i64 => I64(|v| v),
    u8 => U64(|v| u64::from(v)),
    u16 => U64(|v| u64::from(v)),
    u32 => U64(|v| u64::from(v)),
    u64 => U64(|v| v),
    usize => U64(|v| v as u64),
    f32 => F64(|v| f64::from(v)),
    f64 => F64(|v| v),
    String => Str(|v| v),
    &str => Str(|v: &str| v.to_string()),
);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value(Content::Seq(
            items.into_iter().map(|v| v.into().0).collect(),
        ))
    }
}

impl Serialize for Value {
    fn serialize_content(&self) -> Content {
        self.0.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_content(content: &Content) -> Result<Value, String> {
        Ok(Value(content.clone()))
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Builds a [`Value`] from a JSON-shaped literal.
///
/// Object values and array elements are arbitrary expressions converted
/// with [`Value::from`]; nest further literals with an explicit `json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::null() };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::from(vec![ $($crate::Value::from($elem)),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value($crate::Content::Map(vec![
            $( ($key.to_string(), $crate::Value::from($value).0) ),*
        ]))
    };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Serializes any [`Serialize`] value to pretty-printed JSON.
///
/// # Errors
///
/// Infallible in this stub; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.serialize_content(), 0, &mut out);
    Ok(out)
}

fn write_pretty(content: &Content, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let inner_pad = "  ".repeat(indent + 1);
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(f) => write_f64(*f, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&inner_pad);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&inner_pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            // Keep a decimal point so the token parses back as a float.
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&f.to_string());
        }
    } else {
        // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns a parse or shape error with a short description.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value().map_err(|message| Error { message })?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error {
            message: format!("trailing characters at byte {}", parser.pos),
        });
    }
    T::deserialize_content(&content).map_err(|message| Error { message })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Content, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'n' => self.parse_keyword("null", Content::Null),
            b't' => self.parse_keyword("true", Content::Bool(true)),
            b'f' => self.parse_keyword("false", Content::Bool(false)),
            b'"' => Ok(Content::Str(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Content) -> Result<Content, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(format!("invalid keyword at byte {}", self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape codepoint")?);
                        }
                        other => {
                            return Err(format!("invalid escape '\\{}'", other as char));
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|e| e.to_string())
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|e| e.to_string())
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|e| e.to_string())
        }
    }

    fn parse_array(&mut self) -> Result<Content, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_documents() {
        let doc = json!({
            "name": "SBatchWait_3",
            "ts": 1.5,
            "pid": 42u32,
            "args": json!({ "out_of_order": true }),
            "tags": json!(["a", "b"]),
        });
        assert_eq!(doc["name"], "SBatchWait_3");
        assert_eq!(doc["pid"].as_u64(), Some(42));
        assert_eq!(
            doc.pointer("/args/out_of_order").and_then(Value::as_bool),
            Some(true)
        );
        assert_eq!(doc["tags"].as_array().unwrap().len(), 2);
        assert_eq!(doc["missing"], Value::null());
    }

    #[test]
    fn round_trips_through_text() {
        let doc = json!({
            "a": 1u64,
            "b": -2i64,
            "c": 1.25,
            "d": json!([json!({ "x": "y\n\"quoted\"" }), json!(null)]),
        });
        let text = to_string_pretty(&doc).unwrap();
        let parsed: Value = from_str(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v: Value = from_str(" { \"k\" : [ 1 , 2.0e1 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(v["k"][0].as_u64(), Some(1));
        assert_eq!(v["k"][1].as_f64(), Some(20.0));
        assert_eq!(v["k"][2], "A");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let text = to_string_pretty(&json!({ "dur": 2000.0 })).unwrap();
        assert!(text.contains("2000.0"), "{text}");
    }
}
