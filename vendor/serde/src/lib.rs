//! Offline stub of the `serde` traits.
//!
//! The build container has no crate registry, so the workspace vendors a
//! minimal self-describing data model: [`Serialize`] lowers a value to
//! [`Content`], [`Deserialize`] lifts it back. `serde_json` (also
//! vendored) renders `Content` to JSON text and parses it back.
//!
//! Unlike real serde there is no `#[derive(Serialize, Deserialize)]` —
//! the handful of serialized types in this workspace implement the traits
//! by hand (see `lotus-core`'s `map::mapping`).

use std::collections::BTreeMap;

/// A self-describing value: the stub's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered string-keyed map (insertion order preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map lookup by key (`None` for non-maps and missing keys).
    #[must_use]
    pub fn get_field(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Lower `self` to the self-describing data model.
pub trait Serialize {
    /// Produces the [`Content`] representation.
    fn serialize_content(&self) -> Content;
}

/// Lift a value back from the data model.
pub trait Deserialize: Sized {
    /// Parses `content`, describing the first mismatch on failure.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the shape mismatch.
    fn deserialize_content(content: &Content) -> Result<Self, String>;
}

impl Serialize for Content {
    fn serialize_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize_content(content: &Content) -> Result<Content, String> {
        Ok(content.clone())
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for &str {
    fn serialize_content(&self) -> Content {
        Content::Str((*self).to_string())
    }
}

impl Deserialize for String {
    fn deserialize_content(content: &Content) -> Result<String, String> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(content: &Content) -> Result<bool, String> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_content(content: &Content) -> Result<f64, String> {
        match content {
            Content::F64(f) => Ok(*f),
            Content::U64(u) => Ok(*u as f64),
            Content::I64(i) => Ok(*i as f64),
            other => Err(format!("expected number, got {other:?}")),
        }
    }
}

macro_rules! serde_uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<$t, String> {
                let v = match content {
                    Content::U64(u) => *u,
                    Content::I64(i) if *i >= 0 => *i as u64,
                    other => return Err(format!("expected unsigned integer, got {other:?}")),
                };
                <$t>::try_from(v).map_err(|_| format!("integer {v} out of range"))
            }
        }
    )*};
}

serde_uint_impl!(u8, u16, u32, u64, usize);

macro_rules! serde_int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<$t, String> {
                let v = match content {
                    Content::I64(i) => *i,
                    Content::U64(u) => i64::try_from(*u)
                        .map_err(|_| format!("integer {u} out of range"))?,
                    other => return Err(format!("expected integer, got {other:?}")),
                };
                <$t>::try_from(v).map_err(|_| format!("integer {v} out of range"))
            }
        }
    )*};
}

serde_int_impl!(i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(content: &Content) -> Result<Vec<T>, String> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize_content).collect(),
            other => Err(format!("expected sequence, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(content: &Content) -> Result<Option<T>, String> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_content(content: &Content) -> Result<BTreeMap<String, V>, String> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
                .collect(),
            other => Err(format!("expected map, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize_content(&42u64.serialize_content()), Ok(42));
        assert_eq!(
            i32::deserialize_content(&(-7i32).serialize_content()),
            Ok(-7)
        );
        assert_eq!(
            String::deserialize_content(&"hi".serialize_content()),
            Ok("hi".to_string())
        );
        assert_eq!(
            bool::deserialize_content(&true.serialize_content()),
            Ok(true)
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(
            Vec::<u64>::deserialize_content(&v.serialize_content()),
            Ok(v)
        );
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1i64);
        assert_eq!(
            BTreeMap::<String, i64>::deserialize_content(&m.serialize_content()),
            Ok(m)
        );
    }

    #[test]
    fn shape_mismatches_are_described() {
        let err = u64::deserialize_content(&Content::Str("x".into())).unwrap_err();
        assert!(err.contains("expected unsigned integer"));
    }
}
