//! Offline stub of `proptest`.
//!
//! Implements the subset this workspace's property tests use: random-input
//! generation with deterministic per-test seeding, the [`Strategy`] trait
//! with `prop_map`, range / regex-string / tuple / collection / option
//! strategies, and the `proptest!` / `prop_assert!` / `prop_oneof!` macros.
//!
//! Deliberate simplifications versus the real crate: no shrinking (a
//! failing case reports its inputs via `Debug` where available, but is not
//! minimized), and regex strategies support only the character-class +
//! bounded-repetition subset the tests use (`[a-z_]{1,20}` style).

pub use rand;

pub mod test_runner {
    //! Test-runner configuration.

    /// Per-`proptest!` block configuration (subset: case count).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            (**self).generate(rng)
        }
    }

    /// A strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (built by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics on an empty arm list.
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    impl<T: rand::SampleUniform + PartialOrd + Copy> Strategy for core::ops::Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform + PartialOrd + Copy> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy_impl {
        ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy_impl!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9),
    );

    /// String strategies from a regex-like pattern (char classes with
    /// bounded repetition; see crate docs for the supported subset).
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let candidates: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                    let class = &chars[i + 1..i + close];
                    i += close + 1;
                    expand_class(class, pattern)
                }
                '.' => {
                    i += 1;
                    (' '..='~').collect()
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                    i += 1;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi) = parse_quantifier(&chars, &mut i, pattern);
            let count = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
            for _ in 0..count {
                out.push(candidates[rng.gen_range(0..candidates.len())]);
            }
        }
        out
    }

    fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
        assert!(
            class.first() != Some(&'^'),
            "negated classes are not supported (pattern {pattern:?})"
        );
        let mut out = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i], class[i + 2]);
                assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                out.extend(lo..=hi);
                i += 3;
            } else {
                out.push(class[i]);
                i += 1;
            }
        }
        assert!(
            !out.is_empty(),
            "empty character class in pattern {pattern:?}"
        );
        out
    }

    /// Parses an optional `{n}` / `{m,n}` / `?` / `*` / `+` at `*i`,
    /// returning the (inclusive) repetition bounds. `*`/`+` are capped at
    /// 8 since generation must terminate.
    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
                let body: String = chars[*i + 1..*i + close].iter().collect();
                *i += close + 1;
                let parse = |s: &str| {
                    s.parse::<usize>()
                        .unwrap_or_else(|_| panic!("bad quantifier in pattern {pattern:?}"))
                };
                match body.split_once(',') {
                    Some((lo, hi)) => (parse(lo), parse(hi)),
                    None => {
                        let n = parse(&body);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            _ => (1, 1),
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait behind `any::<T>()`.

    use std::marker::PhantomData;

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Types with a canonical strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! arbitrary_full_range_impl {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    arbitrary_full_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut StdRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    #[must_use]
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! `prop::collection` strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Sizes a generated collection: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws one size.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with `size` drawn from `Z`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `prop::option` strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some(inner)` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prop {
    //! The `prop::` module path used by test code.

    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    //! Everything a `proptest!` block needs in scope.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Deterministic per-test seed: FNV-1a over the test name.
#[must_use]
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `cases` random cases with a deterministic,
/// name-derived seed. `prop_assert!` failures report the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::rand::SeedableRng as _;
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::rand::rngs::StdRng::seed_from_u64(
                $crate::seed_for(stringify!($name)),
            );
            $(let $arg = $strategy;)*
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body Ok(()) })();
                if let Err(message) = outcome {
                    panic!("proptest case {case}/{}: {message}", config.cases);
                }
            }
        }
    )*};
}

/// Asserts inside a `proptest!` body; failure fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: {} != {} (both {l:?})",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, f in -1.0f64..1.0, o in prop::option::of(1usize..4)) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((-1.0..1.0).contains(&f));
            if let Some(x) = o {
                prop_assert!((1..4).contains(&x));
            }
        }

        #[test]
        fn regex_patterns_match_shape(s in "[a-z_]{1,20}", t in "[A-Za-z][A-Za-z0-9_()]{0,24}") {
            prop_assert!(!s.is_empty() && s.len() <= 20, "{s}");
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            prop_assert!(!t.is_empty() && t.len() <= 25);
            prop_assert!(t.chars().next().unwrap().is_ascii_alphabetic());
        }

        #[test]
        fn tuples_vecs_and_maps_compose(
            pairs in prop::collection::vec(("[a-z]{1,4}", 0u32..9), 0..6),
            flag in any::<bool>(),
            mapped in (0u8..5).prop_map(|x| x * 2),
        ) {
            prop_assert!(pairs.len() < 6);
            for (name, n) in &pairs {
                prop_assert!(!name.is_empty() && *n < 9);
            }
            prop_assert!(mapped % 2 == 0 && mapped <= 8);
            let _ = flag;
        }

        #[test]
        fn oneof_unions_all_arms(k in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(k == 1 || k == 2 || k == 5 || k == 6);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }
}
