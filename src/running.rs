//! The concrete `lotus run` / `lotus bench` runner: one measured epoch of
//! a workload pipeline on a chosen [`ExecutionBackend`].
//!
//! Both backends go through the identical zero-overhead measurement
//! harness `lotus tune` uses (a [`LotusTrace`] with no per-record charge
//! plus a free [`MetricsSink`]), fold into the same
//! [`TrialMeasurement`]/[`Scorecard`], and are classified by the same
//! bottleneck verdict — which is what makes sim-vs-native
//! cross-validation a one-line comparison. The native path materializes
//! real pixels for the image pipelines (IC, OD), so its trace measures
//! the actual codec and transform kernels.

use std::sync::Arc;

use lotus_core::map::{
    mapping_from_native, top_k_agreement, IsolationConfig, Mapping, OpAgreement, StorageAttribution,
};
use lotus_core::metrics::{names, MetricsRegistry, MetricsSink, MultiSink};
use lotus_core::trace::analysis::op_class_totals;
use lotus_core::trace::{LotusTrace, LotusTraceConfig, OpLogMode};
use lotus_core::tune::{Scorecard, TrialConfig, TrialMeasurement};
use lotus_dataflow::{
    ExecutionBackend, FaultPlan, JobReport, NativeBackend, NativeOptions, SimBackend,
};
use lotus_profilers::{NativeSampler, SamplerConfig};
use lotus_sim::Span;
use lotus_uarch::{Machine, MachineConfig};
use lotus_workloads::{build_ic_mapping_for_batch, ExperimentConfig, PipelineKind};
use serde_json::{Content, Value};

/// Which execution substrate to run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Deterministic virtual-time simulation.
    Sim,
    /// Real OS threads, real channels, wall clock, real pixels.
    Native,
}

impl BackendKind {
    /// Parses `"sim"` / `"native"`.
    #[must_use]
    pub fn parse(name: &str) -> Option<BackendKind> {
        match name {
            "sim" => Some(BackendKind::Sim),
            "native" => Some(BackendKind::Native),
            _ => None,
        }
    }

    /// The backend's stable name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Native => "native",
        }
    }
}

/// Options for one measured run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Substrate to execute on.
    pub backend: BackendKind,
    /// Native only: sleep for the GPU model's h2d + step span per
    /// consumed batch, so the wait structure matches the simulation's.
    pub emulate_gpu: bool,
    /// Native only: the main process's liveness-polling interval.
    pub status_check: Span,
    /// Materialize real pixels in the image pipelines. On by default for
    /// native runs (that is the point of them); forced off is useful for
    /// fast protocol-only tests.
    pub materialize: bool,
    /// Native only: run the OS-level sampling profiler alongside the job
    /// and produce per-op native kernel attribution (`lotus run
    /// --profile`). Ignored on the simulated backend, whose profiling
    /// goes through [`lotus_uarch::HwProfiler`] instead.
    pub profile: bool,
    /// Fault plan applied to the run.
    pub faults: FaultPlan,
}

impl RunOptions {
    /// Options for a simulated run (cost-only payloads — materialization
    /// would not change any simulated timestamp).
    #[must_use]
    pub fn sim() -> RunOptions {
        RunOptions {
            backend: BackendKind::Sim,
            emulate_gpu: true,
            status_check: Span::from_secs(5),
            materialize: false,
            profile: false,
            faults: FaultPlan::default(),
        }
    }

    /// Options for a native run: real pixels and an emulated GPU
    /// consumer, with the PyTorch 5 s liveness-polling interval.
    #[must_use]
    pub fn native() -> RunOptions {
        RunOptions {
            backend: BackendKind::Native,
            emulate_gpu: true,
            status_check: Span::from_secs(5),
            materialize: true,
            profile: false,
            faults: FaultPlan::default(),
        }
    }

    /// Options for the given backend kind, with that backend's defaults.
    #[must_use]
    pub fn for_backend(backend: BackendKind) -> RunOptions {
        match backend {
            BackendKind::Sim => RunOptions::sim(),
            BackendKind::Native => RunOptions::native(),
        }
    }
}

/// What the native profiler measured alongside a run.
#[derive(Debug)]
pub struct ProfileReport {
    /// Self-accounted profiling cost: sampler scrapes plus feed
    /// recording.
    pub overhead: Span,
    /// That overhead as a fraction of the run's wall elapsed time.
    pub overhead_fraction: f64,
    /// Number of kernel spans the cooperative feed observed.
    pub kernel_samples: usize,
    /// Number of OS-level sampler ticks taken.
    pub ticks: usize,
    /// Peak `VmRSS` across ticks, in kB (0 when `/proc` is unreadable).
    pub rss_peak_kb: u64,
    /// Per-op native attribution in the LotusMap mapping shape.
    pub attribution: Mapping,
    /// Sim-vs-native cross-validation (IC pipeline only): each op's
    /// native top-k kernels checked against the simulated mapping.
    pub agreement: Option<Vec<OpAgreement>>,
}

impl ProfileReport {
    /// True when cross-validation ran and every compared op agreed.
    #[must_use]
    pub fn agrees(&self) -> bool {
        self.agreement
            .as_ref()
            .is_some_and(|v| !v.is_empty() && v.iter().all(OpAgreement::agrees))
    }
}

/// Everything one measured run produces.
#[derive(Debug)]
pub struct RunOutcome {
    /// Name of the backend that executed the run.
    pub backend: &'static str,
    /// The job's totals (elapsed, batches, samples).
    pub report: JobReport,
    /// The folded measurement (metrics snapshot + op-class totals).
    pub measurement: TrialMeasurement,
    /// The scorecard — throughput, wait share, bottleneck verdict —
    /// computed by the same fold `lotus tune` uses.
    pub scorecard: Scorecard,
    /// The full LotusTrace of the run (lintable, Chrome-exportable).
    pub trace: Arc<LotusTrace>,
    /// Present when the run was profiled (`RunOptions::profile` on the
    /// native backend).
    pub profile: Option<ProfileReport>,
    /// Per-tier storage attribution (counters joined with the trace's
    /// \[T0\] spans), present when the experiment configured a simulated
    /// storage hierarchy.
    pub storage: Option<StorageAttribution>,
}

/// Runs one measured epoch of `experiment` on the chosen backend.
///
/// # Examples
///
/// ```
/// use lotus::running::{run_experiment, RunOptions};
/// use lotus::workloads::{ExperimentConfig, PipelineKind};
///
/// let experiment = ExperimentConfig::paper_default(PipelineKind::ImageClassification)
///     .scaled_to(256);
/// let outcome = run_experiment(&experiment, &RunOptions::sim())?;
/// assert_eq!(outcome.backend, "sim");
/// assert!(outcome.scorecard.throughput > 0.0);
/// # Ok::<(), String>(())
/// ```
///
/// # Errors
///
/// Returns the loader-validation or job error as a string.
pub fn run_experiment(
    experiment: &ExperimentConfig,
    options: &RunOptions,
) -> Result<RunOutcome, String> {
    let loader = experiment.loader_defaults();
    loader.validate()?;
    if options.backend == BackendKind::Native && experiment.storage.is_some() {
        return Err(
            "the storage model runs on the simulated backend only; drop --storage or use \
             --backend sim"
                .to_string(),
        );
    }
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
        per_log_overhead: Span::ZERO,
        op_mode: OpLogMode::Full,
    }));
    let registry = Arc::new(MetricsRegistry::new());
    let metrics = Arc::new(MetricsSink::with_overhead(
        Arc::clone(&registry),
        loader.num_workers,
        Span::ZERO,
    ));
    let sinks = Arc::new(
        MultiSink::new()
            .with(Arc::clone(&trace) as _)
            .with(Arc::clone(&metrics) as _),
    );
    let trial = TrialConfig {
        num_workers: loader.num_workers,
        prefetch_factor: loader.prefetch_factor,
        data_queue_cap: loader.data_queue_cap,
        pin_memory: loader.pin_memory,
    };
    let batch_size = loader.batch_size;
    let job = if options.materialize {
        experiment.build_materialized_with(
            &machine,
            sinks as _,
            None,
            loader,
            options.faults.clone(),
        )
    } else {
        experiment.build_with(&machine, sinks as _, None, loader, options.faults.clone())
    };
    let storage_handle = job.storage.clone();
    let mut sampler: Option<NativeSampler> = None;
    let (backend_name, report) = match options.backend {
        BackendKind::Sim => {
            let backend = SimBackend;
            (backend.name(), backend.run(job).map_err(|e| e.to_string())?)
        }
        BackendKind::Native => {
            let mut backend = NativeBackend::new(NativeOptions {
                status_check: options.status_check,
                emulate_gpu: options.emulate_gpu,
            });
            if options.profile {
                let mut s = NativeSampler::new(SamplerConfig::default());
                s.start();
                backend = backend.with_feed(Arc::clone(s.feed()));
                sampler = Some(s);
            }
            (backend.name(), backend.run(job).map_err(|e| e.to_string())?)
        }
    };
    // Profiler gauges must land in the registry before the snapshot is
    // taken so the exporters and `lotus top` see them.
    let profile = sampler.map(|mut s| {
        s.stop();
        s.gauges_into(&registry);
        let per_op = s.feed().per_op_function_totals(&machine);
        let attribution = mapping_from_native(&per_op);
        let agreement =
            matches!(experiment.pipeline, PipelineKind::ImageClassification).then(|| {
                let sim = build_ic_mapping_for_batch(
                    &machine,
                    IsolationConfig {
                        runs_override: Some(60),
                        ..IsolationConfig::default()
                    },
                    batch_size,
                );
                top_k_agreement(&sim, &attribution, 3)
            });
        let ticks = s.ticks();
        let overhead = s.overhead();
        let elapsed_s = report.elapsed.as_secs_f64();
        ProfileReport {
            overhead,
            overhead_fraction: if elapsed_s > 0.0 {
                overhead.as_secs_f64() / elapsed_s
            } else {
                0.0
            },
            kernel_samples: s.feed().len(),
            ticks: ticks.len(),
            rss_peak_kb: ticks.iter().map(|t| t.rss_kb).max().unwrap_or(0),
            attribution,
            agreement,
        }
    });
    let storage =
        storage_handle.map(|s| StorageAttribution::from_run(&s.counters(), &trace.records()));
    let measurement = TrialMeasurement {
        elapsed: report.elapsed,
        batches: report.batches,
        samples: report.samples,
        snapshot: registry.snapshot(),
        op_classes: op_class_totals(&trace.records()),
    };
    let scorecard = Scorecard::from_measurement(trial, &measurement);
    Ok(RunOutcome {
        backend: backend_name,
        report,
        measurement,
        scorecard,
        trace,
        profile,
        storage,
    })
}

/// The two bottleneck families sim-vs-native cross-validation compares:
/// either the input pipeline starves the consumer (preprocessing-,
/// fetch-, or collate-bound) or it does not (GPU-bound / balanced).
/// Wall-clock noise moves a run between verdicts *within* a family, not
/// across families, so the family is the stable prediction.
#[must_use]
pub fn verdict_family(scorecard: &Scorecard) -> &'static str {
    use lotus_core::tune::TuneVerdict;
    match scorecard.verdict {
        Some(
            TuneVerdict::PreprocessingBound
            | TuneVerdict::FetchBound
            | TuneVerdict::CollateBound
            | TuneVerdict::StorageBound,
        ) => "input-bound",
        Some(TuneVerdict::GpuBound | TuneVerdict::Balanced) => "accelerator-bound",
        None => "failed",
    }
}

/// Folds a run outcome into the `BENCH_<backend>_<preset>.json` document:
/// throughput, p50/p99 batch latency, and the T1/T2/T3 phase split.
#[must_use]
pub fn bench_report(preset: &str, experiment: &ExperimentConfig, outcome: &RunOutcome) -> Value {
    let hist = |name: &str| {
        let (count, p50, p99, total_s) = outcome
            .measurement
            .snapshot
            .histograms
            .get(name)
            .map_or((0, 0.0, 0.0, 0.0), |h| {
                (h.count, h.p50_ns / 1e6, h.p99_ns / 1e6, h.sum.as_secs_f64())
            });
        (count, p50, p99, total_s)
    };
    let (_, fetch_p50, fetch_p99, t1_s) = hist(names::T1_FETCH);
    let (_, wait_p50, wait_p99, t2_s) = hist(names::T2_WAIT);
    let (_, _, _, t3_s) = hist(names::T3_OP);
    let card = &outcome.scorecard;
    let mut doc = vec![
        ("schema".into(), Content::Str("lotus-bench-v2".into())),
        ("preset".into(), Content::Str(preset.into())),
        ("backend".into(), Content::Str(outcome.backend.into())),
        ("fingerprint".into(), Content::Str(experiment.fingerprint())),
        ("elapsed_s".into(), Content::F64(card.elapsed.as_secs_f64())),
        ("batches".into(), Content::U64(card.batches)),
        ("samples".into(), Content::U64(card.samples)),
        (
            "throughput_samples_per_s".into(),
            Content::F64(card.throughput),
        ),
        (
            "batch_latency_ms".into(),
            Content::Map(vec![
                ("t1_fetch_p50".into(), Content::F64(fetch_p50)),
                ("t1_fetch_p99".into(), Content::F64(fetch_p99)),
                ("t2_wait_p50".into(), Content::F64(wait_p50)),
                ("t2_wait_p99".into(), Content::F64(wait_p99)),
            ]),
        ),
        (
            "phase_split_s".into(),
            Content::Map(vec![
                ("t1_fetch".into(), Content::F64(t1_s)),
                ("t2_wait".into(), Content::F64(t2_s)),
                ("t3_ops".into(), Content::F64(t3_s)),
            ]),
        ),
        ("wait_fraction".into(), Content::F64(card.wait_fraction)),
        (
            "verdict".into(),
            Content::Str(
                card.verdict
                    .map_or("failed", lotus_core::tune::TuneVerdict::as_str)
                    .into(),
            ),
        ),
        (
            "verdict_family".into(),
            Content::Str(verdict_family(card).into()),
        ),
    ];
    // Storage-tier block, present only when the run modeled storage.
    // `check_regression` ignores it, like the profiler block below.
    if let Some(s) = &outcome.storage {
        use serde::Serialize as _;
        let t0_s = s.t0_total().as_secs_f64();
        let elapsed_s = card.elapsed.as_secs_f64();
        doc.push((
            "storage".into(),
            Content::Map(vec![
                ("t0_s".into(), Content::F64(t0_s)),
                (
                    "t0_fraction_of_elapsed".into(),
                    Content::F64(if elapsed_s > 0.0 {
                        t0_s / elapsed_s
                    } else {
                        0.0
                    }),
                ),
                ("hit_ratio".into(), Content::F64(s.hit_ratio())),
                ("attribution".into(), s.serialize_content()),
            ]),
        ));
    }
    // v2 addition: profiler self-accounting, present only on profiled
    // runs. `check_regression` reads none of these fields, so v1
    // baselines and v2 reports stay mutually comparable.
    if let Some(p) = &outcome.profile {
        doc.push((
            "profiler".into(),
            Content::Map(vec![
                ("overhead_s".into(), Content::F64(p.overhead.as_secs_f64())),
                (
                    "overhead_fraction".into(),
                    Content::F64(p.overhead_fraction),
                ),
                (
                    "kernel_samples".into(),
                    Content::U64(p.kernel_samples as u64),
                ),
                ("sampler_ticks".into(), Content::U64(p.ticks as u64)),
                ("rss_peak_kb".into(), Content::U64(p.rss_peak_kb)),
                (
                    "attribution_agrees".into(),
                    Content::Bool(p.agreement.is_none() || p.agrees()),
                ),
            ]),
        ));
    }
    Value(Content::Map(doc))
}

/// Compares a fresh bench report against a committed baseline and fails
/// if throughput regressed more than `tolerance` (e.g. `0.2` = 20%).
///
/// Only throughput is gated — latency percentiles vary too much across
/// machines to gate on — and only downward: a faster run always passes.
///
/// # Errors
///
/// Returns a description of the regression, a preset/backend mismatch,
/// or a malformed baseline.
pub fn check_regression(current: &Value, baseline: &Value, tolerance: f64) -> Result<(), String> {
    let field = |v: &Value, key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("bench JSON is missing numeric field `{key}`"))
    };
    let text = |v: &Value, key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("bench JSON is missing string field `{key}`"))
    };
    for key in ["preset", "backend"] {
        let (c, b) = (text(current, key)?, text(baseline, key)?);
        if c != b {
            return Err(format!("{key} mismatch: current `{c}` vs baseline `{b}`"));
        }
    }
    let current_tp = field(current, "throughput_samples_per_s")?;
    let baseline_tp = field(baseline, "throughput_samples_per_s")?;
    let floor = baseline_tp * (1.0 - tolerance);
    if current_tp < floor {
        return Err(format!(
            "throughput regression: {current_tp:.1} samples/s is below {floor:.1} \
             ({:.0}% of the {baseline_tp:.1} baseline)",
            (1.0 - tolerance) * 100.0
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_workloads::PipelineKind;

    fn small_ic() -> ExperimentConfig {
        ExperimentConfig::paper_default(PipelineKind::ImageClassification).scaled_to(256)
    }

    #[test]
    fn sim_run_produces_a_scorecard_with_verdict() {
        let outcome = run_experiment(&small_ic(), &RunOptions::sim()).unwrap();
        assert_eq!(outcome.backend, "sim");
        assert_eq!(outcome.report.batches, 2);
        assert!(outcome.scorecard.verdict.is_some());
        assert!(!outcome.trace.records().is_empty());
    }

    #[test]
    fn bench_report_has_the_gated_fields() {
        let experiment = small_ic();
        let outcome = run_experiment(&experiment, &RunOptions::sim()).unwrap();
        let report = bench_report("ic", &experiment, &outcome);
        assert_eq!(report.get("preset").and_then(Value::as_str), Some("ic"));
        assert_eq!(report.get("backend").and_then(Value::as_str), Some("sim"));
        assert!(report
            .get("throughput_samples_per_s")
            .and_then(Value::as_f64)
            .is_some_and(|t| t > 0.0));
        // Round-trips through the JSON writer/parser.
        let text = serde_json::to_string_pretty(&report).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back.get("preset").and_then(Value::as_str), Some("ic"));
    }

    #[test]
    fn regression_gate_trips_only_on_slowdowns() {
        let experiment = small_ic();
        let outcome = run_experiment(&experiment, &RunOptions::sim()).unwrap();
        let report = bench_report("ic", &experiment, &outcome);
        // Same report: within tolerance.
        check_regression(&report, &report, 0.2).unwrap();

        // A baseline 10× faster than the current run: must trip.
        let mut inflated = report.0.clone();
        if let Content::Map(entries) = &mut inflated {
            for (k, v) in entries.iter_mut() {
                if k == "throughput_samples_per_s" {
                    if let Content::F64(t) = v {
                        *t *= 10.0;
                    }
                }
            }
        }
        let err = check_regression(&report, &Value(inflated), 0.2).unwrap_err();
        assert!(err.contains("regression"), "unexpected error: {err}");

        // Preset mismatch is refused.
        let other = bench_report("ac", &experiment, &outcome);
        assert!(check_regression(&report, &other, 0.2).is_err());
    }

    #[test]
    fn profiled_native_run_attributes_kernels_and_cross_validates() {
        let mut experiment =
            ExperimentConfig::paper_default(PipelineKind::ImageClassification).scaled_to(16);
        experiment.batch_size = 8;
        let mut options = RunOptions::native();
        options.profile = true;
        options.emulate_gpu = false;
        let outcome = run_experiment(&experiment, &options).unwrap();
        let profile = outcome.profile.as_ref().expect("profiled run has a report");
        assert!(profile.kernel_samples > 0, "feed observed no kernels");
        assert!(profile.ticks > 0, "sampler took no ticks");
        let loader = profile
            .attribution
            .functions_for("Loader")
            .expect("Loader attributed");
        assert!(loader.contains("decode_mcu"), "{loader:?}");
        assert!(
            profile.agrees(),
            "sim-vs-native attribution disagreed: {:?}",
            profile.agreement
        );
        // Sampler gauges landed in the snapshot the exporters read.
        assert!(
            outcome
                .measurement
                .snapshot
                .gauges
                .keys()
                .any(|k| k.starts_with("sampler_")),
            "sampler gauges missing from the metrics snapshot"
        );
        // The v2 bench report self-accounts the profiler.
        let report = bench_report("ic", &experiment, &outcome);
        assert_eq!(
            report.get("schema").and_then(Value::as_str),
            Some("lotus-bench-v2")
        );
        let prof = report.get("profiler").expect("profiler block present");
        assert!(prof
            .get("overhead_s")
            .and_then(Value::as_f64)
            .is_some_and(|s| s >= 0.0));
    }

    #[test]
    fn unprofiled_runs_carry_no_profiler_block() {
        let experiment = small_ic();
        let outcome = run_experiment(&experiment, &RunOptions::sim()).unwrap();
        assert!(outcome.profile.is_none());
        let report = bench_report("ic", &experiment, &outcome);
        assert!(report.get("profiler").is_none());
    }

    #[test]
    fn regression_gate_tolerates_schema_and_profiler_field_drift() {
        // A v2 report (with the profiler block) vs a v1 baseline
        // (without): the gate reads only preset/backend/throughput, so
        // both directions compare cleanly.
        let current: Value = serde_json::from_str(
            r#"{"schema":"lotus-bench-v2","preset":"ic","backend":"native",
                "throughput_samples_per_s":9.5,
                "profiler":{"overhead_s":0.01,"overhead_fraction":0.002}}"#,
        )
        .unwrap();
        let baseline: Value = serde_json::from_str(
            r#"{"schema":"lotus-bench-v1","preset":"ic","backend":"native",
                "throughput_samples_per_s":10.0}"#,
        )
        .unwrap();
        check_regression(&current, &baseline, 0.2).unwrap();
        check_regression(&baseline, &current, 0.2).unwrap();
        let err = check_regression(&current, &baseline, 0.01).unwrap_err();
        assert!(err.contains("regression"), "unexpected error: {err}");
    }

    #[test]
    fn backend_kind_parses_both_names() {
        assert_eq!(BackendKind::parse("sim"), Some(BackendKind::Sim));
        assert_eq!(BackendKind::parse("native"), Some(BackendKind::Native));
        assert_eq!(BackendKind::parse("gpu"), None);
        assert_eq!(BackendKind::Native.as_str(), "native");
    }
}
