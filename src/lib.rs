//! # Lotus — characterization of ML preprocessing pipelines via framework
//! and hardware profiling (Rust reproduction)
//!
//! A full reproduction of the IISWC 2024 paper *"Lotus: Characterization
//! of Machine Learning Preprocessing Pipelines via Framework and Hardware
//! Profiling"* over deterministic simulated substrates. This facade crate
//! re-exports the whole workspace:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel
//! * [`uarch`] — CPU micro-architecture, PMU and sampling-driver model
//! * [`codec`] — the SJPG image codec with Table I's kernel inventory
//! * [`data`] — tensors, images, dataset models
//! * [`transforms`] — the preprocessing transform library
//! * [`dataflow`] — the PyTorch-DataLoader data-flow model
//! * [`core`] — **LotusTrace + LotusMap**, the paper's contribution
//! * [`profilers`] — baseline profiler models (Scalene, py-spy, austin,
//!   PyTorch profiler)
//! * [`workloads`] — the IC/IS/OD MLPerf pipelines
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use lotus::core::trace::LotusTrace;
//! use lotus::uarch::{Machine, MachineConfig};
//! use lotus::workloads::{ExperimentConfig, PipelineKind};
//!
//! // Trace a (scaled-down) image-classification epoch with LotusTrace.
//! let machine = Machine::new(MachineConfig::cloudlab_c4130());
//! let trace = Arc::new(LotusTrace::new());
//! let config = ExperimentConfig::paper_default(PipelineKind::ImageClassification)
//!     .scaled_to(256);
//! let report = config.build(&machine, Arc::clone(&trace) as _, None).run()?;
//! assert!(report.batches > 0);
//!
//! // Per-operation elapsed times (the paper's Table II).
//! for op in trace.op_stats() {
//!     println!("{:>28}: avg {:.2} ms", op.name, op.summary.mean);
//! }
//! # Ok::<(), lotus::dataflow::JobError>(())
//! ```

#![warn(missing_docs)]
// The whole workspace is safe Rust; determinism and auditability both
// lean on it. Gate any future exception through a crate-level decision.
#![deny(unsafe_code)]

pub mod auditing;
pub mod checking;
pub mod running;
pub mod tuning;

pub use lotus_codec as codec;
pub use lotus_core as core;
pub use lotus_data as data;
pub use lotus_dataflow as dataflow;
pub use lotus_profilers as profilers;
pub use lotus_sim as sim;
pub use lotus_transforms as transforms;
pub use lotus_uarch as uarch;
pub use lotus_workloads as workloads;
