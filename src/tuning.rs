//! The concrete `lotus tune` runner: binds the generic search engine in
//! [`lotus_core::tune`] to the [`lotus_workloads`] pipelines.
//!
//! Each trial builds a fresh machine and runs one deterministic simulated
//! epoch of the chosen pipeline under the candidate DataLoader
//! configuration, with a **zero-overhead** measurement harness (a
//! [`LotusTrace`] with no per-record charge plus a free
//! [`MetricsSink`]) so the scorecards reflect the pipeline itself, not
//! the instrumentation. A [`FaultPlan`] composes: a trial whose run
//! degrades (worker kills, sample errors, deadlocks) becomes a failed
//! scorecard instead of aborting the sweep.

use std::path::PathBuf;
use std::sync::Arc;

use lotus_core::exec::{self, TrialCache};
use lotus_core::metrics::{MetricsRegistry, MetricsSink, MultiSink};
use lotus_core::trace::analysis::op_class_totals;
use lotus_core::trace::{LotusTrace, LotusTraceConfig, OpLogMode};
use lotus_core::tune::{SearchSpace, Strategy, TrialConfig, TrialMeasurement, TuneReport, Tuner};
use lotus_dataflow::FaultPlan;
use lotus_sim::Span;
use lotus_uarch::{Machine, MachineConfig};
use lotus_workloads::ExperimentConfig;

/// Options for one tuning run.
///
/// # Examples
///
/// ```
/// use lotus::tuning::{tune_experiment, TuneOptions};
/// use lotus::workloads::{ExperimentConfig, PipelineKind};
///
/// let experiment = ExperimentConfig::paper_default(PipelineKind::ImageClassification)
///     .scaled_to(256);
/// let report = tune_experiment(&experiment, &TuneOptions::default())?;
/// assert!(report.cards.iter().any(|c| c.is_ok()));
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Candidate knob values to explore.
    pub space: SearchSpace,
    /// Grid sweep or hill climbing.
    pub strategy: Strategy,
    /// Fault plan applied to every trial run ([`FaultPlan::default`]
    /// injects nothing).
    pub faults: FaultPlan,
    /// Parallel measurement threads. Output is byte-identical for every
    /// value — see [`Tuner::run_with`].
    pub jobs: usize,
    /// Root of the on-disk trial cache, or `None` to run every trial
    /// live. The cache key covers the experiment fingerprint, machine,
    /// fault plan, and trial knobs, so stale hits are impossible.
    pub cache_dir: Option<PathBuf>,
}

impl Default for TuneOptions {
    /// Grid search over [`SearchSpace::default`] with no faults, fanned
    /// over the machine's available parallelism, without a cache.
    fn default() -> Self {
        TuneOptions {
            space: SearchSpace::default(),
            strategy: Strategy::Grid,
            faults: FaultPlan::default(),
            jobs: exec::default_jobs(),
            cache_dir: None,
        }
    }
}

/// The baseline configuration a tuning run is judged against: the
/// experiment's own worker count with PyTorch-shaped defaults for the
/// remaining knobs (matching [`ExperimentConfig::loader_defaults`]).
#[must_use]
pub fn baseline_trial(experiment: &ExperimentConfig) -> TrialConfig {
    let defaults = experiment.loader_defaults();
    TrialConfig {
        num_workers: defaults.num_workers,
        prefetch_factor: defaults.prefetch_factor,
        data_queue_cap: defaults.data_queue_cap,
        pin_memory: defaults.pin_memory,
    }
}

/// Runs the configuration search for one workload and returns the
/// report (scorecards, Pareto frontier, recommendation, predicted
/// speedup). Everything is virtual-time simulation, so a full sweep is
/// fast and the same inputs always produce byte-identical
/// [`TuneReport::to_json`] output.
///
/// # Errors
///
/// Returns an error when the search space is invalid or no candidate
/// configuration (baseline included) completed successfully.
pub fn tune_experiment(
    experiment: &ExperimentConfig,
    options: &TuneOptions,
) -> Result<TuneReport, String> {
    let tuner = Tuner {
        space: options.space.clone(),
        strategy: options.strategy,
    };
    let cache = match &options.cache_dir {
        // An unopenable cache directory degrades to live execution; the
        // sweep itself must not fail on a read-only working directory.
        Some(root) => TrialCache::open(root, trial_context(experiment, &options.faults)).ok(),
        None => None,
    };
    tuner.run_with(
        baseline_trial(experiment),
        |trial| run_trial(experiment, trial, &options.faults),
        options.jobs,
        cache.as_ref(),
    )
}

/// The trial-cache context string: everything a trial's outcome depends
/// on besides its own four knobs — the experiment fingerprint, the
/// simulated machine, and the fault plan.
#[must_use]
pub fn trial_context(experiment: &ExperimentConfig, faults: &FaultPlan) -> String {
    format!(
        "{}; machine=cloudlab_c4130; faults[{}]",
        experiment.fingerprint(),
        faults.fingerprint()
    )
}

/// Runs one candidate configuration: a fresh machine, a zero-overhead
/// measurement harness, one simulated epoch.
///
/// # Errors
///
/// Returns the loader-validation or job error as a string — the tuner
/// records it as a degraded (failed) scorecard.
pub fn run_trial(
    experiment: &ExperimentConfig,
    trial: &TrialConfig,
    faults: &FaultPlan,
) -> Result<TrialMeasurement, String> {
    let loader = trial.apply(experiment.loader_defaults());
    loader.validate()?;
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
        per_log_overhead: Span::ZERO,
        op_mode: OpLogMode::Full,
    }));
    let registry = Arc::new(MetricsRegistry::new());
    let metrics = Arc::new(MetricsSink::with_overhead(
        Arc::clone(&registry),
        loader.num_workers,
        Span::ZERO,
    ));
    let sinks = Arc::new(
        MultiSink::new()
            .with(Arc::clone(&trace) as _)
            .with(Arc::clone(&metrics) as _),
    );
    let report = experiment
        .build_with(&machine, sinks as _, None, loader, faults.clone())
        .run()
        .map_err(|e| e.to_string())?;
    Ok(TrialMeasurement {
        elapsed: report.elapsed,
        batches: report.batches,
        samples: report.samples,
        snapshot: registry.snapshot(),
        op_classes: op_class_totals(&trace.records()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_workloads::PipelineKind;

    #[test]
    fn baseline_matches_loader_defaults() {
        let experiment = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
        let trial = baseline_trial(&experiment);
        assert_eq!(trial.num_workers, experiment.num_workers);
        assert_eq!(trial.prefetch_factor, 2);
        assert_eq!(trial.data_queue_cap, None);
        assert!(trial.pin_memory);
    }

    #[test]
    fn invalid_trial_is_reported_not_panicked() {
        let experiment = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
        let bad = TrialConfig {
            num_workers: 0,
            prefetch_factor: 2,
            data_queue_cap: None,
            pin_memory: true,
        };
        let err = run_trial(&experiment, &bad, &FaultPlan::default()).unwrap_err();
        assert_eq!(
            err,
            "num_workers must be at least 1 (worker-process data loading)"
        );
    }
}
