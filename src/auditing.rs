//! The concrete `lotus audit` runner: live happens-before audits of
//! native-backend runs.
//!
//! Each audit attaches an [`AuditFeed`] to a [`NativeBackend`], runs one
//! small protocol-only epoch (cost-only payloads, no GPU emulation —
//! the synchronization skeleton is what's under test, not the kernels),
//! drains the recorded synchronization-event stream, and judges it with
//! [`analyze`] against the native backend's contract
//! ([`AuditSpec::native_backend`]). The matrix covers the IC/AC/IS
//! pipelines under every scheduling policy; `--mutate` re-runs the
//! matrix with a seeded backend defect the auditor is expected to flag
//! (exit 1 when it does not — the same trust-but-verify UX as `lotus
//! check --mutate`).

use std::sync::Arc;

use lotus_core::check::{analyze, minimize_events, AuditReport, AuditSpec};
use lotus_dataflow::{
    AuditFeed, AuditMutation, ExecutionBackend, NativeBackend, NativeOptions, NullTracer,
    SchedulingPolicyKind, SyncEvent,
};
use lotus_sim::Span;
use lotus_uarch::{Machine, MachineConfig};
use lotus_workloads::{ExperimentConfig, PipelineKind};

/// Options for one audit matrix.
#[derive(Debug, Clone)]
pub struct AuditOptions {
    /// Pipelines to audit.
    pub pipelines: Vec<PipelineKind>,
    /// Scheduling policies to audit each pipeline under.
    pub policies: Vec<SchedulingPolicyKind>,
    /// Samples per run (small: the protocol, not the kernels, is under
    /// test).
    pub items: u64,
    /// Worker count per run.
    pub workers: usize,
    /// Main-process liveness-polling interval. Short by default so a
    /// seeded lost wakeup stalls the run for milliseconds, not the
    /// PyTorch-faithful 5 s.
    pub status_check: Span,
    /// Seeded backend defect ([`AuditMutation::None`] for a clean
    /// audit).
    pub mutation: AuditMutation,
}

impl Default for AuditOptions {
    fn default() -> AuditOptions {
        AuditOptions {
            pipelines: vec![
                PipelineKind::ImageClassification,
                PipelineKind::AudioClassification,
                PipelineKind::ImageSegmentation,
            ],
            policies: SchedulingPolicyKind::ALL.to_vec(),
            items: 32,
            workers: 2,
            status_check: Span::from_millis(20),
            mutation: AuditMutation::None,
        }
    }
}

/// One audited native run.
#[derive(Debug)]
pub struct AuditRun {
    /// `pipeline/policy` label.
    pub name: String,
    /// The analyzer's verdict.
    pub report: AuditReport,
    /// The drained synchronization-event stream (for `--trace` and
    /// counterexample minimization).
    pub events: Vec<SyncEvent>,
    /// Feed self-accounted recording cost, nanoseconds.
    pub audit_overhead_ns: u64,
    /// The run's wall elapsed time.
    pub elapsed: Span,
    /// Batches the run delivered.
    pub batches: u64,
}

/// Audits one native run of `kind` under `policy`.
///
/// # Errors
///
/// Returns the loader-validation or job error as a string.
pub fn audit_run(
    kind: PipelineKind,
    policy: SchedulingPolicyKind,
    options: &AuditOptions,
) -> Result<AuditRun, String> {
    let mut config = ExperimentConfig::paper_default(kind);
    config.batch_size = 4;
    config.num_workers = options.workers;
    let config = config.scaled_to(options.items).with_policy(policy);
    let loader = config.loader_defaults();
    loader.validate()?;
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let job = config.build_with(
        &machine,
        Arc::new(NullTracer) as _,
        None,
        loader,
        lotus_dataflow::FaultPlan::default(),
    );
    let feed = Arc::new(AuditFeed::new());
    let backend = NativeBackend::new(NativeOptions {
        status_check: options.status_check,
        emulate_gpu: false,
    })
    .with_audit(Arc::clone(&feed))
    .with_audit_mutation(options.mutation);
    let report = backend.run(job).map_err(|e| e.to_string())?;
    let events = feed.drain();
    Ok(AuditRun {
        name: format!("{}/{}", kind.abbrev(), policy.as_str()),
        report: analyze(&events, &AuditSpec::native_backend()),
        events,
        audit_overhead_ns: feed.overhead_ns(),
        elapsed: report.elapsed,
        batches: report.batches,
    })
}

/// Runs the whole audit matrix (pipelines × policies).
///
/// # Errors
///
/// Returns the first run error as a string.
pub fn audit_matrix(options: &AuditOptions) -> Result<Vec<AuditRun>, String> {
    let mut runs = Vec::new();
    for &kind in &options.pipelines {
        for &policy in &options.policies {
            runs.push(audit_run(kind, policy, options)?);
        }
    }
    Ok(runs)
}

/// Shrinks a flagged run's event stream to a minimal window still
/// triggering the run's most severe finding (the first one, in stream
/// order). Returns `None` for clean runs.
#[must_use]
pub fn minimized_window(run: &AuditRun) -> Option<Vec<SyncEvent>> {
    let kind = run.report.findings.first()?.kind();
    Some(minimize_events(
        &run.events,
        &AuditSpec::native_backend(),
        kind,
        512,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_native_run_audits_clean() {
        let options = AuditOptions::default();
        let run = audit_run(
            PipelineKind::ImageClassification,
            SchedulingPolicyKind::RoundRobin,
            &options,
        )
        .unwrap();
        assert!(
            run.report.clean(),
            "clean run flagged: {:?}",
            run.report.findings
        );
        assert!(run.batches > 0);
        assert!(run.report.stats.events > 0);
        assert!(run.report.stats.threads >= 2);
    }

    #[test]
    fn seeded_mutations_are_flagged_and_minimized() {
        for (mutation, expected) in [
            (AuditMutation::SkipNotify, "missed-wake"),
            (AuditMutation::ReleaseRecheck, "ungated-commit"),
            (AuditMutation::LockOrder, "lock-cycle"),
        ] {
            let options = AuditOptions {
                mutation,
                ..AuditOptions::default()
            };
            let run = audit_run(
                PipelineKind::ImageClassification,
                SchedulingPolicyKind::RoundRobin,
                &options,
            )
            .unwrap();
            assert!(
                run.report.findings.iter().any(|f| f.kind() == expected),
                "{} escaped the auditor: {:?}",
                mutation.as_str(),
                run.report.findings
            );
            let window = minimized_window(&run).expect("flagged run has a window");
            assert!(
                window.len() <= run.events.len(),
                "minimization grew the stream"
            );
        }
    }
}
