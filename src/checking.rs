//! The concrete `lotus check` runner: binds the bounded model checker in
//! [`lotus_core::check`] to the [`lotus_workloads`] pipelines.
//!
//! Each explored schedule builds a fresh machine and runs one
//! deterministic simulated epoch of a deliberately *small* configuration
//! (a few batches, 1–3 workers) under a
//! [`GuidedController`] that steers every
//! ready-event tie, with a zero-overhead [`RecordingObserver`] capturing
//! the protocol events. The run's event log is judged against the
//! safety-invariant catalog; the DFS in [`lotus_core::check::explorer`]
//! expands untried tie-breaks until the bounded schedule space is
//! exhausted or a violation is minimized into a replayable
//! counterexample.

use std::sync::Arc;

use lotus_core::check::{
    explore, verify, ExploreBounds, ExploreReport, LoaderEvent, ProtocolSpec, RecordingObserver,
    RunEnding, ScheduledRun, Violation,
};
use lotus_dataflow::{
    DataLoaderConfig, FaultPlan, JobError, JobReport, LoaderMutation, NullTracer,
    SchedulingPolicyKind,
};
use lotus_sim::{DecisionRecord, GuidedController, SimError, Span, Time};
use lotus_uarch::{Machine, MachineConfig};
use lotus_workloads::{ExperimentConfig, PipelineKind};

/// Options for one `lotus check` run.
///
/// # Examples
///
/// ```
/// use lotus::checking::{check_pipeline, CheckOptions};
/// use lotus::workloads::PipelineKind;
///
/// let mut options = CheckOptions::default();
/// options.bounds.max_schedules = 8; // a quick doc-test-sized sweep
/// options.with_faults = false;
/// let checks = check_pipeline(PipelineKind::ImageClassification, &options);
/// assert!(checks.iter().all(|(_, report)| report.clean()));
/// ```
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Exploration limits (schedules, depth, branching, step budget).
    pub bounds: ExploreBounds,
    /// Worker processes in the checked configuration (keep small: the
    /// schedule space grows factorially).
    pub workers: usize,
    /// Dataset items in the checked configuration.
    pub items: u64,
    /// Samples per batch.
    pub batch_size: usize,
    /// Also explore a fault scenario that kills one worker mid-epoch
    /// (requires `workers >= 2` so a survivor can finish).
    pub with_faults: bool,
    /// Test-only loader mutation to seed a protocol bug (used by the
    /// `--mutate` validation mode and the self-test suite).
    pub mutation: LoaderMutation,
    /// Dispatch policy the checked loader schedules with.
    pub policy: SchedulingPolicyKind,
}

impl Default for CheckOptions {
    /// Two workers over 16 items in batches of 4 (four batches), with
    /// the fault scenario enabled and no mutation.
    fn default() -> CheckOptions {
        CheckOptions {
            bounds: ExploreBounds::default(),
            workers: 2,
            items: 16,
            batch_size: 4,
            with_faults: true,
            mutation: LoaderMutation::None,
            policy: SchedulingPolicyKind::RoundRobin,
        }
    }
}

/// One concrete configuration + fault plan the checker explores.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable scenario label, e.g. `IC workers=2 no-faults`.
    pub name: String,
    /// The (small) experiment configuration.
    pub experiment: ExperimentConfig,
    /// Loader knobs under check (bounded data queue so the cap invariant
    /// has teeth).
    pub loader: DataLoaderConfig,
    /// Fault plan applied to every explored schedule.
    pub faults: FaultPlan,
    /// Seeded loader mutation ([`LoaderMutation::None`] for real checks).
    pub mutation: LoaderMutation,
}

impl Scenario {
    /// The protocol facts the invariant catalog judges runs against.
    #[must_use]
    pub fn spec(&self) -> ProtocolSpec {
        let items = self.experiment.dataset_items.unwrap_or(0);
        // drop_last is set: only full batches are dispatched.
        let expected_batches = items / self.loader.batch_size as u64;
        ProtocolSpec {
            num_workers: self.loader.num_workers,
            prefetch_factor: self.loader.prefetch_factor,
            data_queue_cap: self.loader.data_queue_cap,
            expected_batches,
            expected_samples: expected_batches * self.loader.batch_size as u64,
        }
    }
}

/// Everything one guided run produced: the decision log (for the DFS),
/// the verdict, and the raw evidence (for counterexample printing).
#[derive(Debug, Clone)]
pub struct ScheduledOutcome {
    /// The controller's decision log.
    pub decisions: Vec<DecisionRecord>,
    /// Invariant violations of this run.
    pub violations: Vec<Violation>,
    /// How the run ended.
    pub ending: RunEnding,
    /// The recorded protocol events.
    pub events: Vec<LoaderEvent>,
}

fn small_experiment(kind: PipelineKind, options: &CheckOptions) -> ExperimentConfig {
    ExperimentConfig {
        pipeline: kind,
        batch_size: options.batch_size,
        num_gpus: 1,
        num_workers: options.workers,
        dataset_items: Some(options.items),
        seed: 0x0107,
        storage: None,
        sequential_access: false,
        policy: options.policy,
    }
}

fn checked_loader(experiment: &ExperimentConfig) -> DataLoaderConfig {
    let mut loader = experiment.loader_defaults();
    // A bounded data queue makes the queue-cap invariant meaningful.
    loader.data_queue_cap = Some(loader.prefetch_factor * loader.num_workers);
    loader
}

/// Builds the scenarios `lotus check` explores for one pipeline: the
/// fault-free protocol, plus (when enabled and survivable) a mid-epoch
/// worker kill that exercises death observation and redispatch.
#[must_use]
pub fn scenarios(kind: PipelineKind, options: &CheckOptions) -> Vec<Scenario> {
    let experiment = small_experiment(kind, options);
    let loader = checked_loader(&experiment);
    let policy_tag = if options.policy == SchedulingPolicyKind::RoundRobin {
        String::new()
    } else {
        format!(" policy={}", options.policy.as_str())
    };
    let mut out = vec![Scenario {
        name: format!(
            "{} workers={} no-faults{policy_tag}",
            kind.abbrev(),
            options.workers
        ),
        experiment,
        loader,
        faults: FaultPlan::default(),
        mutation: options.mutation,
    }];
    if options.with_faults && options.workers >= 2 {
        let kill_at = match baseline_elapsed(&out[0]) {
            Some(elapsed) => Time::ZERO + elapsed.mul_f64(0.5),
            None => Time::ZERO + Span::from_millis(50),
        };
        out.push(Scenario {
            name: format!(
                "{} workers={} kill worker0 @{:.0}ms{policy_tag}",
                kind.abbrev(),
                options.workers,
                kill_at.as_nanos() as f64 / 1e6
            ),
            experiment,
            loader,
            faults: FaultPlan::new(experiment.seed).kill_process("dataloader0", kill_at),
            mutation: options.mutation,
        });
    }
    out
}

/// Elapsed virtual time of the scenario under the default schedule with
/// no faults, used to aim the kill mid-epoch.
fn baseline_elapsed(scenario: &Scenario) -> Option<Span> {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    scenario
        .experiment
        .build_with(
            &machine,
            Arc::new(NullTracer) as _,
            None,
            scenario.loader,
            FaultPlan::default(),
        )
        .run()
        .ok()
        .map(|report| report.elapsed)
}

fn classify(outcome: Result<JobReport, JobError>) -> RunEnding {
    match outcome {
        Ok(report) => RunEnding::Completed {
            batches: report.batches,
            samples: report.samples,
        },
        Err(JobError::Sample { .. }) => RunEnding::SampleError,
        Err(JobError::AllWorkersDied { .. }) => RunEnding::AllWorkersDied,
        Err(JobError::Sim(SimError::StepLimit { .. })) => RunEnding::StepLimit,
        Err(JobError::Sim(e @ SimError::Deadlock { .. })) => RunEnding::Deadlock(e.to_string()),
        Err(JobError::Sim(SimError::ProcessPanic { process, message })) => {
            RunEnding::Panic(format!("{process}: {message}"))
        }
        Err(JobError::InvalidConfig(message)) => {
            RunEnding::Panic(format!("invalid configuration: {message}"))
        }
    }
}

/// Runs one guided simulation of `scenario` under `schedule` and judges
/// it against the invariant catalog. Identical inputs replay
/// byte-identically — this is both the explorer's probe and the
/// `--replay` entry point.
#[must_use]
pub fn run_scheduled(
    scenario: &Scenario,
    schedule: &[usize],
    bounds: &ExploreBounds,
) -> ScheduledOutcome {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let observer = Arc::new(RecordingObserver::new());
    let controller = GuidedController::new(schedule.to_vec(), bounds.max_steps);
    let mut job = scenario.experiment.build_with(
        &machine,
        Arc::clone(&observer) as _,
        None,
        scenario.loader,
        scenario.faults.clone(),
    );
    job.controller = Some(Arc::clone(&controller) as _);
    job.mutation = scenario.mutation;
    let ending = classify(job.run());
    let events = observer.events();
    let violations = verify(&scenario.spec(), &events, &ending);
    ScheduledOutcome {
        decisions: controller.decisions(),
        violations,
        ending,
        events,
    }
}

/// Explores one scenario's schedule space within `bounds`.
#[must_use]
pub fn check_scenario(scenario: &Scenario, bounds: &ExploreBounds) -> ExploreReport {
    explore(bounds, |schedule| {
        let outcome = run_scheduled(scenario, schedule, bounds);
        ScheduledRun {
            decisions: outcome.decisions,
            violations: outcome.violations,
        }
    })
}

/// Runs the full check for one pipeline: every scenario from
/// [`scenarios`], each explored within `options.bounds`.
#[must_use]
pub fn check_pipeline(
    kind: PipelineKind,
    options: &CheckOptions,
) -> Vec<(Scenario, ExploreReport)> {
    scenarios(kind, options)
        .into_iter()
        .map(|scenario| {
            let report = check_scenario(&scenario, &options.bounds);
            (scenario, report)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_options() -> CheckOptions {
        CheckOptions {
            bounds: ExploreBounds {
                max_schedules: 12,
                ..ExploreBounds::default()
            },
            with_faults: false,
            ..CheckOptions::default()
        }
    }

    #[test]
    fn unmutated_ic_scenario_is_clean() {
        let options = quick_options();
        for (scenario, report) in check_pipeline(PipelineKind::ImageClassification, &options) {
            assert!(
                report.clean(),
                "{}: {:?}",
                scenario.name,
                report.counterexample
            );
            assert!(report.stats.schedules_run > 0);
        }
    }

    #[test]
    fn lose_batch_mutation_is_caught_and_replayable() {
        let mut options = quick_options();
        options.mutation = LoaderMutation::LoseBatch { batch_id: 1 };
        let scenario = &scenarios(PipelineKind::ImageClassification, &options)[0];
        let report = check_scenario(scenario, &options.bounds);
        let cx = report.counterexample.expect("lost batch must be detected");
        assert!(
            cx.violations
                .iter()
                .any(|v| matches!(v, Violation::Stalled { .. })),
            "losing a batch stalls the epoch: {:?}",
            cx.violations
        );
        // The counterexample replays deterministically.
        let replay = run_scheduled(scenario, &cx.schedule, &options.bounds);
        assert_eq!(replay.violations, cx.violations);
        assert_eq!(replay.ending, RunEnding::StepLimit);
    }

    #[test]
    fn premature_redispatch_mutation_is_caught() {
        let mut options = quick_options();
        options.mutation = LoaderMutation::RedispatchLive { batch_id: 1 };
        let scenario = &scenarios(PipelineKind::ImageClassification, &options)[0];
        let report = check_scenario(scenario, &options.bounds);
        let cx = report
            .counterexample
            .expect("premature redispatch must be detected");
        assert!(
            cx.violations.iter().any(|v| matches!(
                v,
                Violation::RedispatchBeforeDeath { .. } | Violation::DoubleDispatch { .. }
            )),
            "redispatching a live worker's batch violates dispatch discipline: {:?}",
            cx.violations
        );
    }
}
