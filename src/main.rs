//! The `lotus` command-line tool: trace a pipeline, build the hardware
//! mapping, attribute counters to operations, or compare profilers — the
//! workflows of the paper's artifact, as one binary.

use std::collections::BTreeMap;
use std::error::Error;
use std::process::ExitCode;
use std::sync::Arc;

use lotus::checking::{CheckOptions, Scenario};
use lotus::core::map::{
    split_metrics, split_metrics_mix_aware, IsolationConfig, Mapping, StorageAttribution,
};
use lotus::core::metrics::{
    render_dashboard, to_csv, to_json, to_prometheus, DashboardOptions, MetricsRegistry,
    MetricsSink, MultiSink,
};
use lotus::core::trace::chrome::{to_chrome_trace, ChromeTraceOptions};
use lotus::core::trace::insights::analyze;
use lotus::core::trace::viz::{render_timeline, TimelineOptions};
use lotus::core::trace::{LotusTrace, LotusTraceConfig, OpLogMode};
use lotus::core::tune::{SearchSpace, Strategy};
use lotus::dataflow::{FaultPlan, LoaderMutation, SchedulingPolicyKind};
use lotus::profilers::ComparisonHarness;
use lotus::running::{
    bench_report, check_regression, run_experiment, verdict_family, BackendKind, RunOptions,
};
use lotus::sim::{FileLayout, Span};
use lotus::tuning::{tune_experiment, TuneOptions};
use lotus::uarch::{
    format_report, CollectionMode, HwProfiler, Machine, MachineConfig, ProfilerConfig,
};
use lotus::workloads::{build_ic_mapping, build_ic_mapping_native, ExperimentConfig, PipelineKind};

const USAGE: &str = "\
lotus — characterization of ML preprocessing pipelines (paper reproduction)

USAGE:
  lotus trace     [--pipeline ic|is|od] [--items N] [--batch B] [--workers W]
                  [--gpus G] [--storage cold|warm] [--layout tiny|packed]
                  [--access shuffled|sequential] [--policy POLICY]
                  [--out FILE.json] [--log FILE] [--timeline]
      Run one epoch under LotusTrace; print per-op stats, the automated
      diagnosis, optionally an ASCII timeline, a Chrome trace file and a
      lintable LotusTrace log. --storage routes every Dataset::get_item
      through the simulated storage hierarchy (object store / local disk /
      shared OS page cache), producing per-read [T0] fetch spans and a
      per-tier attribution table: cold tiny-file epochs are typically
      storage-bound, warm or packed ones flip back to the CPU phases.
      --layout picks one-file-per-record (tiny) or packed shards;
      --access picks the sampler order (sequential lets readahead turn
      packed-shard neighbors into page-cache hits).

  lotus run       [--backend sim|native] [--pipeline ic|is|od|ac] [--items N]
                  [--batch B] [--workers W] [--gpus G] [--no-gpu]
                  [--no-materialize] [--status-check-ms T] [--profile]
                  [--attribution FILE.json]
                  [--storage cold|warm] [--layout tiny|packed]
                  [--access shuffled|sequential] [--storage-out FILE.json]
                  [--kill-worker W] [--kill-at-ms T] [--error-rate P]
                  [--error-op NAME] [--slow-rate P] [--slow-factor F]
                  [--policy POLICY] [--out FILE.json] [--log FILE]
      Execute one epoch on the chosen execution backend. `native` (the
      default here) runs the same DataLoader protocol on real OS threads
      with real bounded queues against real pixels, emitting a
      wall-clock LotusTrace; `sim` replays it in deterministic virtual
      time. Prints per-op stats plus the tune-style scorecard and
      bottleneck verdict. --no-gpu skips the emulated GPU consumer,
      --no-materialize keeps image pipelines cost-only. --profile (native
      only) attaches the OS-level sampling profiler: per-thread CPU time,
      RSS and context switches from /proc plus per-op native-kernel
      attribution, cross-validated against the simulated LotusMap;
      --attribution writes the observed mapping as JSON. --storage (sim
      only) models the storage hierarchy: the scorecard gains a per-tier
      [T0] attribution table, the verdict can come back storage-bound,
      and --storage-out writes the attribution as JSON. --out writes a
      Chrome trace; --log writes a LotusTrace log file that
      `lotus check --trace FILE` lints.

  lotus bench     [--backend sim|native] [--presets ic,ac,is] [--items N]
                  [--batch B] [--workers W] [--no-gpu] [--profile]
                  [--out-dir DIR] [--check-against FILE] [--tolerance F]
      Run small-scale benchmark epochs (native by default) and write one
      BENCH_<backend>_<preset>.json per preset: throughput, p50/p99
      batch latency, the T1/T2/T3 phase split, and the bottleneck
      verdict. --check-against gates a single preset against a committed
      baseline JSON and fails on a throughput regression beyond
      --tolerance (default 0.2 = 20%). --profile (native) adds the
      sampling profiler's self-accounting block to the report
      (lotus-bench-v2; v1 baselines stay comparable).

  lotus map       [--backend sim|native] [--vendor intel|amd] [--runs N]
                  [--no-sleep-gap] [--storage cold|warm]
                  [--layout tiny|packed] [--access shuffled|sequential]
                  [--items N] [--out FILE.json]
      Build the Python-op → C/C++-function mapping (Table I). The default
      `sim` backend isolates each IC operation under the simulated
      hardware profiler; `native` observes the real kernels executing on
      this machine via the cooperative span feed (--runs measured passes,
      default 3). --storage additionally runs a short traced IC epoch
      against the simulated storage hierarchy and joins the per-tier
      fetch counters ([T0] reads, bytes, span time) into the mapping
      table and JSON artifact.

  lotus attribute [--items N] [--workers W] [--mix-aware] [--functions]
      Profile an IC epoch with the simulated VTune, build the mapping, and
      attribute hardware counters to Python operations (Figure 6 e–h).
      --functions additionally prints the raw per-function profile.

  lotus compare   [--items N]
      Run the profiler comparison (Tables III and IV).

  lotus top       [--backend sim|native] [--pipeline ic|is|od] [--items N]
                  [--batch B] [--workers W] [--width COLS] [--profile]
                  [--storage cold|warm] [--layout tiny|packed]
                  [--access shuffled|sequential] [--policy POLICY]
                  [--prom FILE] [--json FILE] [--csv FILE]
      Run one epoch with the streaming metrics sink and render the
      pipeline dashboard: queue-depth sparklines over time, per-worker
      utilization, throughput, latency summaries. With --backend native
      every gauge and histogram carries wall-clock timestamps from the
      run's shared clock, and --profile adds the OS sampler's per-thread
      CPU/RSS/context-switch gauges to the dashboard and exports.
      --storage (sim only) adds the live storage section: per-tier
      read/byte counters, backing-device queue-depth sparklines and the
      t0 fetch latency summary. Optionally export the registry as
      Prometheus text, JSON, or CSV time-series.

  lotus tune      [--pipeline ic|is|od|ac] [--items N] [--batch B]
                  [--strategy grid|hill] [--workers 1,2,4,8] [--prefetch 1,2,4]
                  [--caps none,4,8] [--pin on|off|both] [--json] [--out FILE]
                  [--jobs N] [--no-cache] [--cache-dir DIR]
                  [--storage cold|warm] [--layout tiny|packed]
                  [--access shuffled|sequential]
                  [--kill-worker W] [--kill-at-ms T] [--error-rate P]
                  [--error-op NAME] [--slow-rate P] [--slow-factor F]
                  [--policy POLICY]
      Search DataLoader configurations (workers, prefetch, data-queue
      cap, pin-memory) over deterministic simulated epochs. Prints the
      per-config scorecards, the Pareto frontier of throughput vs peak
      resident batches, a T1/T2/T3-based bottleneck verdict per config,
      and the recommended configuration with its predicted speedup.
      --json emits the byte-deterministic report instead; fault flags
      compose (degraded configs are reported, not fatal). --storage runs
      every trial against the simulated storage hierarchy — a cold
      tiny-file dataset typically tunes to a storage-bound verdict that
      extra workers cannot fix, because they queue on the same backing
      device. Trials fan out
      over --jobs threads (default: all cores) and memoize to the
      on-disk cache at --cache-dir (default .lotus-cache; --no-cache
      disables) — neither changes a single output byte.

  lotus check     [--pipeline ic|is|od|ac|all] [--workers W] [--items N]
                  [--batch B] [--schedules N] [--depth D] [--branch K]
                  [--steps S] [--no-faults] [--policy POLICY]
                  [--mutate lose-batch|premature-redispatch]
                  [--replay 0,2,1] [--trace FILE[,FILE...]]
      Bounded model checking of the DataLoader protocol: explore
      ready-event interleavings of a small configuration (DFS over
      schedule prefixes with state-hash pruning) and judge every run
      against the safety-invariant catalog (sample conservation, dispatch
      discipline, bounded buffers, progress). Prints a per-scenario
      summary with explored/pruned state counts; a violation prints a
      minimized counterexample schedule, replayable with --replay.
      --mutate seeds a known loader bug and *expects* detection (exit 1
      when the checker misses it). --trace skips the model checker and
      lints recorded trace files (Chrome JSON or LotusTrace logs)
      instead.

  lotus audit     [--pipeline ic|ac|is|all] [--policy POLICY|all] [--items N]
                  [--workers W] [--status-check-ms T]
                  [--mutate skip-notify|release-recheck|lock-order]
                  [--trace] [--json]
                  [--model] [--bug BUG] [--replay 0,2,1]
      Happens-before race & deadlock audit of the native backend. Attaches
      a synchronization-event feed to real native runs (IC/AC/IS under
      every scheduling policy by default), rebuilds the happens-before
      order with vector clocks, and checks lock discipline, lost wakeups,
      condvar predicate re-checks, liveness-gated sends, produce-before-
      consume per batch, death-before-redispatch, gauge total ordering,
      and lock-order acyclicity. A finding prints a greedily minimized
      event window. --mutate seeds a known backend defect and *expects*
      detection (exit 1 when the auditor misses it). --trace dumps the
      event stream per run. --model switches to the bounded exhaustive
      mode: the NativeQueue protocol's state machine explored through
      every small interleaving (DFS with state-hash pruning), --bug
      seeding skip-notify|release-recheck|lock-order|if-instead-of-while
      into the model, and --replay re-running one model schedule
      deterministically.

  POLICY: the loader scheduling policy — round-robin (default; the
  PyTorch-faithful dispatch), work-stealing (overflowing queues donate to
  the shallowest live queue), slow-lane (an online per-sample cost EWMA
  segregates expensive batches onto dedicated workers), adaptive-prefetch
  (the refill window tracks live queue-depth gauges). Shorthands: rr, ws,
  sl, ap. All policies run on both backends and pass `lotus check`;
  non-default policies tag the fingerprint, traces and tune cache keys.
  --slow-rate/--slow-factor (run, tune) make that probability of samples
  cost F× their normal time — the skewed-cost fault plan the policy
  bake-off in EXPERIMENTS.md uses.

  lotus help
";

struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Result<Args, String> {
        let mut flags = BTreeMap::new();
        let mut raw = raw.peekable();
        while let Some(arg) = raw.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument '{arg}' (flags start with --)"));
            };
            let value = match raw.peek() {
                Some(v) if !v.starts_with("--") => raw.next().unwrap_or_default(),
                _ => "true".to_string(), // boolean flag
            };
            flags.insert(name.to_string(), value);
        }
        Ok(Args { flags })
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: '{v}'")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

/// Parses `--policy` (default `round-robin`, the PyTorch-faithful
/// dispatch; `rr`, `ws`, `sl` and `ap` are accepted as shorthands).
fn policy_of(args: &Args) -> Result<SchedulingPolicyKind, Box<dyn Error>> {
    let raw = args.get(
        "policy",
        SchedulingPolicyKind::RoundRobin.as_str().to_string(),
    )?;
    Ok(SchedulingPolicyKind::parse(&raw)?)
}

fn pipeline_of(name: &str) -> Result<PipelineKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "ic" => Ok(PipelineKind::ImageClassification),
        "is" => Ok(PipelineKind::ImageSegmentation),
        "od" => Ok(PipelineKind::ObjectDetection),
        "ac" => Ok(PipelineKind::AudioClassification),
        other => Err(format!(
            "unknown pipeline '{other}' (expected ic, is, od or ac)"
        )),
    }
}

fn cmd_trace(args: &Args) -> Result<(), Box<dyn Error>> {
    let kind = pipeline_of(&args.get("pipeline", "ic".to_string())?)?;
    let mut config = ExperimentConfig::paper_default(kind);
    config.batch_size = args.get("batch", config.batch_size)?;
    config.num_workers = args.get("workers", config.num_workers)?;
    config.num_gpus = args.get("gpus", config.num_gpus)?;
    let default_items = match kind {
        PipelineKind::ImageSegmentation => 210,
        _ => 8 * config.batch_size as u64,
    };
    let config = apply_storage_flags(args, config.scaled_to(args.get("items", default_items)?))?
        .with_policy(policy_of(args)?);

    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let trace = Arc::new(LotusTrace::new());
    let job = config.build(&machine, Arc::clone(&trace) as _, None);
    let storage = job.storage.clone();
    let report = job.run()?;
    println!(
        "{}: {} batches / {} samples in {:.2}s of virtual time\n",
        kind.abbrev(),
        report.batches,
        report.samples,
        report.elapsed.as_secs_f64()
    );
    println!(
        "{:<30} {:>9} {:>9} {:>8} {:>8}",
        "op", "avg ms", "P90 ms", "<10ms %", "<100us %"
    );
    for op in trace.op_stats() {
        println!(
            "{:<30} {:>9.2} {:>9.2} {:>8.2} {:>8.2}",
            op.name,
            op.summary.mean,
            op.summary.p90,
            op.frac_below_10ms * 100.0,
            op.frac_below_100us * 100.0
        );
    }
    if let Some(storage) = &storage {
        println!("\nstorage attribution:");
        print!(
            "{}",
            StorageAttribution::from_run(&storage.counters(), &trace.records()).to_table_string()
        );
    }
    println!("\n{}", analyze(&trace.records()));
    if args.has("timeline") {
        println!(
            "{}",
            render_timeline(&trace.records(), TimelineOptions::default())
        );
    }
    if let Some(path) = args.flags.get("out") {
        let doc = to_chrome_trace(&trace.records(), ChromeTraceOptions { coarse: true });
        std::fs::write(path, serde_json::to_string_pretty(&doc)?)?;
        println!("chrome trace written to {path}");
    }
    if let Some(path) = args.flags.get("log") {
        std::fs::write(path, trace.to_log_string())?;
        println!("trace log written to {path} (lint it with: lotus check --trace {path})");
    }
    Ok(())
}

/// Parses `--backend` (default `native` for run/bench, `sim` for top).
fn backend_of(args: &Args, default: &str) -> Result<BackendKind, Box<dyn Error>> {
    let raw = args.get("backend", default.to_string())?;
    BackendKind::parse(&raw)
        .ok_or_else(|| format!("unknown backend '{raw}' (expected sim or native)").into())
}

/// Applies the run-shaping flags shared by `run`, `bench` and `top`.
fn apply_run_flags(args: &Args, options: &mut RunOptions) -> Result<(), Box<dyn Error>> {
    if args.has("no-gpu") {
        options.emulate_gpu = false;
    }
    if args.has("no-materialize") {
        options.materialize = false;
    }
    if args.has("status-check-ms") {
        options.status_check = Span::from_millis(args.get("status-check-ms", 5_000u64)?);
    }
    if args.has("profile") {
        options.profile = true;
    }
    Ok(())
}

/// Applies `--storage cold|warm`, `--layout tiny|packed` and
/// `--access shuffled|sequential`: routes the dataset's reads through
/// the simulated storage hierarchy (the pipeline's natural one — remote
/// object store for IC/OD/AC, local NVMe for IS), producing traced
/// \[T0\] fetch spans. Sim backend only.
fn apply_storage_flags(
    args: &Args,
    config: ExperimentConfig,
) -> Result<ExperimentConfig, Box<dyn Error>> {
    let Some(raw) = args.flags.get("storage") else {
        for dependent in ["layout", "access"] {
            if args.has(dependent) {
                return Err(format!(
                    "--{dependent} only makes sense together with --storage cold|warm"
                )
                .into());
            }
        }
        return Ok(config);
    };
    let layout = match args.get("layout", "tiny".to_string())?.as_str() {
        "tiny" => FileLayout::TinyFiles,
        "packed" => FileLayout::PackedRecords,
        other => return Err(format!("unknown layout '{other}' (expected tiny or packed)").into()),
    };
    let config = match args.get("access", "shuffled".to_string())?.as_str() {
        "shuffled" => config,
        "sequential" => config.sequential(),
        other => {
            return Err(
                format!("unknown access order '{other}' (expected shuffled or sequential)").into(),
            )
        }
    };
    let base = config.default_storage().with_layout(layout);
    let storage = match raw.as_str() {
        "cold" => base,
        "warm" => base.warm(),
        other => {
            return Err(format!("unknown storage state '{other}' (expected cold or warm)").into())
        }
    };
    Ok(config.with_storage(storage))
}

/// Small-scale default item count for an on-backend run: a few real
/// batches, not the paper-scale epoch `lotus trace` simulates.
fn run_default_items(kind: PipelineKind, batch_size: usize) -> u64 {
    match kind {
        PipelineKind::ImageSegmentation => 8,
        _ => 4 * batch_size as u64,
    }
}

fn cmd_run(args: &Args) -> Result<(), Box<dyn Error>> {
    let kind = pipeline_of(&args.get("pipeline", "ic".to_string())?)?;
    let mut config = ExperimentConfig::paper_default(kind);
    config.batch_size = args.get("batch", config.batch_size)?;
    config.num_workers = args.get("workers", config.num_workers)?;
    config.num_gpus = args.get("gpus", config.num_gpus)?;
    let default_items = run_default_items(kind, config.batch_size);
    let config = apply_storage_flags(args, config.scaled_to(args.get("items", default_items)?))?
        .with_policy(policy_of(args)?);

    let backend = backend_of(args, "native")?;
    let mut options = RunOptions::for_backend(backend);
    apply_run_flags(args, &mut options)?;
    options.faults = parse_fault_flags(args, config.seed)?;

    let outcome = run_experiment(&config, &options)?;
    let time_label = match backend {
        BackendKind::Sim => "virtual",
        BackendKind::Native => "wall",
    };
    println!(
        "{} [{} backend]: {} batches / {} samples in {:.2}s of {} time\n",
        kind.abbrev(),
        outcome.backend,
        outcome.report.batches,
        outcome.report.samples,
        outcome.report.elapsed.as_secs_f64(),
        time_label
    );
    println!(
        "{:<30} {:>7} {:>9} {:>9} {:>8}",
        "op", "count", "avg ms", "P90 ms", "<10ms %"
    );
    for op in outcome.trace.op_stats() {
        println!(
            "{:<30} {:>7} {:>9.2} {:>9.2} {:>8.2}",
            op.name,
            op.count,
            op.summary.mean,
            op.summary.p90,
            op.frac_below_10ms * 100.0
        );
    }
    let card = &outcome.scorecard;
    println!(
        "\nthroughput {:.1} samples/s | main-process wait {:.1}% | verdict: {} ({})",
        card.throughput,
        card.wait_fraction * 100.0,
        card.verdict
            .map_or("failed", lotus::core::tune::TuneVerdict::as_str),
        verdict_family(card)
    );
    if let Some(storage) = &outcome.storage {
        println!("\nstorage attribution:");
        print!("{}", storage.to_table_string());
        if let Some(path) = args.flags.get("storage-out") {
            std::fs::write(path, storage.to_json())?;
            println!("storage attribution written to {path}");
        }
    }
    if let Some(profile) = &outcome.profile {
        println!(
            "\nprofiler: {} kernel samples over {} sampler ticks | overhead {:.4}s ({:.2}% of wall) | RSS peak {} kB",
            profile.kernel_samples,
            profile.ticks,
            profile.overhead.as_secs_f64(),
            profile.overhead_fraction * 100.0,
            profile.rss_peak_kb
        );
        print!("{}", profile.attribution.to_table_string());
        if let Some(agreement) = &profile.agreement {
            println!("\nsim-vs-native attribution (top-k kernels per op):");
            for verdict in agreement {
                let status = if verdict.agrees() {
                    "agrees with the simulated mapping".to_string()
                } else {
                    format!("MISSING from sim: {}", verdict.missing_from_sim.join(", "))
                };
                println!(
                    "  {}: [{}] — {status}",
                    verdict.op,
                    verdict.native_top.join(", ")
                );
            }
        }
        if let Some(path) = args.flags.get("attribution") {
            std::fs::write(path, profile.attribution.to_json())?;
            println!("attribution mapping written to {path}");
        }
    }
    if let Some(path) = args.flags.get("out") {
        let doc = to_chrome_trace(
            &outcome.trace.records(),
            ChromeTraceOptions { coarse: true },
        );
        std::fs::write(path, serde_json::to_string_pretty(&doc)?)?;
        println!("chrome trace written to {path}");
    }
    if let Some(path) = args.flags.get("log") {
        std::fs::write(path, outcome.trace.to_log_string())?;
        println!("trace log written to {path} (lint it with: lotus check --trace {path})");
    }
    Ok(())
}

fn cmd_bench(args: &Args) -> Result<(), Box<dyn Error>> {
    let backend = backend_of(args, "native")?;
    let presets: Vec<String> = args
        .get("presets", "ic".to_string())?
        .split(',')
        .map(|s| s.trim().to_ascii_lowercase())
        .filter(|s| !s.is_empty())
        .collect();
    if presets.is_empty() {
        return Err("--presets must name at least one pipeline".into());
    }
    let baseline_path = args.flags.get("check-against");
    if baseline_path.is_some() && presets.len() != 1 {
        return Err(
            "--check-against gates exactly one preset; pass a single --presets value".into(),
        );
    }
    let tolerance: f64 = args.get("tolerance", 0.2)?;
    let out_dir = std::path::PathBuf::from(args.get("out-dir", ".".to_string())?);
    std::fs::create_dir_all(&out_dir)?;

    for preset in &presets {
        let kind = pipeline_of(preset)?;
        let mut config = ExperimentConfig::paper_default(kind);
        config.batch_size = args.get("batch", config.batch_size)?;
        config.num_workers = args.get("workers", config.num_workers)?;
        let default_items = run_default_items(kind, config.batch_size);
        let config = config.scaled_to(args.get("items", default_items)?);

        let mut options = RunOptions::for_backend(backend);
        apply_run_flags(args, &mut options)?;
        let outcome = run_experiment(&config, &options)?;
        let report = bench_report(preset, &config, &outcome);
        let path = out_dir.join(format!("BENCH_{}_{preset}.json", outcome.backend));
        std::fs::write(&path, serde_json::to_string_pretty(&report)?)?;
        println!(
            "{preset}: {:.1} samples/s, verdict {} -> {}",
            outcome.scorecard.throughput,
            outcome
                .scorecard
                .verdict
                .map_or("failed", lotus::core::tune::TuneVerdict::as_str),
            path.display()
        );
        if let Some(baseline_path) = baseline_path {
            let raw = std::fs::read_to_string(baseline_path)?;
            let baseline: serde_json::Value = serde_json::from_str(&raw)?;
            check_regression(&report, &baseline, tolerance)?;
            println!(
                "  regression gate vs {baseline_path}: ok (tolerance {:.0}%)",
                tolerance * 100.0
            );
        }
    }
    Ok(())
}

fn cmd_map(args: &Args) -> Result<(), Box<dyn Error>> {
    let machine_config = match args.get("vendor", "intel".to_string())?.as_str() {
        "intel" => MachineConfig::cloudlab_c4130(),
        "amd" => MachineConfig::amd_rome(),
        other => return Err(format!("unknown vendor '{other}'").into()),
    };
    let machine = Machine::new(machine_config);
    let mut mapping = match backend_of(args, "sim")? {
        BackendKind::Sim => {
            let mut isolation = IsolationConfig::default();
            if args.has("runs") {
                isolation.runs_override = Some(args.get("runs", 20usize)?);
            }
            isolation.use_sleep_gap = !args.has("no-sleep-gap");
            build_ic_mapping(&machine, isolation)
        }
        // Real kernels, real wall clock: the cooperative span feed
        // observes the instrumented native functions as they execute.
        BackendKind::Native => build_ic_mapping_native(&machine, args.get("runs", 3usize)?),
    };
    // `--storage cold|warm`: run a short traced IC epoch through the
    // simulated storage hierarchy and attach its per-tier attribution, so
    // one artifact carries both the op→function and the fetch→tier side.
    if args.flags.contains_key("storage") {
        let config = apply_storage_flags(
            args,
            ExperimentConfig::paper_default(PipelineKind::ImageClassification)
                .scaled_to(args.get("items", 512u64)?),
        )?;
        let trace = Arc::new(LotusTrace::new());
        let job = config.build(&machine, Arc::clone(&trace) as _, None);
        let storage = job.storage.clone();
        job.run()?;
        if let Some(storage) = storage {
            mapping.set_storage(StorageAttribution::from_run(
                &storage.counters(),
                &trace.records(),
            ));
        }
    }
    print!("{}", mapping.to_table_string());
    if let Some(path) = args.flags.get("out") {
        std::fs::write(path, mapping.to_json())?;
        println!("\nmapping written to {path}");
    }
    Ok(())
}

fn build_mapping_quick(machine: &Arc<Machine>) -> Mapping {
    build_ic_mapping(machine, IsolationConfig::default())
}

fn cmd_attribute(args: &Args) -> Result<(), Box<dyn Error>> {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let mapping = build_mapping_quick(&machine);
    let mut config = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
    config.num_workers = args.get("workers", config.num_workers)?;
    let config = config.scaled_to(args.get("items", 8_192u64)?);

    let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
        op_mode: OpLogMode::Aggregate,
        ..LotusTraceConfig::default()
    }));
    let hw = Arc::new(HwProfiler::new(ProfilerConfig {
        sampling_interval: Span::from_millis(10),
        skid: Span::from_micros(120),
        mode: CollectionMode::Sampling,
        start_paused: false,
    }));
    config
        .build(&machine, Arc::clone(&trace) as _, Some(Arc::clone(&hw)))
        .run()?;
    let op_times: BTreeMap<String, Span> = trace
        .op_stats()
        .iter()
        .map(|o| (o.name.clone(), o.total_cpu))
        .collect();
    let profile = hw.report(&machine);
    if args.has("functions") {
        println!("-- per-function hardware profile (VTune µarch exploration) --");
        print!("{}", format_report(&profile));
        println!();
    }
    let split = if args.has("mix-aware") {
        println!("(mix-aware splitting)");
        split_metrics_mix_aware(&profile, &mapping, &op_times)
    } else {
        split_metrics(&profile, &mapping, &op_times)
    };
    println!(
        "{:<30} {:>12} {:>10} {:>12} {:>12}",
        "op", "CPU (s)", "IPC", "FE-bound %", "DRAM-bound %"
    );
    for op in split {
        if op.cpu_time.is_zero() {
            continue;
        }
        println!(
            "{:<30} {:>12.2} {:>10.2} {:>12.2} {:>12.2}",
            op.op,
            op.cpu_time.as_secs_f64(),
            op.events.ipc(),
            op.events.frontend_bound_fraction() * 100.0,
            op.events.dram_bound_fraction() * 100.0
        );
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), Box<dyn Error>> {
    let mut config = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
    config.batch_size = 512;
    let harness = ComparisonHarness::new(config.scaled_to(args.get("items", 8_192u64)?));
    println!(
        "{:<18} {:>11} {:>12} {:>14}   Epoch/Batch/Async/Wait/Delay",
        "profiler", "wall (s)", "overhead %", "log bytes"
    );
    let baseline = harness.baseline_wall();
    let mut rows = vec![harness.run_lotus(baseline)];
    for which in lotus::profilers::BaselineProfiler::ALL {
        rows.push(harness.run_baseline(which, baseline));
    }
    for row in rows {
        println!(
            "{:<18} {:>11.1} {:>12.1} {:>14}   {}{}",
            row.profiler,
            row.wall_time.as_secs_f64(),
            row.wall_overhead * 100.0,
            row.log_bytes,
            row.capabilities.row(),
            if row.out_of_memory { "  (OOM!)" } else { "" }
        );
    }
    println!("\nstreaming sink stack (one run, cost attributed per sink):");
    println!("{:<18} {:>11} {:>14}", "sink", "wall (s)", "charged");
    for row in harness.run_sink_stack(baseline) {
        println!(
            "{:<18} {:>11.1} {:>14}",
            row.sink,
            row.wall_time.as_secs_f64(),
            format!("{}", row.charged),
        );
    }
    Ok(())
}

fn cmd_top(args: &Args) -> Result<(), Box<dyn Error>> {
    let kind = pipeline_of(&args.get("pipeline", "ic".to_string())?)?;
    let mut config = ExperimentConfig::paper_default(kind);
    config.batch_size = args.get("batch", config.batch_size)?;
    config.num_workers = args.get("workers", config.num_workers)?;
    let default_items = match kind {
        PipelineKind::ImageSegmentation => 210,
        _ => 8 * config.batch_size as u64,
    };
    let config = apply_storage_flags(args, config.scaled_to(args.get("items", default_items)?))?
        .with_policy(policy_of(args)?);

    let backend = backend_of(args, "sim")?;
    let (snapshot, report, time_label, overheads) = match backend {
        BackendKind::Sim => {
            let machine = Machine::new(MachineConfig::cloudlab_c4130());
            let registry = Arc::new(MetricsRegistry::new());
            let metrics = Arc::new(MetricsSink::new(Arc::clone(&registry), config.num_workers));
            let sinks = Arc::new(MultiSink::new().with(Arc::clone(&metrics) as _));
            let report = config
                .build(&machine, Arc::clone(&sinks) as _, None)
                .run()?;
            (registry.snapshot(), report, "virtual", sinks.overheads())
        }
        BackendKind::Native => {
            // Wall-clock dashboard: gauges and histograms are stamped by
            // the native run's shared clock, so the sparklines span the
            // run's real elapsed time.
            let mut options = RunOptions::native();
            apply_run_flags(args, &mut options)?;
            let outcome = run_experiment(&config, &options)?;
            (
                outcome.measurement.snapshot,
                outcome.report,
                "wall",
                Vec::new(),
            )
        }
    };
    let width = args.get("width", 48usize)?;
    print!(
        "{}",
        render_dashboard(&snapshot, DashboardOptions { width })
    );
    println!(
        "\n{} batches / {} samples in {:.2}s of {time_label} time",
        report.batches,
        report.samples,
        report.elapsed.as_secs_f64()
    );
    for (name, overhead) in overheads {
        println!("sink '{name}' charged {overhead} of instrumentation overhead");
    }
    if let Some(path) = args.flags.get("prom") {
        std::fs::write(path, to_prometheus(&snapshot))?;
        println!("prometheus text written to {path}");
    }
    if let Some(path) = args.flags.get("json") {
        std::fs::write(path, to_json(&snapshot))?;
        println!("json snapshot written to {path}");
    }
    if let Some(path) = args.flags.get("csv") {
        std::fs::write(path, to_csv(&snapshot))?;
        println!("csv time-series written to {path}");
    }
    Ok(())
}

/// Builds the `FaultPlan` from the shared `--kill-worker` / `--kill-at-ms`
/// / `--error-rate` / `--error-op` flags (used by `tune` and `run`).
fn parse_fault_flags(args: &Args, seed: u64) -> Result<FaultPlan, Box<dyn Error>> {
    let mut faults = FaultPlan::new(seed);
    if let Some(worker) = args.flags.get("kill-worker") {
        let worker: usize = worker
            .parse()
            .map_err(|_| format!("invalid --kill-worker '{worker}'"))?;
        let at_ms: u64 = args.get("kill-at-ms", 50)?;
        faults = faults.kill_process(
            format!("dataloader{worker}"),
            lotus::sim::Time::ZERO + Span::from_millis(at_ms),
        );
    }
    let error_rate: f64 = args.get("error-rate", 0.0)?;
    if error_rate > 0.0 {
        let op = args.get("error-op", "Loader".to_string())?;
        faults = faults.inject_sample_errors(op, error_rate);
    }
    let slow_rate: f64 = args.get("slow-rate", 0.0)?;
    if slow_rate > 0.0 {
        let factor: f64 = args.get("slow-factor", 10.0)?;
        faults = faults.slow_samples(slow_rate, factor);
    }
    Ok(faults)
}

fn parse_usize_list(name: &str, raw: &str) -> Result<Vec<usize>, String> {
    raw.split(',')
        .map(|tok| {
            tok.trim()
                .parse::<usize>()
                .map_err(|_| format!("invalid value in --{name}: '{tok}'"))
        })
        .collect()
}

fn parse_cap_list(raw: &str) -> Result<Vec<Option<usize>>, String> {
    raw.split(',')
        .map(|tok| match tok.trim() {
            "none" | "-" => Ok(None),
            other => other
                .parse::<usize>()
                .map(Some)
                .map_err(|_| format!("invalid value in --caps: '{other}' (use N or 'none')")),
        })
        .collect()
}

fn cmd_tune(args: &Args) -> Result<(), Box<dyn Error>> {
    let kind = pipeline_of(&args.get("pipeline", "ic".to_string())?)?;
    let mut config = ExperimentConfig::paper_default(kind);
    config.batch_size = args.get("batch", config.batch_size)?;
    let default_items = match kind {
        PipelineKind::ImageSegmentation => 16,
        _ => 8 * config.batch_size as u64,
    };
    let config = apply_storage_flags(args, config.scaled_to(args.get("items", default_items)?))?
        .with_policy(policy_of(args)?);

    let mut space = SearchSpace::default();
    if let Some(raw) = args.flags.get("workers") {
        space.workers = parse_usize_list("workers", raw)?;
    }
    if let Some(raw) = args.flags.get("prefetch") {
        space.prefetch = parse_usize_list("prefetch", raw)?;
    }
    if let Some(raw) = args.flags.get("caps") {
        space.queue_caps = parse_cap_list(raw)?;
    }
    space.pin_memory = match args.get("pin", "on".to_string())?.as_str() {
        "on" => vec![true],
        "off" => vec![false],
        "both" => vec![true, false],
        other => return Err(format!("invalid --pin '{other}' (on, off or both)").into()),
    };
    let strategy = match args.get("strategy", "grid".to_string())?.as_str() {
        "grid" => Strategy::Grid,
        "hill" => Strategy::HillClimb { max_moves: 16 },
        other => return Err(format!("invalid --strategy '{other}' (grid or hill)").into()),
    };

    let faults = parse_fault_flags(args, config.seed)?;

    let jobs = args.get("jobs", lotus::core::exec::default_jobs())?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    let cache_dir = if args.has("no-cache") {
        None
    } else {
        Some(std::path::PathBuf::from(args.get(
            "cache-dir",
            lotus::core::exec::DEFAULT_CACHE_DIR.to_string(),
        )?))
    };
    let options = TuneOptions {
        space,
        strategy,
        faults,
        jobs,
        cache_dir,
    };
    let report = tune_experiment(&config, &options)?;

    if args.has("json") {
        print!("{}", report.to_json());
    } else {
        println!(
            "{}: tuning {} configs over {} items (batch {})\n",
            kind.abbrev(),
            report.cards.len(),
            config.dataset_items.unwrap_or(0),
            config.batch_size
        );
        print!("{}", report.render_table());
    }
    if let Some(path) = args.flags.get("out") {
        std::fs::write(path, report.to_json())?;
        println!("json report written to {path}");
    }
    Ok(())
}

/// Lints one or more recorded trace files; returns the number of files
/// with findings.
fn check_traces(raw: &str) -> Result<usize, Box<dyn Error>> {
    let mut dirty = 0usize;
    for path in raw.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let records = lotus::core::check::load_trace(std::path::Path::new(path))?;
        let findings = lotus::core::check::lint_records(&records, None);
        if findings.is_empty() {
            println!("{path}: ok ({} records)", records.len());
        } else {
            dirty += 1;
            println!("{path}: {} finding(s)", findings.len());
            for finding in &findings {
                println!("  {finding}");
            }
        }
    }
    Ok(dirty)
}

fn print_counterexample(scenario: &Scenario, cx: &lotus::core::check::Counterexample) {
    let schedule: Vec<String> = cx.schedule.iter().map(usize::to_string).collect();
    println!("  counterexample schedule: [{}]", schedule.join(","));
    println!(
        "  ({} decision points in the violating run; replay with: lotus check --replay {})",
        cx.decisions,
        if schedule.is_empty() {
            "\"\"".to_string()
        } else {
            schedule.join(",")
        }
    );
    for violation in &cx.violations {
        println!("  violation: {violation}");
    }
    let _ = scenario;
}

fn cmd_check(args: &Args) -> Result<(), Box<dyn Error>> {
    if let Some(raw) = args.flags.get("trace") {
        let dirty = check_traces(raw)?;
        if dirty > 0 {
            return Err(format!("{dirty} trace file(s) violated the lint rules").into());
        }
        return Ok(());
    }

    let mut options = CheckOptions::default();
    options.workers = args.get("workers", options.workers)?;
    options.items = args.get("items", options.items)?;
    options.batch_size = args.get("batch", options.batch_size)?;
    options.bounds.max_schedules = args.get("schedules", 64usize)?;
    options.bounds.max_depth = args.get("depth", options.bounds.max_depth)?;
    options.bounds.max_branch = args.get("branch", options.bounds.max_branch)?;
    options.bounds.max_steps = args.get("steps", options.bounds.max_steps)?;
    options.with_faults = !args.has("no-faults");
    options.policy = policy_of(args)?;
    let mutate = args.flags.get("mutate").map(String::as_str);
    options.mutation = match mutate {
        None => LoaderMutation::None,
        Some("lose-batch") => LoaderMutation::LoseBatch { batch_id: 1 },
        Some("premature-redispatch") => LoaderMutation::RedispatchLive { batch_id: 1 },
        Some(other) => {
            return Err(
                format!("invalid --mutate '{other}' (lose-batch or premature-redispatch)").into(),
            )
        }
    };

    let raw_kind = args.get("pipeline", "ic".to_string())?;
    let kinds: Vec<PipelineKind> = if raw_kind == "all" {
        vec![
            PipelineKind::ImageClassification,
            PipelineKind::AudioClassification,
            PipelineKind::ImageSegmentation,
        ]
    } else {
        vec![pipeline_of(&raw_kind)?]
    };

    if let Some(raw) = args.flags.get("replay") {
        let schedule: Vec<usize> = if raw.trim().is_empty() || raw == "true" {
            Vec::new()
        } else {
            raw.split(',')
                .map(|tok| {
                    tok.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("invalid choice in --replay: '{tok}'"))
                })
                .collect::<Result<_, _>>()?
        };
        let scenario = lotus::checking::scenarios(kinds[0], &options)
            .into_iter()
            .next()
            .ok_or("no scenario to replay")?;
        let outcome = lotus::checking::run_scheduled(&scenario, &schedule, &options.bounds);
        println!(
            "replay {}: {} decision points, {} protocol events",
            scenario.name,
            outcome.decisions.len(),
            outcome.events.len()
        );
        println!("  ending: {:?}", outcome.ending);
        if outcome.violations.is_empty() {
            println!("  no violations");
            return Ok(());
        }
        for violation in &outcome.violations {
            println!("  violation: {violation}");
        }
        return Err("replayed schedule violates the invariant catalog".into());
    }

    println!(
        "lotus check: workers={} items={} batch={} | schedules<={} depth<={} branch<={} steps<={}{}",
        options.workers,
        options.items,
        options.batch_size,
        options.bounds.max_schedules,
        options.bounds.max_depth,
        options.bounds.max_branch,
        options.bounds.max_steps,
        match mutate {
            Some(m) => format!(" | MUTATED ({m})"),
            None => String::new(),
        }
    );
    println!(
        "\n{:<34} {:>9} {:>9} {:>8} {:>8} {:>7} {:>9}",
        "scenario", "schedules", "decisions", "states", "pruned", "depth", "verdict"
    );
    let mut violations = 0usize;
    let mut counterexamples = Vec::new();
    for kind in kinds {
        for (scenario, report) in lotus::checking::check_pipeline(kind, &options) {
            let stats = report.stats;
            println!(
                "{:<34} {:>9} {:>9} {:>8} {:>8} {:>7} {:>9}",
                scenario.name,
                stats.schedules_run,
                stats.decision_points,
                stats.states_seen,
                stats.states_pruned,
                stats.max_depth_reached,
                if report.clean() { "ok" } else { "VIOLATED" }
            );
            if stats.budget_exhausted || stats.depth_truncations > 0 {
                println!(
                    "{:<34}   (bounded: budget_exhausted={} depth_truncations={} branch_truncations={})",
                    "", stats.budget_exhausted, stats.depth_truncations, stats.branch_truncations
                );
            }
            if let Some(cx) = report.counterexample {
                violations += 1;
                counterexamples.push((scenario, cx));
            }
        }
    }
    for (scenario, cx) in &counterexamples {
        println!("\n{}:", scenario.name);
        print_counterexample(scenario, cx);
    }
    match (mutate, violations) {
        (None, 0) => Ok(()),
        (None, n) => Err(format!("{n} scenario(s) violated the invariant catalog").into()),
        (Some(m), 0) => {
            Err(format!("mutation '{m}' was NOT detected — the checker has a blind spot").into())
        }
        (Some(m), _) => {
            println!("\nmutation '{m}' detected as expected");
            Ok(())
        }
    }
}

/// Parses `--replay`'s comma-separated choice list (`--replay` alone
/// means the empty, default-policy schedule).
fn parse_schedule(raw: &str) -> Result<Vec<usize>, String> {
    if raw.trim().is_empty() || raw == "true" {
        return Ok(Vec::new());
    }
    raw.split(',')
        .map(|tok| {
            tok.trim()
                .parse::<usize>()
                .map_err(|_| format!("invalid choice in --replay: '{tok}'"))
        })
        .collect()
}

/// The bounded-exhaustive side of `lotus audit`: explore (or `--replay`)
/// the modelled native protocol.
fn cmd_audit_model(args: &Args) -> Result<(), Box<dyn Error>> {
    use lotus::core::check::ExploreBounds;
    use lotus::core::check::{explore_native_model, run_model_traced, ModelBug, ModelConfig};

    let raw_bug = args.get("bug", "none".to_string())?;
    let bug = ModelBug::parse(&raw_bug).ok_or_else(|| {
        format!(
            "invalid --bug '{raw_bug}' (none, skip-notify, release-recheck, lock-order or \
             if-instead-of-while)"
        )
    })?;
    let cfg = ModelConfig {
        workers: args.get("workers", 2usize)?,
        batches_per_worker: args.get("batches", 2usize)?,
        queue_cap: args.get("cap", 1usize)?,
        bug,
    };
    let bounds = ExploreBounds {
        max_schedules: args.get("schedules", 2_000usize)?,
        max_depth: args.get("depth", 96usize)?,
        max_branch: args.get("branch", 4usize)?,
        ..ExploreBounds::default()
    };

    if let Some(raw) = args.flags.get("replay") {
        let schedule = parse_schedule(raw)?;
        let (run, events) = run_model_traced(&cfg, &schedule);
        println!(
            "replay model[bug={}] schedule [{}]: {} decision points, {} sync events",
            bug.as_str(),
            schedule
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(","),
            run.decisions.len(),
            events.len()
        );
        if args.has("trace") {
            for e in &events {
                println!("  #{:<5} tid {:<4} {:<12} {:?}", e.seq, e.tid, e.obj, e.op);
            }
        }
        if run.violations.is_empty() {
            println!("  no violations");
            return Ok(());
        }
        for v in &run.violations {
            println!("  violation: {v}");
        }
        return Err("replayed model schedule violates the synchronization contract".into());
    }

    println!(
        "lotus audit --model: workers={} batches/worker={} cap={} bug={} | schedules<={} depth<={} branch<={}",
        cfg.workers,
        cfg.batches_per_worker,
        cfg.queue_cap,
        bug.as_str(),
        bounds.max_schedules,
        bounds.max_depth,
        bounds.max_branch
    );
    let report = explore_native_model(&cfg, &bounds);
    let stats = report.stats;
    println!(
        "explored {} schedules, {} decision points, {} states ({} pruned), depth {} | verdict: {}",
        stats.schedules_run,
        stats.decision_points,
        stats.states_seen,
        stats.states_pruned,
        stats.max_depth_reached,
        if report.clean() { "ok" } else { "VIOLATED" }
    );
    let found = report.counterexample.is_some();
    if let Some(cx) = report.counterexample {
        let schedule: Vec<String> = cx.schedule.iter().map(usize::to_string).collect();
        println!("counterexample schedule: [{}]", schedule.join(","));
        println!(
            "  (replay with: lotus audit --model --bug {} --replay {})",
            bug.as_str(),
            if schedule.is_empty() {
                "\"\"".to_string()
            } else {
                schedule.join(",")
            }
        );
        for v in &cx.violations {
            println!("  violation: {v}");
        }
    }
    match (bug, found) {
        (ModelBug::None, false) => Ok(()),
        (ModelBug::None, true) => {
            Err("the clean model violated the synchronization contract".into())
        }
        (_, true) => {
            println!("\nmodel bug '{}' detected as expected", bug.as_str());
            Ok(())
        }
        (_, false) => Err(format!(
            "model bug '{}' was NOT detected — the auditor has a blind spot",
            bug.as_str()
        )
        .into()),
    }
}

fn cmd_audit(args: &Args) -> Result<(), Box<dyn Error>> {
    use lotus::auditing::{audit_matrix, minimized_window, AuditOptions};
    use lotus::dataflow::AuditMutation;

    if args.has("model") || args.has("bug") {
        return cmd_audit_model(args);
    }
    if args.has("replay") {
        return Err("--replay replays model schedules; add --model (and --bug NAME)".into());
    }

    let mut options = AuditOptions::default();
    options.items = args.get("items", options.items)?;
    options.workers = args.get("workers", options.workers)?;
    if args.has("status-check-ms") {
        options.status_check = Span::from_millis(args.get("status-check-ms", 20u64)?);
    }
    let raw_kind = args.get("pipeline", "all".to_string())?;
    if raw_kind != "all" {
        options.pipelines = vec![pipeline_of(&raw_kind)?];
    }
    let raw_policy = args.get("policy", "all".to_string())?;
    if raw_policy != "all" {
        options.policies = vec![SchedulingPolicyKind::parse(&raw_policy)?];
    }
    let mutate = args.flags.get("mutate").map(String::as_str);
    if let Some(name) = mutate {
        options.mutation = AuditMutation::parse(name).ok_or_else(|| {
            format!("invalid --mutate '{name}' (skip-notify, release-recheck or lock-order)")
        })?;
    }

    println!(
        "lotus audit: items={} workers={} status-check={:.0}ms | {} pipeline(s) x {} policy(ies){}",
        options.items,
        options.workers,
        options.status_check.as_secs_f64() * 1e3,
        options.pipelines.len(),
        options.policies.len(),
        match mutate {
            Some(m) => format!(" | MUTATED ({m})"),
            None => String::new(),
        }
    );
    println!(
        "\n{:<22} {:>7} {:>8} {:>8} {:>8} {:>8} {:>12} {:>9}",
        "run", "batches", "events", "threads", "objects", "ids", "overhead us", "verdict"
    );
    let runs = audit_matrix(&options)?;
    let mut flagged = 0usize;
    for run in &runs {
        let s = run.report.stats;
        println!(
            "{:<22} {:>7} {:>8} {:>8} {:>8} {:>8} {:>12.1} {:>9}",
            run.name,
            run.batches,
            s.events,
            s.threads,
            s.objects,
            s.batches,
            run.audit_overhead_ns as f64 / 1e3,
            if run.report.clean() { "ok" } else { "FLAGGED" }
        );
        if args.has("trace") {
            for e in &run.events {
                println!("  #{:<6} tid {:<4} {:<22} {:?}", e.seq, e.tid, e.obj, e.op);
            }
        }
        if !run.report.clean() {
            flagged += 1;
        }
    }
    if args.has("json") {
        let docs: Vec<serde_json::Value> = runs
            .iter()
            .map(|run| {
                use serde_json::Content;
                serde_json::Value(Content::Map(vec![
                    ("run".into(), Content::Str(run.name.clone())),
                    ("clean".into(), Content::Bool(run.report.clean())),
                    (
                        "events".into(),
                        Content::U64(run.report.stats.events as u64),
                    ),
                    (
                        "threads".into(),
                        Content::U64(run.report.stats.threads as u64),
                    ),
                    ("overhead_ns".into(), Content::U64(run.audit_overhead_ns)),
                    ("elapsed_s".into(), Content::F64(run.elapsed.as_secs_f64())),
                    (
                        "findings".into(),
                        Content::Seq(
                            run.report
                                .findings
                                .iter()
                                .map(|f| {
                                    Content::Map(vec![
                                        ("kind".into(), Content::Str(f.kind().into())),
                                        ("detail".into(), Content::Str(f.to_string())),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]))
            })
            .collect();
        let seq = serde_json::Value(serde_json::Content::Seq(
            docs.into_iter().map(|v| v.0).collect(),
        ));
        println!("{}", serde_json::to_string_pretty(&seq)?);
    }
    for run in runs.iter().filter(|r| !r.report.clean()) {
        println!("\n{}: {} finding(s)", run.name, run.report.findings.len());
        for finding in &run.report.findings {
            println!("  [{}] {finding}", finding.kind());
        }
        if let Some(window) = minimized_window(run) {
            println!(
                "  minimized counterexample window ({} of {} events):",
                window.len(),
                run.events.len()
            );
            for e in &window {
                println!(
                    "    #{:<6} tid {:<4} {:<22} {:?}",
                    e.seq, e.tid, e.obj, e.op
                );
            }
        }
    }
    match (mutate, flagged) {
        (None, 0) => Ok(()),
        (None, n) => Err(format!("{n} run(s) violated the synchronization contract").into()),
        (Some(m), 0) => {
            Err(format!("mutation '{m}' was NOT detected — the auditor has a blind spot").into())
        }
        (Some(m), _) => {
            println!("\nmutation '{m}' detected as expected");
            Ok(())
        }
    }
}

fn run() -> Result<(), Box<dyn Error>> {
    let mut raw = std::env::args().skip(1);
    let Some(command) = raw.next() else {
        print!("{USAGE}");
        return Ok(());
    };
    let args = Args::parse(raw)?;
    match command.as_str() {
        "trace" => cmd_trace(&args),
        "run" => cmd_run(&args),
        "bench" => cmd_bench(&args),
        "map" => cmd_map(&args),
        "attribute" => cmd_attribute(&args),
        "compare" => cmd_compare(&args),
        "top" => cmd_top(&args),
        "tune" => cmd_tune(&args),
        "check" => cmd_check(&args),
        "audit" => cmd_audit(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}").into()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
