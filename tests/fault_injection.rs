//! Integration tests for the fault-injection subsystem: worker kills with
//! batch redispatch, injected sample errors surfacing as typed job errors,
//! queue slowdowns, and the determinism of faulty runs.

use std::sync::Arc;

use lotus::core::trace::analysis::fault_summary;
use lotus::core::trace::chrome::{to_chrome_trace, ChromeTraceOptions};
use lotus::core::trace::{LotusTrace, SpanKind, TraceRecord};
use lotus::data::DType;
use lotus::dataflow::{
    worker_os_pid, DataLoaderConfig, Dataset, FaultPlan, GpuConfig, JobError, JobReport,
    LoaderMutation, Sampler, SchedulingPolicyKind, Tracer, TrainingJob,
};
use lotus::sim::{Span, Time};
use lotus::transforms::{PipelineError, Sample, TransformCtx, TransformObserver};
use lotus::uarch::{CostCoeffs, KernelId, Machine, MachineConfig};

/// A dataset with fixed per-item decode cost, enough to keep workers busy.
struct StubDataset {
    len: u64,
    work_per_item: f64,
    kernel: KernelId,
}

impl StubDataset {
    fn new(machine: &Machine, len: u64, work_per_item: f64) -> StubDataset {
        StubDataset {
            len,
            work_per_item,
            kernel: machine.kernel("stub_decode", "libstub.so", CostCoeffs::compute_default()),
        }
    }
}

impl Dataset for StubDataset {
    fn len(&self) -> u64 {
        self.len
    }

    fn get_item(
        &self,
        index: u64,
        ctx: &mut TransformCtx<'_>,
        observer: &mut dyn TransformObserver,
    ) -> Result<Sample, PipelineError> {
        let start = ctx.cpu.cursor();
        let work = self.work_per_item * (1.0 + (index % 5) as f64 / 2.0);
        ctx.cpu.exec(self.kernel, work);
        observer.on_transform("Loader", start, ctx.cpu.cursor().since(start));
        Ok(Sample::tensor_meta(&[3, 16, 16], DType::F32))
    }
}

fn job(machine: &Arc<Machine>, workers: usize, tracer: Arc<dyn Tracer>) -> TrainingJob {
    TrainingJob {
        machine: Arc::clone(machine),
        dataset: Arc::new(StubDataset::new(machine, 256, 400_000.0)),
        storage: None,
        loader: DataLoaderConfig {
            batch_size: 8,
            num_workers: workers,
            prefetch_factor: 2,
            data_queue_cap: None,
            pin_memory: true,
            sampler: Sampler::Sequential,
            drop_last: true,
            policy: SchedulingPolicyKind::RoundRobin,
        },
        gpu: GpuConfig::v100(1, Span::from_micros(100)),
        tracer,
        hw_profiler: None,
        seed: 11,
        epochs: 1,
        faults: FaultPlan::default(),
        controller: None,
        mutation: LoaderMutation::None,
    }
}

/// Runs the standard 4-worker job under `faults`, returning the trace and
/// the job outcome.
fn faulty_run(faults: FaultPlan) -> (Arc<LotusTrace>, Result<JobReport, JobError>) {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let trace = Arc::new(LotusTrace::new());
    let mut j = job(&machine, 4, Arc::clone(&trace) as _);
    j.faults = faults;
    let outcome = j.run();
    (trace, outcome)
}

/// The virtual elapsed time of the job with no faults, used to target
/// kill times at mid-epoch.
fn baseline_elapsed() -> Span {
    let (_, outcome) = faulty_run(FaultPlan::default());
    outcome.expect("fault-free run succeeds").elapsed
}

#[test]
fn killed_worker_mid_epoch_completes_via_redispatch() {
    let kill_at = Time::ZERO + baseline_elapsed().mul_f64(0.5);
    let plan = FaultPlan::new(11).kill_process("dataloader1", kill_at);

    let (trace, outcome) = faulty_run(plan);
    let report = outcome.expect("survivors finish the epoch");
    assert_eq!(
        report.batches, 32,
        "every batch is consumed despite the death"
    );
    assert_eq!(report.samples, 256);

    let summary = fault_summary(&trace.records());
    assert_eq!(summary.dead_workers, vec![worker_os_pid(1)]);
    assert!(
        !summary.redispatched.is_empty(),
        "a worker killed mid-epoch leaves in-flight batches to redispatch"
    );
    // Redispatched batches were still preprocessed (by a survivor) and
    // consumed exactly once.
    let records = trace.records();
    for &id in &summary.redispatched {
        let fetches: Vec<&TraceRecord> = records
            .iter()
            .filter(|r| r.kind == SpanKind::BatchPreprocessed && r.batch_id == id)
            .collect();
        assert_eq!(
            fetches.len(),
            1,
            "batch {id} is fetched once, by a survivor"
        );
        assert_ne!(
            fetches[0].pid,
            worker_os_pid(1),
            "the dead worker cannot fetch it"
        );
        let consumed = records
            .iter()
            .filter(|r| r.kind == SpanKind::BatchConsumed && r.batch_id == id)
            .count();
        assert_eq!(consumed, 1);
    }
}

#[test]
fn faulty_runs_are_bit_identical() {
    let kill_at = Time::ZERO + baseline_elapsed().mul_f64(0.4);
    let plan = FaultPlan::new(23).kill_process("dataloader2", kill_at);
    let (a, ra) = faulty_run(plan.clone());
    let (b, rb) = faulty_run(plan);
    assert_eq!(ra.unwrap(), rb.unwrap());
    assert_eq!(
        a.records(),
        b.records(),
        "faulty traces must be bit-identical across runs"
    );
}

#[test]
fn fault_marks_export_as_chrome_instants() {
    let kill_at = Time::ZERO + baseline_elapsed().mul_f64(0.5);
    let plan = FaultPlan::new(11).kill_process("dataloader1", kill_at);
    let (trace, outcome) = faulty_run(plan);
    outcome.unwrap();

    let doc = to_chrome_trace(&trace.records(), ChromeTraceOptions { coarse: true });
    let events = doc["traceEvents"].as_array().unwrap();
    let died: Vec<_> = events
        .iter()
        .filter(|e| e["name"].as_str().is_some_and(|n| n == "SWorkerDied"))
        .collect();
    let redispatched: Vec<_> = events
        .iter()
        .filter(|e| {
            e["name"]
                .as_str()
                .is_some_and(|n| n.starts_with("SBatchRedispatched_"))
        })
        .collect();
    assert_eq!(died.len(), 1);
    assert!(!redispatched.is_empty());
    for e in died.iter().chain(&redispatched) {
        assert_eq!(e["ph"], "i", "fault marks are Chrome instant events");
        assert_eq!(e["s"], "p", "scoped to the emitting process");
    }
    assert_eq!(died[0]["pid"].as_u64(), Some(u64::from(worker_os_pid(1))));
}

#[test]
fn all_workers_dead_is_a_typed_error() {
    let kill_at = Time::ZERO + baseline_elapsed().mul_f64(0.5);
    let mut plan = FaultPlan::new(3);
    for w in 0..4 {
        plan = plan.kill_process(format!("dataloader{w}"), kill_at);
    }
    let (_, outcome) = faulty_run(plan);
    match outcome {
        Err(JobError::AllWorkersDied {
            workers,
            outstanding,
        }) => {
            assert_eq!(workers, 4);
            assert!(outstanding > 0, "mid-epoch batches were still in flight");
        }
        other => panic!("expected AllWorkersDied, got {other:?}"),
    }
}

#[test]
fn injected_sample_error_surfaces_as_a_typed_error() {
    let plan = FaultPlan::new(11).inject_sample_errors("Decode", 1.0);
    let (trace, outcome) = faulty_run(plan);
    match outcome {
        Err(JobError::Sample {
            batch_id,
            worker,
            error,
        }) => {
            // With p = 1 the very first returned batch fails.
            assert_eq!(batch_id, 0);
            assert!(worker < 4);
            assert_eq!(error.op(), Some("Decode"));
            assert_eq!(
                error,
                PipelineError::Injected {
                    op: "Decode".into(),
                    index: 0
                }
            );
            let msg = JobError::Sample {
                batch_id,
                worker,
                error,
            }
            .to_string();
            assert!(msg.contains("batch 0"), "error names the batch: {msg}");
            assert!(msg.contains("Decode"), "error names the op: {msg}");
        }
        other => panic!("expected a sample error, got {other:?}"),
    }
    // The injection site is visible in the trace.
    let summary = fault_summary(&trace.records());
    assert!(summary.injected.iter().any(|(_, op)| op == "Decode"));
}

#[test]
fn rare_injected_errors_name_the_failing_sample() {
    // A low probability exercises the deterministic per-index hash: the
    // run fails on the first scheduled batch containing a bad index.
    let plan = FaultPlan::new(77).inject_sample_errors("ToTensor", 0.01);
    let first_bad = (0..256)
        .find(|&i| plan.sample_error(i).is_some())
        .expect("some index fails at p=0.01");
    let (_, outcome) = faulty_run(plan);
    match outcome {
        Err(JobError::Sample {
            error: PipelineError::Injected { op, index },
            ..
        }) => {
            assert_eq!(op, "ToTensor");
            // Sequential sampler: the lowest failing index fails first.
            assert_eq!(index, first_bad);
        }
        other => panic!("expected an injected sample error, got {other:?}"),
    }
}

#[test]
fn queue_slowdown_lengthens_the_epoch() {
    let healthy = baseline_elapsed();
    let plan = FaultPlan::new(11).slow_queue("data_queue", 100.0);
    let (_, outcome) = faulty_run(plan);
    let degraded = outcome.unwrap().elapsed;
    assert!(
        degraded > healthy,
        "a degraded IPC channel must cost virtual time: {degraded} vs {healthy}"
    );
}

#[test]
fn invalid_config_is_a_typed_error_not_a_panic() {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let mut j = job(&machine, 4, Arc::new(lotus::dataflow::NullTracer));
    j.loader.num_workers = 0;
    match j.run() {
        Err(JobError::InvalidConfig(msg)) => assert!(msg.contains("num_workers")),
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}
