//! End-to-end tests of the simulated storage tier: cold tiny-file epochs
//! are storage-bound, warm page caches flip the bottleneck back to the
//! CPU phases, and every produced trace passes the lint catalog —
//! including the per-read containment invariant.

use lotus::core::check::lint_records;
use lotus::core::map::StorageAttribution;
use lotus::core::metrics::{render_dashboard, DashboardOptions};
use lotus::core::trace::analysis::op_class_totals;
use lotus::core::trace::insights::{analyze, Verdict};
use lotus::core::trace::SpanKind;
use lotus::core::tune::TuneVerdict;
use lotus::running::{run_experiment, verdict_family, RunOptions};
use lotus::sim::{FileLayout, StorageConfig};
use lotus::workloads::{ExperimentConfig, PipelineKind};

fn ic(items: u64) -> ExperimentConfig {
    ExperimentConfig::paper_default(PipelineKind::ImageClassification).scaled_to(items)
}

#[test]
fn cold_ic_is_storage_bound_and_warm_flips_back() {
    let cold = run_experiment(
        &ic(256).with_storage(StorageConfig::remote_object_store()),
        &RunOptions::sim(),
    )
    .unwrap();
    let warm = run_experiment(
        &ic(256).with_storage(StorageConfig::remote_object_store().warm()),
        &RunOptions::sim(),
    )
    .unwrap();

    // Cold tiny files on an object store: the tune verdict, its family,
    // and the trace-analysis verdict all call it storage-bound.
    assert_eq!(cold.scorecard.verdict, Some(TuneVerdict::StorageBound));
    assert_eq!(verdict_family(&cold.scorecard), "input-bound");
    let cold_insights = analyze(&cold.trace.records());
    assert_eq!(cold_insights.verdict, Verdict::StorageBound);
    assert!(
        cold_insights.t0_fraction > 0.35,
        "cold t0 fraction {}",
        cold_insights.t0_fraction
    );

    // A warm page cache flips the bottleneck back to the CPU phases.
    let warm_insights = analyze(&warm.trace.records());
    assert_ne!(warm.scorecard.verdict, Some(TuneVerdict::StorageBound));
    assert_ne!(warm_insights.verdict, Verdict::StorageBound);
    assert!(
        warm_insights.t0_fraction < 0.05,
        "warm t0 fraction {}",
        warm_insights.t0_fraction
    );

    // The joined attribution agrees: cold reads hit the object store,
    // warm ones the page cache, and warm T0 collapses.
    let cold_attr = cold.storage.as_ref().expect("cold run attributed");
    let warm_attr = warm.storage.as_ref().expect("warm run attributed");
    assert_eq!(cold_attr.tiers[0].tier, "object-store");
    assert_eq!(cold_attr.hit_ratio(), 0.0);
    assert_eq!(warm_attr.hit_ratio(), 1.0);
    assert!(
        warm_attr.t0_total() < cold_attr.t0_total().mul_f64(0.05),
        "warm {:?} !<< cold {:?}",
        warm_attr.t0_total(),
        cold_attr.t0_total()
    );
}

#[test]
fn storage_traces_lint_clean_including_containment() {
    for storage in [
        StorageConfig::remote_object_store(),
        StorageConfig::remote_object_store().warm(),
    ] {
        let outcome = run_experiment(&ic(256).with_storage(storage), &RunOptions::sim()).unwrap();
        let records = outcome.trace.records();
        assert!(
            records
                .iter()
                .any(|r| matches!(r.kind, SpanKind::StorageRead(_))),
            "no storage-read spans recorded"
        );
        let findings = lint_records(&records, None);
        assert!(findings.is_empty(), "lint findings: {findings:?}");
    }
}

#[test]
fn runs_without_storage_are_untouched() {
    let outcome = run_experiment(&ic(256), &RunOptions::sim()).unwrap();
    assert!(outcome.storage.is_none());
    assert!(
        !outcome
            .trace
            .records()
            .iter()
            .any(|r| matches!(r.kind, SpanKind::StorageRead(_))),
        "legacy runs must not emit storage spans"
    );
    assert!(op_class_totals(&outcome.trace.records()).storage.is_zero());
}

#[test]
fn sequential_packed_epochs_outrun_shuffled_tiny_files() {
    let run = |config: ExperimentConfig| {
        let outcome = run_experiment(&config, &RunOptions::sim()).unwrap();
        let storage = outcome.storage.expect("storage configured");
        (outcome.report.elapsed, storage)
    };
    let (tiny_elapsed, tiny) = run(ic(256)
        .with_storage(StorageConfig::remote_object_store().with_layout(FileLayout::TinyFiles)));
    let (packed_elapsed, packed) = run(ic(256)
        .sequential()
        .with_storage(StorageConfig::remote_object_store().with_layout(FileLayout::PackedRecords)));
    assert!(
        packed_elapsed < tiny_elapsed,
        "packed sequential {packed_elapsed} !< tiny shuffled {tiny_elapsed}"
    );
    assert!(
        packed.hit_ratio() > tiny.hit_ratio(),
        "readahead should lift the packed hit ratio: packed {} vs tiny {}",
        packed.hit_ratio(),
        tiny.hit_ratio()
    );
}

#[test]
fn storage_runs_are_deterministic() {
    let config = ic(256).with_storage(StorageConfig::remote_object_store());
    let a = run_experiment(&config, &RunOptions::sim()).unwrap();
    let b = run_experiment(&config, &RunOptions::sim()).unwrap();
    assert_eq!(a.report.elapsed, b.report.elapsed);
    assert_eq!(
        a.storage.as_ref().map(StorageAttribution::to_json),
        b.storage.as_ref().map(StorageAttribution::to_json)
    );
    assert_eq!(a.trace.records(), b.trace.records());
}

#[test]
fn storage_metrics_reach_the_snapshot_and_dashboard() {
    let outcome = run_experiment(
        &ic(256).with_storage(StorageConfig::remote_object_store()),
        &RunOptions::sim(),
    )
    .unwrap();
    let snapshot = &outcome.measurement.snapshot;
    assert!(snapshot
        .counters
        .contains_key("storage_reads_total.object-store"));
    assert!(snapshot.histograms.contains_key("t0_storage_read_ns"));
    let dashboard = render_dashboard(snapshot, DashboardOptions { width: 16 });
    assert!(dashboard.contains("\nstorage\n"), "{dashboard}");
    assert!(dashboard.contains("object-store"));
    assert!(dashboard.contains("t0 fetch: p50"));
}
