//! Integration tests for `lotus check`: randomized (seeded) schedules and
//! fault plans never violate the invariant catalog on the unmutated
//! loader; deliberately seeded loader bugs are always flagged; fresh
//! traces and their Chrome round-trips lint clean.

use std::sync::Arc;

use lotus::checking::{check_scenario, run_scheduled, scenarios, CheckOptions};
use lotus::core::check::{
    lint_gauges, lint_records, GaugeLimits, LintFinding, ReportFacts, Violation,
};
use lotus::core::metrics::{MetricsRegistry, MetricsSink, MultiSink};
use lotus::core::trace::chrome::{from_chrome_trace, to_chrome_trace, ChromeTraceOptions};
use lotus::core::trace::{LotusTrace, LotusTraceConfig, OpLogMode};
use lotus::dataflow::{FaultPlan, LoaderMutation, SchedulingPolicyKind};
use lotus::sim::{Span, Time};
use lotus::uarch::{Machine, MachineConfig};
use lotus::workloads::{ExperimentConfig, PipelineKind};
use proptest::prelude::*;

fn quick_options(workers: usize) -> CheckOptions {
    CheckOptions {
        workers,
        with_faults: false,
        ..CheckOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any schedule prefix, any surviving-kill fault plan: the unmutated
    /// loader upholds every invariant in the catalog.
    #[test]
    fn randomized_schedules_and_faults_never_violate_the_unmutated_loader(
        workers in 1usize..=3,
        schedule in prop::collection::vec(0usize..4, 0..10),
        kill in prop::option::of((0usize..8, 20u64..400)),
    ) {
        let options = quick_options(workers);
        let mut scenario = scenarios(PipelineKind::ImageClassification, &options)
            .into_iter()
            .next()
            .expect("at least the no-fault scenario");
        if let (Some((victim, at_ms)), true) = (kill, workers >= 2) {
            // Kill exactly one worker so survivors can finish the epoch.
            scenario.faults = FaultPlan::new(7).kill_process(
                format!("dataloader{}", victim % workers),
                Time::ZERO + Span::from_millis(at_ms),
            );
        }
        let outcome = run_scheduled(&scenario, &schedule, &options.bounds);
        prop_assert!(
            outcome.violations.is_empty(),
            "schedule {schedule:?}, kill {kill:?}: ending {:?}, violations {:?}",
            outcome.ending,
            outcome.violations
        );
    }

    /// A loader that silently drops a batch stalls the epoch under every
    /// schedule, and the catalog flags it.
    #[test]
    fn lost_batch_is_flagged_under_every_schedule(
        schedule in prop::collection::vec(0usize..4, 0..8),
        batch_id in 0u64..4,
    ) {
        let mut options = quick_options(2);
        options.mutation = LoaderMutation::LoseBatch { batch_id };
        let scenario = &scenarios(PipelineKind::ImageClassification, &options)[0];
        let outcome = run_scheduled(scenario, &schedule, &options.bounds);
        prop_assert!(
            outcome
                .violations
                .iter()
                .any(|v| matches!(v, Violation::Stalled { .. })),
            "schedule {schedule:?}, lost batch {batch_id}: ending {:?}, violations {:?}",
            outcome.ending,
            outcome.violations
        );
    }

    /// A loader that redispatches a live worker's batch violates dispatch
    /// discipline under every schedule.
    #[test]
    fn premature_redispatch_is_flagged_under_every_schedule(
        schedule in prop::collection::vec(0usize..4, 0..8),
    ) {
        let mut options = quick_options(2);
        options.mutation = LoaderMutation::RedispatchLive { batch_id: 1 };
        let scenario = &scenarios(PipelineKind::ImageClassification, &options)[0];
        let outcome = run_scheduled(scenario, &schedule, &options.bounds);
        prop_assert!(
            outcome.violations.iter().any(|v| matches!(
                v,
                Violation::RedispatchBeforeDeath { .. } | Violation::DoubleDispatch { .. }
            )),
            "schedule {schedule:?}: violations {:?}",
            outcome.violations
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every scheduling policy — not just the round-robin default —
    /// upholds sample conservation, dispatch discipline and progress
    /// under randomized schedules and surviving-kill plans.
    #[test]
    fn every_policy_upholds_the_catalog_under_randomized_kill_plans(
        policy_idx in 0usize..SchedulingPolicyKind::ALL.len(),
        workers in 1usize..=3,
        schedule in prop::collection::vec(0usize..4, 0..8),
        kill in prop::option::of((0usize..8, 20u64..400)),
    ) {
        let policy = SchedulingPolicyKind::ALL[policy_idx];
        let mut options = quick_options(workers);
        options.policy = policy;
        let mut scenario = scenarios(PipelineKind::ImageClassification, &options)
            .into_iter()
            .next()
            .expect("at least the no-fault scenario");
        if let (Some((victim, at_ms)), true) = (kill, workers >= 2) {
            scenario.faults = FaultPlan::new(7).kill_process(
                format!("dataloader{}", victim % workers),
                Time::ZERO + Span::from_millis(at_ms),
            );
        }
        let outcome = run_scheduled(&scenario, &schedule, &options.bounds);
        prop_assert!(
            outcome.violations.is_empty(),
            "{policy:?}: schedule {schedule:?}, kill {kill:?}: ending {:?}, violations {:?}",
            outcome.ending,
            outcome.violations
        );
    }

    /// Seeded loader bugs stay detectable no matter which policy is
    /// dispatching: a lost batch stalls, a premature redispatch breaks
    /// dispatch discipline.
    #[test]
    fn seeded_mutations_are_detected_under_every_policy(
        policy_idx in 0usize..SchedulingPolicyKind::ALL.len(),
        schedule in prop::collection::vec(0usize..4, 0..6),
        lose in any::<bool>(),
    ) {
        let policy = SchedulingPolicyKind::ALL[policy_idx];
        let mut options = quick_options(2);
        options.policy = policy;
        options.mutation = if lose {
            LoaderMutation::LoseBatch { batch_id: 1 }
        } else {
            LoaderMutation::RedispatchLive { batch_id: 1 }
        };
        let scenario = &scenarios(PipelineKind::ImageClassification, &options)[0];
        let outcome = run_scheduled(scenario, &schedule, &options.bounds);
        let detected = if lose {
            outcome
                .violations
                .iter()
                .any(|v| matches!(v, Violation::Stalled { .. }))
        } else {
            outcome.violations.iter().any(|v| matches!(
                v,
                Violation::RedispatchBeforeDeath { .. } | Violation::DoubleDispatch { .. }
            ))
        };
        prop_assert!(
            detected,
            "{policy:?} lose={lose}: schedule {schedule:?}: violations {:?}",
            outcome.violations
        );
    }
}

/// The full explorer over the fault scenario: clean on the unmutated
/// loader, and the counterexample it finds for a seeded bug replays to
/// the identical verdict.
#[test]
fn explorer_is_clean_unmutated_and_counterexamples_replay() {
    let mut options = quick_options(2);
    options.with_faults = true;
    options.bounds.max_schedules = 16;
    for scenario in scenarios(PipelineKind::AudioClassification, &options) {
        let report = check_scenario(&scenario, &options.bounds);
        assert!(
            report.clean(),
            "{}: {:?}",
            scenario.name,
            report.counterexample
        );
    }

    options.mutation = LoaderMutation::LoseBatch { batch_id: 2 };
    let scenario = &scenarios(PipelineKind::AudioClassification, &options)[0];
    let report = check_scenario(scenario, &options.bounds);
    let cx = report.counterexample.expect("seeded bug found");
    let replay_a = run_scheduled(scenario, &cx.schedule, &options.bounds);
    let replay_b = run_scheduled(scenario, &cx.schedule, &options.bounds);
    assert_eq!(replay_a.violations, cx.violations);
    assert_eq!(replay_a.violations, replay_b.violations);
    assert_eq!(
        replay_a.decisions, replay_b.decisions,
        "replays are deterministic"
    );
}

/// A fresh LotusTrace of a faulty run lints clean, directly and after a
/// Chrome-trace round trip; the live gauge series stay within bounds.
#[test]
fn fresh_traces_and_chrome_round_trips_lint_clean() {
    // A mid-epoch kill is survivable with >= 2 workers and exercises the
    // death/redispatch lint rules; IC's paper default is 1 worker and a
    // batch of 128, so shrink to 8 batches of 8 across 2 workers.
    let mut experiment =
        ExperimentConfig::paper_default(PipelineKind::ImageClassification).scaled_to(64);
    experiment.batch_size = 8;
    experiment.num_workers = 2;
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
        per_log_overhead: Span::ZERO,
        op_mode: OpLogMode::Full,
    }));
    let registry = Arc::new(MetricsRegistry::new());
    let mut loader = experiment.loader_defaults();
    loader.data_queue_cap = Some(8);
    let metrics = Arc::new(MetricsSink::with_overhead(
        Arc::clone(&registry),
        loader.num_workers,
        Span::ZERO,
    ));
    let sinks = Arc::new(
        MultiSink::new()
            .with(Arc::clone(&trace) as _)
            .with(Arc::clone(&metrics) as _),
    );
    let faults = FaultPlan::new(experiment.seed)
        .kill_process("dataloader0", Time::ZERO + Span::from_millis(5));
    let report = experiment
        .build_with(&machine, sinks as _, None, loader, faults)
        .run()
        .expect("survivor finishes the epoch");
    assert_eq!(report.batches, 8, "the kill must not end the epoch early");

    let records = trace.records();
    assert!(
        records
            .iter()
            .any(|r| r.kind == lotus::core::trace::SpanKind::WorkerDied),
        "the kill must land mid-epoch so death/redispatch rules are exercised"
    );
    let facts = ReportFacts {
        elapsed: report.elapsed,
        batches: report.batches,
    };
    let findings = lint_records(&records, Some(&facts));
    assert!(findings.is_empty(), "fresh trace: {findings:#?}");

    let doc = to_chrome_trace(&records, ChromeTraceOptions { coarse: false });
    let reimported = from_chrome_trace(&doc).expect("round trip parses");
    let findings = lint_records(&reimported, Some(&facts));
    assert!(findings.is_empty(), "chrome round trip: {findings:#?}");

    let limits = GaugeLimits {
        data_queue_cap: loader.data_queue_cap,
        in_flight_bound: loader.prefetch_factor * loader.num_workers,
    };
    let gauge_findings: Vec<LintFinding> = lint_gauges(&registry.snapshot(), &limits);
    assert!(gauge_findings.is_empty(), "gauges: {gauge_findings:#?}");
}

/// The linter catches seeded corruption: a duplicated delivery, a broken
/// queue-delay identity, and an orphan redispatch mark.
#[test]
fn linter_flags_seeded_trace_corruption() {
    let mut experiment =
        ExperimentConfig::paper_default(PipelineKind::ImageClassification).scaled_to(32);
    experiment.batch_size = 8;
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
        per_log_overhead: Span::ZERO,
        op_mode: OpLogMode::Full,
    }));
    experiment
        .build(&machine, Arc::clone(&trace) as _, None)
        .run()
        .expect("clean run");
    let records = trace.records();
    assert!(lint_records(&records, None).is_empty());

    use lotus::core::trace::SpanKind;
    // Duplicate a delivery.
    let mut corrupted = records.clone();
    let wait = corrupted
        .iter()
        .find(|r| r.kind == SpanKind::BatchWait)
        .expect("some wait")
        .clone();
    corrupted.push(wait);
    assert!(!lint_records(&corrupted, None).is_empty());

    // Break the queue-delay arithmetic.
    let mut corrupted = records.clone();
    let wait = corrupted
        .iter_mut()
        .find(|r| r.kind == SpanKind::BatchWait)
        .expect("some wait");
    wait.queue_delay += Span::from_nanos(1);
    assert!(!lint_records(&corrupted, None).is_empty());

    // An orphan redispatch mark with no preceding death.
    let mut corrupted = records.clone();
    let mut mark = corrupted[0].clone();
    mark.kind = SpanKind::BatchRedispatched;
    corrupted.insert(0, mark);
    assert!(!lint_records(&corrupted, None).is_empty());
}
