//! Sim-vs-native protocol parity: the native execution backend must
//! produce wall-clock LotusTraces that satisfy every invariant the trace
//! linter enforces on simulated runs, conserve samples under worker
//! death, and land in the same bottleneck family as the simulation.
//!
//! Every assertion here is structural — counts, ordering, conservation,
//! lint cleanliness — never an absolute duration: wall-clock numbers
//! vary run to run and machine to machine, the protocol shape does not.

use std::collections::BTreeSet;

use lotus::core::check::{lint_records, ReportFacts};
use lotus::core::metrics::names;
use lotus::core::trace::SpanKind;
use lotus::dataflow::FaultPlan;
use lotus::running::{run_experiment, verdict_family, RunOptions, RunOutcome};
use lotus::sim::{Span, Time};
use lotus::workloads::{ExperimentConfig, PipelineKind};

fn small_ic(items: u64, workers: usize) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
    config.batch_size = 16;
    config.num_workers = workers;
    config.scaled_to(items)
}

/// Fast native run: real threads and real queues, cost-only payloads
/// (materialization exercises the kernels, not the protocol, and the
/// protocol is what these tests pin down).
fn native_protocol_run(config: &ExperimentConfig, faults: FaultPlan) -> RunOutcome {
    let mut options = RunOptions::native();
    options.materialize = false;
    options.status_check = Span::from_millis(5);
    options.faults = faults;
    run_experiment(config, &options).expect("native run failed")
}

fn assert_lints_clean(outcome: &RunOutcome) {
    let facts = ReportFacts {
        elapsed: outcome.report.elapsed,
        batches: outcome.report.batches,
    };
    let findings = lint_records(&outcome.trace.records(), Some(&facts));
    assert!(
        findings.is_empty(),
        "native trace must pass every lint invariant, got: {findings:#?}"
    );
}

#[test]
fn native_trace_passes_every_lint_invariant() {
    let config = small_ic(96, 2);
    let outcome = native_protocol_run(&config, FaultPlan::default());
    assert_eq!(outcome.report.batches, 6);
    assert_eq!(outcome.report.samples, 96);
    assert_lints_clean(&outcome);
}

#[test]
fn native_materialized_trace_passes_every_lint_invariant() {
    // Real pixels through the codec and transform kernels, small enough
    // for a debug-build test run.
    let config = small_ic(32, 2);
    let mut options = RunOptions::native();
    options.status_check = Span::from_millis(5);
    let outcome = run_experiment(&config, &options).expect("native run failed");
    assert_eq!(outcome.report.batches, 2);
    assert_lints_clean(&outcome);
}

#[test]
fn native_run_consumes_every_batch_exactly_once_in_order() {
    let config = small_ic(128, 3);
    let outcome = native_protocol_run(&config, FaultPlan::default());
    let records = outcome.trace.records();

    let consumed: Vec<u64> = records
        .iter()
        .filter(|r| r.kind == SpanKind::BatchConsumed)
        .map(|r| r.batch_id)
        .collect();
    let expected: Vec<u64> = (0..outcome.report.batches).collect();
    assert_eq!(
        consumed, expected,
        "batches must be consumed exactly once each, in order"
    );

    // Sample conservation: every batch was fetched by exactly one worker.
    let fetched: Vec<u64> = records
        .iter()
        .filter(|r| r.kind == SpanKind::BatchPreprocessed)
        .map(|r| r.batch_id)
        .collect();
    let unique: BTreeSet<u64> = fetched.iter().copied().collect();
    assert_eq!(fetched.len(), unique.len(), "no batch fetched twice");
    assert_eq!(unique, expected.iter().copied().collect());
}

#[test]
fn native_worker_death_redispatches_and_still_lints_clean() {
    let config = small_ic(128, 2);
    let faults = FaultPlan::new(config.seed)
        .kill_process("dataloader1".to_string(), Time::ZERO + Span::from_millis(1));
    let outcome = native_protocol_run(&config, faults);

    // Conservation survives the death: the survivor picks up the orphans.
    assert_eq!(outcome.report.batches, 8);
    assert_eq!(outcome.report.samples, 128);

    let records = outcome.trace.records();
    let died = records
        .iter()
        .filter(|r| r.kind == SpanKind::WorkerDied)
        .count();
    assert_eq!(died, 1, "exactly one worker death observed");
    // The dead worker had dispatched-but-unfinished batches; each one
    // must carry a redispatch instant before its (single) consume.
    let redispatched = records
        .iter()
        .filter(|r| r.kind == SpanKind::BatchRedispatched)
        .count();
    assert!(redispatched > 0, "orphaned batches must be redispatched");
    assert_lints_clean(&outcome);
}

#[test]
fn simulated_verdict_family_predicts_the_native_one() {
    // The cross-validation the bench job relies on: the simulation's
    // bottleneck *family* (input-bound vs accelerator-bound) must match
    // what a real-thread run of the same configuration measures. IC with
    // paper defaults starves the accelerator in both worlds.
    let config = small_ic(64, 2);
    let sim = run_experiment(&config, &RunOptions::sim()).expect("sim run failed");

    let mut options = RunOptions::native();
    options.status_check = Span::from_millis(5);
    let native = run_experiment(&config, &options).expect("native run failed");

    assert_eq!(sim.report.batches, native.report.batches);
    assert_eq!(sim.report.samples, native.report.samples);
    let (sim_family, native_family) = (
        verdict_family(&sim.scorecard),
        verdict_family(&native.scorecard),
    );
    assert_eq!(
        sim_family, native_family,
        "sim verdict {:?} vs native verdict {:?}",
        sim.scorecard.verdict, native.scorecard.verdict
    );
    assert_eq!(sim_family, "input-bound");
}

#[test]
fn native_gauges_carry_wall_clock_timestamps_from_the_shared_clock() {
    // Satellite check for `lotus top --backend native`: queue-depth and
    // in-flight gauges must be stamped by the run's shared wall clock —
    // timestamps strictly inside [0, elapsed], monotone per series.
    let config = small_ic(96, 2);
    let outcome = native_protocol_run(&config, FaultPlan::default());
    let elapsed = outcome.report.elapsed;

    let gauges = &outcome.measurement.snapshot.gauges;
    let data_queue = format!("{}data_queue", names::QUEUE_DEPTH_PREFIX);
    for name in [data_queue.as_str(), "in_flight_batches"] {
        let series = gauges
            .get(name)
            .unwrap_or_else(|| panic!("native run must emit the `{name}` gauge"));
        assert!(!series.samples().is_empty());
        let mut last = Time::ZERO;
        for &(at, value) in series.samples() {
            assert!(at >= last, "gauge `{name}` timestamps must be monotone");
            assert!(
                at <= Time::ZERO + elapsed,
                "gauge `{name}` stamped past the run's elapsed time"
            );
            assert!(value >= 0.0);
            last = at;
        }
    }
    // The in-flight gauge is bounded by the dispatch discipline:
    // prefetch_factor × workers outstanding batches, never more.
    let loader = config.loader_defaults();
    let bound = (loader.prefetch_factor * loader.num_workers) as f64;
    let peak = gauges["in_flight_batches"]
        .samples()
        .iter()
        .fold(0.0f64, |m, &(_, v)| m.max(v));
    assert!(
        peak <= bound,
        "in-flight batches peaked at {peak}, above the dispatch bound {bound}"
    );
}

#[test]
fn native_trace_log_round_trips_and_lints_via_the_text_format() {
    // What `lotus run --log FILE` writes is exactly what
    // `lotus check --trace FILE` reads; the round trip must stay clean.
    let config = small_ic(64, 2);
    let outcome = native_protocol_run(&config, FaultPlan::default());
    let text = outcome.trace.to_log_string();
    let parsed: Vec<_> = text
        .lines()
        .map(|l| {
            lotus::core::trace::TraceRecord::parse_log_line(l).expect("every emitted line parses")
        })
        .collect();
    assert_eq!(parsed.len(), outcome.trace.len());
    let findings = lint_records(&parsed, None);
    assert!(
        findings.is_empty(),
        "round-tripped log must lint clean: {findings:#?}"
    );
}
