//! Integration tests for the streaming metrics layer: a seeded
//! fault-injected TrainingJob streams through the sink fan-out into the
//! registry, counter totals match the trace-record ground truth, the
//! exporters are byte-deterministic across identical runs, the no-sink
//! configuration charges exactly zero, and the dashboard renders.

use std::sync::Arc;

use lotus::core::metrics::{
    names, render_dashboard, sparkline, to_csv, to_json, to_prometheus, DashboardOptions,
    MetricsRegistry, MetricsSink, MultiSink,
};
use lotus::core::trace::analysis::{fault_forensics, fault_summary};
use lotus::core::trace::{LotusTrace, SpanKind};
use lotus::data::DType;
use lotus::dataflow::{
    worker_os_pid, DataLoaderConfig, Dataset, FaultPlan, GpuConfig, JobError, JobReport,
    LoaderMutation, NullTracer, Sampler, SchedulingPolicyKind, Tracer, TrainingJob,
};
use lotus::sim::{Span, Time};
use lotus::transforms::{PipelineError, Sample, TransformCtx, TransformObserver};
use lotus::uarch::{CostCoeffs, KernelId, Machine, MachineConfig};

/// A dataset with fixed per-item decode cost, enough to keep workers busy.
struct StubDataset {
    len: u64,
    work_per_item: f64,
    kernel: KernelId,
}

impl StubDataset {
    fn new(machine: &Machine, len: u64, work_per_item: f64) -> StubDataset {
        StubDataset {
            len,
            work_per_item,
            kernel: machine.kernel("stub_decode", "libstub.so", CostCoeffs::compute_default()),
        }
    }
}

impl Dataset for StubDataset {
    fn len(&self) -> u64 {
        self.len
    }

    fn get_item(
        &self,
        index: u64,
        ctx: &mut TransformCtx<'_>,
        observer: &mut dyn TransformObserver,
    ) -> Result<Sample, PipelineError> {
        let start = ctx.cpu.cursor();
        let work = self.work_per_item * (1.0 + (index % 5) as f64 / 2.0);
        ctx.cpu.exec(self.kernel, work);
        observer.on_transform("Loader", start, ctx.cpu.cursor().since(start));
        Ok(Sample::tensor_meta(&[3, 16, 16], DType::F32))
    }
}

const WORKERS: usize = 4;

fn job(machine: &Arc<Machine>, tracer: Arc<dyn Tracer>, faults: FaultPlan) -> TrainingJob {
    TrainingJob {
        machine: Arc::clone(machine),
        dataset: Arc::new(StubDataset::new(machine, 256, 400_000.0)),
        storage: None,
        loader: DataLoaderConfig {
            batch_size: 8,
            num_workers: WORKERS,
            prefetch_factor: 2,
            data_queue_cap: None,
            pin_memory: true,
            sampler: Sampler::Sequential,
            drop_last: true,
            policy: SchedulingPolicyKind::RoundRobin,
        },
        gpu: GpuConfig::v100(1, Span::from_micros(100)),
        tracer,
        hw_profiler: None,
        seed: 11,
        epochs: 1,
        faults,
        controller: None,
        mutation: LoaderMutation::None,
    }
}

struct StreamedRun {
    trace: Arc<LotusTrace>,
    registry: Arc<MetricsRegistry>,
    sinks: Arc<MultiSink>,
    report: JobReport,
}

/// Runs the stub job under the full sink stack (log + metrics).
fn streamed_run(faults: FaultPlan) -> Result<StreamedRun, JobError> {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let trace = Arc::new(LotusTrace::new());
    let registry = Arc::new(MetricsRegistry::new());
    let metrics = Arc::new(MetricsSink::new(Arc::clone(&registry), WORKERS));
    let sinks = Arc::new(
        MultiSink::new()
            .with(Arc::clone(&trace) as _)
            .with(Arc::clone(&metrics) as _),
    );
    let report = job(&machine, Arc::clone(&sinks) as _, faults).run()?;
    Ok(StreamedRun {
        trace,
        registry,
        sinks,
        report,
    })
}

/// A kill plan targeting mid-epoch of the fault-free baseline.
fn mid_epoch_kill() -> FaultPlan {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let baseline = job(&machine, Arc::new(NullTracer) as _, FaultPlan::default())
        .run()
        .expect("fault-free baseline succeeds");
    FaultPlan::new(11).kill_process("dataloader1", Time::ZERO + baseline.elapsed.mul_f64(0.5))
}

#[test]
fn counters_match_trace_ground_truth_for_fault_injected_run() {
    let run = streamed_run(mid_epoch_kill()).expect("survivors finish the epoch");
    let records = run.trace.records();
    let count = |kind: SpanKind| records.iter().filter(|r| r.kind == kind).count() as u64;

    let r = &run.registry;
    assert_eq!(
        r.counter(names::BATCHES_PRODUCED),
        count(SpanKind::BatchPreprocessed)
    );
    assert_eq!(r.counter(names::BATCHES_CONSUMED), run.report.batches);
    assert_eq!(
        r.counter(names::BATCHES_CONSUMED),
        count(SpanKind::BatchConsumed)
    );
    assert_eq!(r.counter(names::SAMPLES_CONSUMED), run.report.samples);
    assert_eq!(r.counter(names::WORKER_DEATHS), count(SpanKind::WorkerDied));
    assert_eq!(
        r.counter(names::REDISPATCHES),
        count(SpanKind::BatchRedispatched)
    );
    assert!(r.counter(names::WORKER_DEATHS) >= 1, "the kill landed");
    let ops: u64 = records
        .iter()
        .filter(|rec| matches!(rec.kind, SpanKind::Op(_)))
        .count() as u64;
    assert_eq!(r.counter(names::OPS), ops);

    // Per-worker busy time equals the sum of that worker's fetch spans.
    for w in 0..WORKERS {
        let pid = worker_os_pid(w);
        let busy: u64 = records
            .iter()
            .filter(|rec| rec.kind == SpanKind::BatchPreprocessed && rec.pid == pid)
            .map(|rec| rec.duration.as_nanos())
            .sum();
        assert_eq!(r.counter(&names::worker_busy(pid)), busy);
    }

    // T2 histogram count equals the number of waits in the log.
    assert_eq!(
        r.latency_summary_ms(names::T2_WAIT).count as u64,
        count(SpanKind::BatchWait)
    );

    // The live-workers series steps down from the full crew.
    let live = r.gauge(names::LIVE_WORKERS).expect("live_workers recorded");
    assert_eq!(live.samples()[0], (Time::ZERO, WORKERS as f64));
    assert_eq!(live.last(), Some(WORKERS as f64 - 1.0));

    // Forensics joins: the death is annotated from the gauge series.
    let forensics = fault_forensics(&records, &r.snapshot());
    assert_eq!(
        forensics.deaths.len() as u64,
        r.counter(names::WORKER_DEATHS)
    );
    assert_eq!(
        forensics.deaths[0].live_workers_after,
        Some(WORKERS as f64 - 1.0)
    );
    for red in &forensics.redispatches {
        let latency = red.latency_after_death.expect("death precedes redispatch");
        assert!(latency < Span::from_secs(1), "orphans re-sent promptly");
    }
    assert_eq!(
        fault_summary(&records).redispatched.len(),
        forensics.redispatches.len()
    );
}

#[test]
fn identical_seeded_runs_export_byte_identical_metrics() {
    let faults = mid_epoch_kill();
    let a = streamed_run(faults.clone()).expect("first run");
    let b = streamed_run(faults).expect("second run");
    let (snap_a, snap_b) = (a.registry.snapshot(), b.registry.snapshot());
    assert_eq!(to_prometheus(&snap_a), to_prometheus(&snap_b));
    assert_eq!(to_json(&snap_a), to_json(&snap_b));
    assert_eq!(to_csv(&snap_a), to_csv(&snap_b));
    assert_eq!(
        render_dashboard(&snap_a, DashboardOptions::default()),
        render_dashboard(&snap_b, DashboardOptions::default())
    );
    assert_eq!(a.report.elapsed, b.report.elapsed);
}

#[test]
fn empty_multi_sink_has_null_tracer_parity() {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let null_report = job(&machine, Arc::new(NullTracer) as _, FaultPlan::default())
        .run()
        .expect("null run");
    let empty = Arc::new(MultiSink::new());
    let empty_report = job(&machine, Arc::clone(&empty) as _, FaultPlan::default())
        .run()
        .expect("empty-sink run");
    // No sinks registered: exactly zero charged, bit-identical timing.
    assert_eq!(null_report.elapsed, empty_report.elapsed);
    assert_eq!(null_report.batches, empty_report.batches);
    assert!(empty.overheads().is_empty());
}

#[test]
fn each_sink_self_accounts_its_overhead() {
    let run = streamed_run(FaultPlan::default()).expect("clean run");
    let overheads = run.sinks.overheads();
    assert_eq!(overheads.len(), 2);
    let (ref log_name, log_charged) = overheads[0];
    let (ref metrics_name, metrics_charged) = overheads[1];
    assert_eq!(log_name, "lotus-trace");
    assert_eq!(metrics_name, "metrics");
    assert_eq!(log_charged, run.trace.charged_overhead());
    let events = run.trace.len() as u64; // every record came through the fan-out
    assert_eq!(
        metrics_charged,
        MetricsSink::DEFAULT_PER_EVENT_OVERHEAD * events,
        "metrics charge per event; gauge samples are free by default"
    );
    assert!(!log_charged.is_zero());
}

#[test]
fn sampler_gauges_export_with_escaped_thread_labels() {
    let registry = MetricsRegistry::new();
    // Thread names out of /proc/self/task/*/comm can carry dots,
    // slashes and backslashes (e.g. "tokio.rt/w-0"); they must land
    // inside the label VALUE — escaped where the exposition format
    // demands — and never split the family name.
    for name in ["dataloader0", "tokio.rt/w-0", "io\\wq-1"] {
        registry.set_gauge(&format!("sampler_thread_cpu_ns.{name}"), Time::ZERO, 1e6);
        registry.set_gauge(
            &format!("sampler_ctx_switches_voluntary.{name}"),
            Time::ZERO,
            2.0,
        );
        registry.set_gauge(
            &format!("sampler_ctx_switches_involuntary.{name}"),
            Time::ZERO,
            3.0,
        );
    }
    registry.set_gauge("sampler_rss_kb", Time::ZERO, 2048.0);
    let text = to_prometheus(&registry.snapshot());
    assert!(text.contains("lotus_sampler_thread_cpu_ns{thread=\"dataloader0\"} 1000000"));
    assert!(text.contains("lotus_sampler_thread_cpu_ns{thread=\"tokio.rt/w-0\"} 1000000"));
    assert!(text.contains("lotus_sampler_ctx_switches_voluntary{thread=\"io\\\\wq-1\"} 2"));
    assert!(text.contains("lotus_sampler_rss_kb 2048"));
    for family in [
        "sampler_thread_cpu_ns",
        "sampler_ctx_switches_voluntary",
        "sampler_ctx_switches_involuntary",
        "sampler_rss_kb",
    ] {
        assert_eq!(
            text.matches(&format!("# TYPE lotus_{family} gauge"))
                .count(),
            1,
            "exactly one TYPE line for {family}"
        );
    }
}

#[cfg(target_os = "linux")]
#[test]
fn real_sampler_ticks_flow_through_the_prometheus_exporter() {
    use lotus::profilers::{NativeSampler, SamplerConfig};

    let mut sampler = NativeSampler::new(SamplerConfig {
        tick: Span::from_millis(2),
    });
    sampler.start();
    std::thread::sleep(std::time::Duration::from_millis(20));
    sampler.stop();
    let registry = MetricsRegistry::new();
    sampler.gauges_into(&registry);
    let text = to_prometheus(&registry.snapshot());
    assert!(
        text.contains("lotus_sampler_rss_kb"),
        "RSS gauge exported: {text}"
    );
    assert!(
        text.contains("lotus_sampler_thread_cpu_ns{thread=\""),
        "per-thread CPU gauges labelled by thread: {text}"
    );
}

#[test]
fn dashboard_renders_queue_depth_utilization_and_throughput() {
    let run = streamed_run(mid_epoch_kill()).expect("faulty run");
    let out = render_dashboard(&run.registry.snapshot(), DashboardOptions { width: 32 });
    assert!(out.starts_with("lotus top — virtual time t+"));
    assert!(out.contains("queue depth"));
    assert!(out.contains("data_queue"));
    assert!(out.contains("index_queue_0"));
    assert!(out.contains("in_flight_batches"));
    assert!(out.contains("worker utilization"));
    assert!(out.contains(&format!("worker {}", worker_os_pid(0))));
    assert!(out.contains("throughput"));
    assert!(out.contains("batches ("));
    assert!(out.contains("t1 fetch: p50"));
    assert!(out.contains("worker deaths"));
    // Sparklines are exactly as wide as requested.
    let spark_line = out
        .lines()
        .find(|l| l.trim_start().starts_with("data_queue"))
        .expect("data_queue row");
    let sparks: usize = spark_line
        .chars()
        .filter(|c| ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'].contains(c))
        .count();
    assert_eq!(sparks, 32);

    // The data-queue series itself renders standalone too.
    let series = run
        .registry
        .gauge("queue_depth.data_queue")
        .expect("data queue sampled");
    assert_eq!(
        sparkline(&series, run.registry.snapshot().horizon(), 10)
            .chars()
            .count(),
        10
    );
}
