//! Integration tests for `lotus audit`: clean native runs audit clean
//! under every scheduling policy, every seeded backend mutation is
//! flagged with the expected finding kind, the detached feed stays
//! zero-cost, and the bounded model exploration catches every modelled
//! bug while passing the clean protocol.

use std::sync::Arc;

use lotus::auditing::{audit_run, minimized_window, AuditOptions};
use lotus::core::check::{
    analyze, explore_native_model, run_model, AuditSpec, ExploreBounds, ModelBug, ModelConfig,
};
use lotus::dataflow::{
    AuditFeed, AuditMutation, ExecutionBackend, NativeBackend, NativeOptions, NullTracer,
    SchedulingPolicyKind,
};
use lotus::sim::Span;
use lotus::uarch::{Machine, MachineConfig};
use lotus::workloads::{ExperimentConfig, PipelineKind};

fn options() -> AuditOptions {
    AuditOptions {
        items: 32,
        ..AuditOptions::default()
    }
}

/// The acceptance matrix: IC/AC/IS native runs audit clean under every
/// scheduling policy.
#[test]
fn clean_matrix_audits_clean_under_every_policy() {
    for kind in [
        PipelineKind::ImageClassification,
        PipelineKind::AudioClassification,
        PipelineKind::ImageSegmentation,
    ] {
        for policy in SchedulingPolicyKind::ALL {
            let run = audit_run(kind, policy, &options()).unwrap();
            assert!(
                run.report.clean(),
                "{}: clean run flagged: {:?}",
                run.name,
                run.report.findings
            );
            assert!(run.report.stats.events > 0, "{}: no events", run.name);
            assert!(run.batches > 0, "{}: no batches", run.name);
        }
    }
}

/// Every seeded backend mutation is flagged with its expected finding
/// kind, and the minimizer shrinks the counterexample window.
#[test]
fn every_seeded_mutation_is_flagged() {
    for (mutation, expected) in [
        (AuditMutation::SkipNotify, "missed-wake"),
        (AuditMutation::ReleaseRecheck, "ungated-commit"),
        (AuditMutation::LockOrder, "lock-cycle"),
    ] {
        let run = audit_run(
            PipelineKind::ImageClassification,
            SchedulingPolicyKind::RoundRobin,
            &AuditOptions {
                mutation,
                ..options()
            },
        )
        .unwrap();
        assert!(
            run.report.findings.iter().any(|f| f.kind() == expected),
            "{} escaped: {:?}",
            mutation.as_str(),
            run.report.findings
        );
        let window = minimized_window(&run).expect("flagged run yields a window");
        assert!(!window.is_empty());
        assert!(
            window.len() < run.events.len(),
            "{}: window did not shrink ({} events)",
            mutation.as_str(),
            window.len()
        );
        // The window is self-contained: re-analyzing it reproduces a
        // finding of the same kind.
        let again = analyze(&window, &AuditSpec::native_backend());
        assert!(again.findings.iter().any(|f| f.kind() == expected));
    }
}

/// A detached feed records nothing and charges nothing — the audit
/// instrumentation is zero-cost when switched off.
#[test]
fn detached_feed_is_free() {
    let mut config = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
    config.batch_size = 4;
    config.num_workers = 2;
    let config = config.scaled_to(32);
    let loader = config.loader_defaults();
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let job = config.build_with(
        &machine,
        Arc::new(NullTracer) as _,
        None,
        loader,
        lotus::dataflow::FaultPlan::default(),
    );
    let feed = Arc::new(AuditFeed::new());
    feed.detach();
    NativeBackend::new(NativeOptions {
        status_check: Span::from_millis(20),
        emulate_gpu: false,
    })
    .with_audit(Arc::clone(&feed))
    .run(job)
    .unwrap();
    assert!(feed.is_empty());
    assert_eq!(feed.overhead_ns(), 0);
}

/// The bounded model exploration passes the clean protocol and catches
/// every modelled bug; counterexample schedules replay to the same
/// verdict.
#[test]
fn model_exploration_catches_every_bug_and_passes_clean() {
    let bounds = ExploreBounds {
        max_schedules: 2_000,
        max_depth: 96,
        ..ExploreBounds::default()
    };
    let clean = explore_native_model(&ModelConfig::default(), &bounds);
    assert!(
        clean.clean(),
        "clean model flagged: {:?}",
        clean.counterexample
    );

    for bug in ModelBug::ALL {
        let cfg = ModelConfig {
            bug,
            ..ModelConfig::default()
        };
        let report = explore_native_model(&cfg, &bounds);
        let cx = report
            .counterexample
            .unwrap_or_else(|| panic!("{} escaped the model explorer", bug.as_str()));
        assert!(!cx.violations.is_empty());
        let replay = run_model(&cfg, &cx.schedule);
        assert!(
            !replay.violations.is_empty(),
            "{}: counterexample schedule did not replay",
            bug.as_str()
        );
    }
}
