//! Integration tests for the audio-classification extension: the real
//! DSP path end to end, and the declarative pipeline under LotusTrace.

use std::sync::Arc;

use lotus::core::trace::insights::{analyze, Verdict};
use lotus::core::trace::LotusTrace;
use lotus::data::{AudioDatasetModel, Tensor};
use lotus::dataflow::{GpuConfig, Pipeline, Source};
use lotus::sim::Span;
use lotus::transforms::{
    MelSpectrogram, PadTrim, Resample, Sample, SpecAugment, Transform, TransformCtx,
};
use lotus::uarch::{CpuThread, Machine, MachineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A materialized clip runs through the full real transform chain:
/// resample → pad → mel spectrogram, with real numbers all the way.
#[test]
fn real_waveform_flows_through_the_whole_chain() {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let model = AudioDatasetModel::audioset(11).truncated(4);
    let record = model.record(2);
    let waveform = record.materialize();
    let sample = Sample::tensor(Tensor::from_f32(&[waveform.len()], waveform));

    let mut cpu = CpuThread::new(Arc::clone(&machine));
    let mut rng = StdRng::seed_from_u64(1);
    let mut ctx = TransformCtx {
        cpu: &mut cpu,
        rng: &mut rng,
    };

    let resample = Resample::new(&machine, 22_050, 16_000);
    let pad = PadTrim::new(&machine, 64_000);
    let mel = MelSpectrogram::new(&machine, 16_000, 1024, 512, 64);
    let aug = SpecAugment::new(&machine, 16, 8);

    let resampled = resample.apply(sample, &mut ctx).unwrap();
    let padded = pad.apply(resampled, &mut ctx).unwrap();
    let spectrogram = mel.apply(padded, &mut ctx).unwrap();
    let out = aug.apply(spectrogram, &mut ctx).unwrap();
    let Sample::Tensor {
        shape,
        data: Some(features),
        ..
    } = out
    else {
        panic!("expected materialized features");
    };
    assert_eq!(shape[0], 64);
    assert_eq!(shape[1], mel.frames_for(64_000));
    let values = features.as_f32();
    assert!(
        values.iter().any(|&v| v > 0.0),
        "tonal content must produce energy"
    );
    assert!(values.iter().all(|&v| v.is_finite()));
}

/// The AC pipeline under the declarative builder, traced end to end:
/// stage records for every declared stage, and a sane diagnosis.
#[test]
fn declared_audio_pipeline_traces_and_diagnoses() {
    struct Clips {
        model: AudioDatasetModel,
    }
    impl Source for Clips {
        fn len(&self) -> u64 {
            self.model.len()
        }
        fn load(&self, index: u64, ctx: &mut TransformCtx<'_>) -> Sample {
            let r = self.model.record(index);
            ctx.cpu.idle(Span::from_micros(200));
            Sample::tensor_meta(&[r.samples as usize], lotus::data::DType::F32)
        }
    }

    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let trace = Arc::new(LotusTrace::new());
    let report = Pipeline::from_source(Arc::new(Clips {
        model: AudioDatasetModel::audioset(3).truncated(512),
    }))
    .map(Box::new(Resample::new(&machine, 22_050, 16_000)))
    .map(Box::new(PadTrim::new(&machine, 64_000)))
    .map(Box::new(MelSpectrogram::new(
        &machine, 16_000, 1024, 512, 64,
    )))
    .batch(32)
    .workers(2)
    .shuffle(9)
    .build_job_with(
        &machine,
        GpuConfig::v100(1, Span::from_micros(1_200)),
        Arc::clone(&trace) as _,
    )
    .run()
    .unwrap();
    assert_eq!(report.batches, 16);

    let ops: Vec<String> = trace.op_stats().into_iter().map(|o| o.name).collect();
    for expected in ["Loader", "Resample", "PadTrim", "MelSpectrogram", "C(32)"] {
        assert!(
            ops.contains(&expected.to_string()),
            "{expected} missing from {ops:?}"
        );
    }
    let insights = analyze(&trace.records());
    assert_ne!(
        insights.verdict,
        Verdict::PreprocessingBound,
        "light source → not CPU-bound"
    );
    assert!(!insights.recommendations.is_empty());
}

/// Multi-epoch training over a workload pipeline keeps per-epoch
/// statistics consistent.
#[test]
fn multi_epoch_ic_run_scales_linearly() {
    use lotus::workloads::{ExperimentConfig, PipelineKind};
    let run_epochs = |epochs: usize| {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let mut job = ExperimentConfig::paper_default(PipelineKind::ImageClassification)
            .scaled_to(1_024)
            .build(&machine, Arc::new(lotus::dataflow::NullTracer), None);
        job.epochs = epochs;
        job.run().unwrap()
    };
    let one = run_epochs(1);
    let three = run_epochs(3);
    assert_eq!(three.batches, 3 * one.batches);
    assert_eq!(three.samples, 3 * one.samples);
    let ratio = three.elapsed.as_secs_f64() / one.elapsed.as_secs_f64();
    assert!((2.5..3.5).contains(&ratio), "elapsed ratio {ratio}");
}
