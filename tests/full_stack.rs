//! Cross-crate integration tests: the full Lotus flow (trace → map →
//! attribute), determinism, and log/visualization round trips.

use std::collections::BTreeMap;
use std::sync::Arc;

use lotus::core::map::{split_metrics, IsolationConfig};
use lotus::core::trace::analysis::{batch_timelines, per_op_stats};
use lotus::core::trace::chrome::{merge_traces, to_chrome_trace, ChromeTraceOptions};
use lotus::core::trace::{LotusTrace, LotusTraceConfig, OpLogMode, TraceRecord};
use lotus::sim::Span;
use lotus::uarch::{CollectionMode, HwProfiler, Machine, MachineConfig, ProfilerConfig};
use lotus::workloads::{build_ic_mapping, ExperimentConfig, PipelineKind};

fn traced_run(items: u64, seed: u64) -> (Arc<LotusTrace>, lotus::dataflow::JobReport) {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let trace = Arc::new(LotusTrace::new());
    let mut config =
        ExperimentConfig::paper_default(PipelineKind::ImageClassification).scaled_to(items);
    config.seed = seed;
    let report = config
        .build(&machine, Arc::clone(&trace) as _, None)
        .run()
        .unwrap();
    (trace, report)
}

#[test]
fn identical_configurations_produce_identical_traces() {
    let (a, ra) = traced_run(1_024, 7);
    let (b, rb) = traced_run(1_024, 7);
    assert_eq!(ra, rb);
    assert_eq!(
        a.records(),
        b.records(),
        "virtual-time traces must be bit-identical"
    );
}

#[test]
fn different_seeds_produce_different_traces() {
    let (a, _) = traced_run(1_024, 7);
    let (b, _) = traced_run(1_024, 8);
    assert_ne!(a.records(), b.records());
}

#[test]
fn log_lines_round_trip_through_the_text_format() {
    let (trace, _) = traced_run(512, 3);
    let text = trace.to_log_string();
    let parsed: Vec<TraceRecord> = text
        .lines()
        .map(|l| TraceRecord::parse_log_line(l).expect("every emitted line parses"))
        .collect();
    assert_eq!(parsed.len(), trace.len());
    // Batch-level analysis is identical on the parsed records.
    let original = batch_timelines(&trace.records());
    let reparsed = batch_timelines(&parsed);
    assert_eq!(original.len(), reparsed.len());
    for (o, r) in original.iter().zip(&reparsed) {
        assert_eq!(o.preprocessed, r.preprocessed);
        assert_eq!(o.wait, r.wait);
    }
}

#[test]
fn chrome_export_merges_with_a_pytorch_profiler_trace() {
    let (trace, _) = traced_run(512, 3);
    let lotus_doc = to_chrome_trace(&trace.records(), ChromeTraceOptions { coarse: true });
    let torch_doc = serde_json::json!({
        "traceEvents": serde_json::json!([serde_json::json!({
            "name": "aten::convolution", "ph": "X", "ts": 100.0, "dur": 5.0, "pid": 1, "tid": 1, "id": 17
        })])
    });
    let merged = merge_traces(&torch_doc, &lotus_doc).expect("both documents well-formed");
    let events = merged["traceEvents"].as_array().unwrap();
    let has_torch = events.iter().any(|e| e["name"] == "aten::convolution");
    let has_lotus = events.iter().any(|e| {
        e["name"]
            .as_str()
            .is_some_and(|n| n.starts_with("SBatchPreprocessed"))
    });
    assert!(has_torch && has_lotus);
    // No id collisions: Lotus ids negative, PyTorch ids positive.
    for e in events {
        if let Some(id) = e.get("id").and_then(serde_json::Value::as_i64) {
            let name = e["name"].as_str().unwrap_or("");
            if name.starts_with('S') || name.contains("flow") {
                assert!(id < 0, "lotus event {name} has non-negative id {id}");
            }
        }
    }
}

#[test]
fn trace_map_attribute_flow_is_consistent() {
    // One machine hosts the mapping, the traced+profiled run, and the
    // attribution — the full §V-D case study in miniature.
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let mapping = build_ic_mapping(
        &machine,
        IsolationConfig {
            runs_override: Some(30),
            ..IsolationConfig::default()
        },
    );
    let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
        op_mode: OpLogMode::Aggregate,
        ..LotusTraceConfig::default()
    }));
    let hw = Arc::new(HwProfiler::new(ProfilerConfig {
        sampling_interval: Span::from_millis(10),
        skid: Span::from_micros(120),
        mode: CollectionMode::Sampling,
        start_paused: false,
    }));
    ExperimentConfig::paper_default(PipelineKind::ImageClassification)
        .scaled_to(4_096)
        .build(&machine, Arc::clone(&trace) as _, Some(Arc::clone(&hw)))
        .run()
        .unwrap();

    let op_times: BTreeMap<String, Span> = trace
        .op_stats()
        .iter()
        .map(|o| (o.name.clone(), o.total_cpu))
        .collect();
    let profile = hw.report(&machine);
    assert!(
        profile.len() >= 20,
        "the profile should contain the function zoo"
    );
    let split = split_metrics(&profile, &mapping, &op_times);

    // Attributed CPU cannot exceed what the profiler collected.
    let attributed: f64 = split.iter().map(|o| o.cpu_time.as_secs_f64()).sum();
    let collected: f64 = profile.iter().map(|r| r.stats.cpu_time.as_secs_f64()).sum();
    assert!(
        attributed <= collected + 1e-6,
        "{attributed} vs {collected}"
    );
    assert!(
        attributed > 0.3 * collected,
        "most CPU belongs to preprocessing"
    );

    // Loader dominates, matching its Table II elapsed-time share.
    let cpu = |op: &str| {
        split
            .iter()
            .find(|o| o.op == op)
            .map_or(0.0, |o| o.cpu_time.as_secs_f64())
    };
    assert!(cpu("Loader") > cpu("RandomResizedCrop"));
    assert!(cpu("RandomResizedCrop") > cpu("RandomHorizontalFlip"));
}

#[test]
fn aggregate_and_full_op_modes_agree_end_to_end() {
    let run = |mode: OpLogMode| {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
            op_mode: mode,
            ..LotusTraceConfig::default()
        }));
        ExperimentConfig::paper_default(PipelineKind::ImageClassification)
            .scaled_to(2_048)
            .build(&machine, Arc::clone(&trace) as _, None)
            .run()
            .unwrap();
        trace
    };
    let full = run(OpLogMode::Full);
    let agg = run(OpLogMode::Aggregate);
    let full_stats = per_op_stats(&full.records());
    let agg_stats = agg.op_stats();
    assert_eq!(full_stats.len(), agg_stats.len());
    for (f, a) in full_stats.iter().zip(&agg_stats) {
        assert_eq!(f.name, a.name);
        assert_eq!(f.count, a.count);
        let rel = (f.summary.mean - a.summary.mean).abs() / f.summary.mean;
        assert!(rel < 1e-9, "{}: exact means must agree ({rel})", f.name);
    }
}

#[test]
fn out_of_order_wait_markers_survive_the_whole_stack() {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let trace = Arc::new(LotusTrace::new());
    let mut config =
        ExperimentConfig::paper_default(PipelineKind::ImageClassification).scaled_to(8_192);
    config.num_workers = 4;
    config.num_gpus = 4;
    config
        .build(&machine, Arc::clone(&trace) as _, None)
        .run()
        .unwrap();
    let ooo: Vec<_> = trace
        .records()
        .into_iter()
        .filter(|r| r.out_of_order)
        .collect();
    assert!(!ooo.is_empty(), "4 workers must reorder at least once");
    for r in &ooo {
        assert_eq!(r.duration, Span::from_micros(1), "the paper's 1 µs marker");
    }
}
