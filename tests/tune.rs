//! Integration tests for `lotus tune`: ground-truth recommendations,
//! byte-deterministic JSON, fault-plan composition, and the bounded
//! data-queue memory/throughput trade-off.

use lotus::core::tune::{SearchSpace, Strategy, TuneVerdict};
use lotus::dataflow::FaultPlan;
use lotus::sim::{Span, Time};
use lotus::tuning::{baseline_trial, tune_experiment, TuneOptions};
use lotus::workloads::{ExperimentConfig, PipelineKind};

/// The AC pipeline anchored at one worker: transform-heavy audio
/// preprocessing starves the GPU, so the ground truth is unambiguous —
/// adding workers must win, by a measured margin.
fn preprocessing_bound_experiment() -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_default(PipelineKind::AudioClassification);
    config.num_workers = 1;
    config.scaled_to(256)
}

#[test]
fn ground_truth_preprocessing_bound_pipeline_wants_more_workers() {
    let config = preprocessing_bound_experiment();
    let report = tune_experiment(&config, &TuneOptions::default()).unwrap();

    // The baseline (1 worker) must be diagnosed as preprocessing-bound.
    assert_eq!(
        report.baseline.verdict,
        Some(TuneVerdict::PreprocessingBound),
        "1-worker AC starves the consumer on transforms"
    );

    // The recommendation must add workers and beat the default
    // DataLoaderConfig by a measured margin.
    assert!(
        report.recommended.num_workers > 1,
        "recommended {:?}",
        report.recommended
    );
    let baseline = &report.baseline;
    let recommended = report.recommended_card();
    assert!(
        recommended.throughput > 1.5 * baseline.throughput,
        "recommended {:.1} samples/s vs baseline {:.1}",
        recommended.throughput,
        baseline.throughput
    );
    let speedup = report.predicted_speedup.unwrap();
    assert!(speedup > 1.5, "predicted speedup {speedup}");
    // The prediction is the measured elapsed ratio, not an extrapolation.
    let measured = baseline.elapsed.as_secs_f64() / recommended.elapsed.as_secs_f64();
    assert!((speedup - measured).abs() < 1e-9);

    // The frontier is consistent: sorted by footprint, recommended on it.
    assert!(report.frontier.contains(&report.recommended));
    let footprints: Vec<f64> = report
        .frontier
        .iter()
        .map(|c| {
            report
                .cards
                .iter()
                .find(|card| card.config == *c)
                .unwrap()
                .footprint_batches
        })
        .collect();
    assert!(
        footprints.windows(2).all(|w| w[0] < w[1]),
        "frontier footprints must strictly increase: {footprints:?}"
    );
}

#[test]
fn same_seed_produces_byte_identical_json() {
    let config = preprocessing_bound_experiment();
    let options = TuneOptions {
        strategy: Strategy::HillClimb { max_moves: 8 },
        ..TuneOptions::default()
    };
    let a = tune_experiment(&config, &options).unwrap().to_json();
    let b = tune_experiment(&config, &options).unwrap().to_json();
    assert_eq!(a, b, "virtual-time tuning must be byte-deterministic");
    // And a different seed is genuinely a different run (the sampler
    // shuffles differently), not a constant.
    let mut reseeded = config;
    reseeded.seed = 0xBEEF;
    let c = tune_experiment(&reseeded, &options).unwrap().to_json();
    assert_ne!(a, c, "seed must reach the simulation");
}

#[test]
fn fault_plan_degrades_configs_without_aborting_the_sweep() {
    let config = preprocessing_bound_experiment();
    // Kill worker 0 almost immediately: single-worker trials lose their
    // only worker and die; multi-worker trials redispatch and survive.
    let options = TuneOptions {
        space: SearchSpace {
            workers: vec![1, 2, 4],
            prefetch: vec![2],
            queue_caps: vec![None],
            pin_memory: vec![true],
        },
        strategy: Strategy::Grid,
        faults: FaultPlan::new(config.seed)
            .kill_process("dataloader0", Time::ZERO + Span::from_millis(5)),
        ..TuneOptions::default()
    };
    let report = tune_experiment(&config, &options).unwrap();

    let degraded: Vec<_> = report.cards.iter().filter(|c| !c.is_ok()).collect();
    assert!(
        !degraded.is_empty(),
        "1-worker trials must be reported as degraded"
    );
    assert!(degraded.iter().all(|c| c.config.num_workers == 1));
    assert!(
        degraded[0]
            .failed
            .as_deref()
            .unwrap()
            .contains("exited unexpectedly"),
        "failure must carry the job error: {:?}",
        degraded[0].failed
    );

    // Surviving trials carry the worker death in their scorecards, and
    // the recommendation avoids the degraded configuration.
    let survivors: Vec<_> = report.cards.iter().filter(|c| c.is_ok()).collect();
    assert!(!survivors.is_empty());
    assert!(survivors.iter().all(|c| c.worker_deaths == 1));
    assert!(report.recommended.num_workers > 1);
    // The baseline died, so no speedup prediction is possible.
    assert!(report.baseline.failed.is_some());
    assert!(report.predicted_speedup.is_none());
}

#[test]
fn bounded_data_queue_trades_throughput_for_footprint() {
    // IC with a slow consumer relative to 4 workers: unbounded queues let
    // batches pile up; a cap of 1 holds the footprint down.
    let mut config = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
    config.num_workers = 4;
    let config = config.scaled_to(512);
    let options = TuneOptions {
        space: SearchSpace {
            workers: vec![4],
            prefetch: vec![2],
            queue_caps: vec![None, Some(1)],
            pin_memory: vec![true],
        },
        strategy: Strategy::Grid,
        faults: FaultPlan::default(),
        ..TuneOptions::default()
    };
    let report = tune_experiment(&config, &options).unwrap();
    let card = |cap: Option<usize>| {
        report
            .cards
            .iter()
            .find(|c| c.config.data_queue_cap == cap)
            .unwrap()
    };
    let unbounded = card(None);
    let bounded = card(Some(1));
    assert!(bounded.is_ok() && unbounded.is_ok());
    assert!(
        bounded.footprint_batches < unbounded.footprint_batches,
        "cap=1 must shrink peak resident batches: {} vs {}",
        bounded.footprint_batches,
        unbounded.footprint_batches
    );
    // Both consume the full epoch.
    assert_eq!(bounded.samples, unbounded.samples);
}

#[test]
fn baseline_trial_mirrors_experiment_defaults() {
    let config = ExperimentConfig::paper_default(PipelineKind::ObjectDetection);
    let trial = baseline_trial(&config);
    let loader = trial.apply(config.loader_defaults());
    assert_eq!(loader, config.loader_defaults());
}

#[test]
fn parallel_jobs_produce_byte_identical_reports() {
    let config = preprocessing_bound_experiment();
    let serial = tune_experiment(
        &config,
        &TuneOptions {
            jobs: 1,
            ..TuneOptions::default()
        },
    )
    .unwrap();
    let parallel = tune_experiment(
        &config,
        &TuneOptions {
            jobs: 4,
            ..TuneOptions::default()
        },
    )
    .unwrap();
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "--jobs must never change a report byte"
    );
    assert_eq!(serial.recommended, parallel.recommended);
    assert_eq!(serial.pruned, parallel.pruned);
}

#[test]
fn warm_trial_cache_replays_the_sweep_without_live_trials() {
    let cache_dir =
        std::env::temp_dir().join(format!("lotus-tune-cache-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let config = preprocessing_bound_experiment();
    let options = TuneOptions {
        jobs: 4,
        cache_dir: Some(cache_dir.clone()),
        ..TuneOptions::default()
    };
    let cold = tune_experiment(&config, &options).unwrap();
    assert!(cold.trials_live > 0, "cold cache must run live trials");
    assert_eq!(cold.trials_cached, 0);

    let warm = tune_experiment(&config, &options).unwrap();
    assert_eq!(warm.trials_live, 0, "warm rerun must be all cache hits");
    assert_eq!(warm.trials_cached, cold.trials_live);
    assert_eq!(
        cold.to_json(),
        warm.to_json(),
        "cache warmth must never change a report byte"
    );

    // A different fault plan is a different sweep context: no stale hits.
    // (A queue slowdown changes behavior without failing any trial.)
    let refaulted = TuneOptions {
        faults: FaultPlan::new(config.seed).slow_queue("data_queue", 2.0),
        ..options
    };
    let other = tune_experiment(&config, &refaulted).unwrap();
    assert!(other.trials_live > 0);
    assert_eq!(other.trials_cached, 0);
    let _ = std::fs::remove_dir_all(&cache_dir);
}
