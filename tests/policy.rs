//! Integration tests for the scheduling-policy bake-off: under a skewed
//! per-sample cost distribution (a [`FaultPlan`] dilating a random 5% of
//! samples by 100x), the load-aware policies must beat PyTorch's strict
//! round-robin by a measured margin, while round-robin itself stays
//! byte-deterministic.
//!
//! The scenario mirrors `EXPERIMENTS.md`: image classification, 512
//! samples in batches of 4 over 4 workers. Round-robin keeps feeding
//! fresh batches to a worker stuck on a slow sample (they queue behind
//! the straggler and become head-of-line blockers for the in-order
//! consumer); work-stealing routes them to idle workers instead, and the
//! slow lane confines estimated-slow batches to a dedicated worker.

use lotus::core::tune::TrialConfig;
use lotus::dataflow::{FaultPlan, SchedulingPolicyKind};
use lotus::tuning::run_trial;
use lotus::workloads::{ExperimentConfig, PipelineKind};

/// The bake-off workload: IC scaled to 512 samples in batches of 4.
fn bakeoff_experiment(policy: SchedulingPolicyKind) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
    config.batch_size = 4;
    config.scaled_to(512).with_policy(policy)
}

/// 5% of samples cost 100x: heavy, sparse stragglers.
fn skew(config: &ExperimentConfig) -> FaultPlan {
    FaultPlan::new(config.seed).slow_samples(0.05, 100.0)
}

fn matched_trial() -> TrialConfig {
    TrialConfig {
        num_workers: 4,
        prefetch_factor: 2,
        data_queue_cap: None,
        pin_memory: true,
    }
}

#[test]
fn load_aware_policies_beat_round_robin_under_skewed_costs() {
    let mut elapsed = std::collections::HashMap::new();
    for kind in SchedulingPolicyKind::ALL {
        let experiment = bakeoff_experiment(kind);
        let measurement = run_trial(&experiment, &matched_trial(), &skew(&experiment)).unwrap();
        // Every policy preserves the protocol: all samples arrive.
        assert_eq!(
            (measurement.batches, measurement.samples),
            (128, 512),
            "{kind:?} lost data"
        );
        elapsed.insert(kind, measurement.elapsed);
    }
    let ratio = |kind: SchedulingPolicyKind| {
        elapsed[&SchedulingPolicyKind::RoundRobin].as_secs_f64() / elapsed[&kind].as_secs_f64()
    };
    // The acceptance bar: at least 1.3x simulated throughput over strict
    // round-robin at the matched configuration.
    let ws = ratio(SchedulingPolicyKind::WorkStealing);
    assert!(ws >= 1.3, "work-stealing speedup {ws:.2}x < 1.3x");
    let sl = ratio(SchedulingPolicyKind::SlowLane);
    assert!(sl >= 1.3, "slow-lane speedup {sl:.2}x < 1.3x");
}

#[test]
fn work_stealing_actually_steals_under_skew() {
    let experiment = bakeoff_experiment(SchedulingPolicyKind::WorkStealing);
    let measurement = run_trial(&experiment, &matched_trial(), &skew(&experiment)).unwrap();
    let steals = measurement
        .snapshot
        .counters
        .get("steals_total")
        .copied()
        .unwrap_or(0);
    assert!(steals > 0, "skewed costs must trigger steals");
}

#[test]
fn slow_lane_segregates_batches_under_skew() {
    let experiment = bakeoff_experiment(SchedulingPolicyKind::SlowLane);
    let measurement = run_trial(&experiment, &matched_trial(), &skew(&experiment)).unwrap();
    let slow = measurement
        .snapshot
        .counters
        .get("lane_slow_total")
        .copied()
        .unwrap_or(0);
    assert!(slow > 0, "skewed costs must route batches to the slow lane");
}

#[test]
fn round_robin_is_deterministic_under_the_bakeoff_skew() {
    let experiment = bakeoff_experiment(SchedulingPolicyKind::RoundRobin);
    let a = run_trial(&experiment, &matched_trial(), &skew(&experiment)).unwrap();
    let b = run_trial(&experiment, &matched_trial(), &skew(&experiment)).unwrap();
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.snapshot.counters, b.snapshot.counters);
}
